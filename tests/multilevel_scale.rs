//! Recursive multi-level routing quality at 1k proxies.
//!
//! Builds the paper-scale 1000-proxy world, stacks a depth-3 hierarchy
//! on it, and checks the [`MultiLevelRouter`] end to end:
//!
//! * every routed path is structurally valid (right source, services
//!   in order, every stage on a proxy that carries it);
//! * mean path cost stays within 1.5x the flat global-knowledge
//!   optimum and within the bi-level hierarchical router's bound;
//! * the third level strictly shrinks per-proxy routing state versus
//!   the bi-level design it generalizes.

use son_core::{
    Environment, FlatRouter, HierarchyConfig, ProviderIndex, Router, ServiceOverlay, SonConfig,
};

fn overlay_1k() -> ServiceOverlay {
    let mut config = SonConfig::from_environment(Environment::scaled(1000, 42));
    config.threads = 2;
    ServiceOverlay::build(&config)
}

#[test]
fn multilevel_routes_are_valid_and_near_optimal_at_1k() {
    let overlay = overlay_1k();
    let hierarchy = overlay.hierarchy_with_depth(&HierarchyConfig::default(), 3);
    assert_eq!(hierarchy.depth(), 3, "1k world should support depth 3");

    let router = overlay.multilevel_router(&hierarchy);
    let hier = overlay.hier_router();
    let flat = FlatRouter::new(
        ProviderIndex::from_service_sets(overlay.services()),
        overlay.predicted_delays(),
    );

    let requests = overlay.generate_client_requests(30, 9);
    let (mut ml_total, mut flat_total, mut hier_total, mut n) = (0.0, 0.0, 0.0, 0usize);
    let mut routed = 0usize;
    for request in &requests {
        let Ok(path) = router.route_path(request) else {
            continue;
        };
        routed += 1;
        path.validate(request, |p, s| overlay.carries(p, s))
            .expect("multi-level path must be structurally valid");

        let (Ok(f), Ok(h)) = (flat.route_path(request), hier.route_path(request)) else {
            continue;
        };
        ml_total += path.length(overlay.predicted_delays());
        flat_total += f.length(overlay.predicted_delays());
        hier_total += h.length(overlay.predicted_delays());
        n += 1;
    }

    assert!(routed >= 20, "only {routed}/30 requests routed");
    assert!(n >= 20, "only {n}/30 requests comparable across routers");
    let ml = ml_total / n as f64;
    let flat_mean = flat_total / n as f64;
    let hier_mean = hier_total / n as f64;
    assert!(
        ml <= 1.5 * flat_mean,
        "multi-level mean {ml:.1} exceeds 1.5x flat optimum {flat_mean:.1}"
    );
    assert!(
        ml <= 1.5 * hier_mean,
        "multi-level mean {ml:.1} exceeds 1.5x bi-level mean {hier_mean:.1}"
    );
}

#[test]
fn third_level_shrinks_routing_state_at_1k() {
    let overlay = overlay_1k();
    let depth2 = overlay.hierarchy_with_depth(&HierarchyConfig::default(), 2);
    let depth3 = overlay.hierarchy_with_depth(&HierarchyConfig::default(), 3);
    let (c2, s2) = depth2.mean_overheads(overlay.hfc());
    let (c3, s3) = depth3.mean_overheads(overlay.hfc());
    assert!(
        c3 + s3 < c2 + s2,
        "depth 3 state {:.1} not below bi-level {:.1}",
        c3 + s3,
        c2 + s2
    );
}
