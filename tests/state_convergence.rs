//! Integration: the state distribution protocol on realistically built
//! overlays (not hand-crafted clusters).

use son_core::{ProtocolConfig, ProxyId, ServiceOverlay, SimTime, SonConfig, StateProtocol};

#[test]
fn protocol_converges_on_generated_overlays() {
    for seed in [51u64, 52] {
        let overlay = ServiceOverlay::build(&SonConfig::small(seed));
        let report = overlay.run_state_protocol();
        assert!(report.converged, "seed {seed}: {report:?}");
        assert!(report.ended_at > SimTime::ZERO);
    }
}

#[test]
fn message_cost_scales_with_cluster_sizes_not_n_squared() {
    // Local state messages per round are Σ |C_i|·(|C_i|−1), which for
    // balanced clusters is far below n(n−1) (the flat flooding cost).
    let overlay = ServiceOverlay::build(&SonConfig::small(53));
    let report = overlay.run_state_protocol();
    assert!(report.converged);
    let n = overlay.proxy_count() as u64;
    let rounds = overlay.config().protocol.rounds as u64;
    let flat_flood = n * (n - 1) * rounds;
    assert!(
        report.local_messages < flat_flood,
        "local messages {} should undercut flat flooding {}",
        report.local_messages,
        flat_flood
    );
}

#[test]
fn converged_tables_drive_identical_routing() {
    // Routing from protocol-converged tables must equal routing from
    // statically constructed tables.
    let overlay = ServiceOverlay::build(&SonConfig::small(54));
    let mut protocol = StateProtocol::new(
        overlay.hfc(),
        overlay.services().to_vec(),
        overlay.true_delays(),
        ProtocolConfig::default(),
    );
    let report = protocol.run_to_quiescence();
    assert!(report.converged);

    // Per-cluster tables extracted from any member agree.
    for cluster in overlay.hfc().clusters() {
        let members = overlay.hfc().members(cluster);
        let (first_sctp, first_sctc) = protocol.tables_of(members[0]);
        for &m in &members[1..] {
            let (sctp, sctc) = protocol.tables_of(m);
            assert_eq!(sctp, first_sctp, "SCT_P divergence inside {cluster}");
            assert_eq!(sctc, first_sctc, "SCT_C divergence inside {cluster}");
        }
    }

    // And the tables describe exactly the installed services.
    for cluster in overlay.hfc().clusters() {
        let probe = overlay.hfc().members(cluster)[0];
        let (sctp, _) = protocol.tables_of(probe);
        for &m in overlay.hfc().members(cluster) {
            assert_eq!(
                sctp.services_of(m),
                Some(&overlay.services()[m.index()]),
                "wrong capability entry for {m}"
            );
        }
    }
    let _ = ProxyId::new(0); // silence unused-import pedantry if members empty
}
