//! Churn during serving: the engine's epoch-invalidated route cache
//! never returns a stale path.
//!
//! A [`DynamicOverlay`] takes join/leave events while an [`Engine`]
//! keeps serving the same request batch. After every membership change
//! the test installs a fresh snapshot (bumping the cache epoch) and
//! requires each served path to equal what a router built directly on
//! the *current* topology answers — if any pre-churn path survived in
//! the cache, this comparison would expose it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use son_core::membership::DynamicOverlay;
use son_core::{
    CoordDelays, Coordinates, Engine, EngineConfig, EngineSnapshot, HierProvider, ProxyId,
    RouterProvider, ServiceGraph, ServiceId, ServiceRequest, ServiceSet, ZahnConfig,
};

const START_PROXIES: usize = 60;
const UNIVERSE: usize = 8;
const COMMUNITIES: usize = 6;
/// Requests only address proxies below this index so they stay valid
/// while churn shrinks and regrows the overlay.
const ADDRESSABLE: usize = 40;
const ROUNDS: usize = 12;

fn random_coord(rng: &mut StdRng) -> Coordinates {
    let c = rng.gen_range(0..COMMUNITIES);
    let (cx, cy) = ((c % 3) as f64 * 1_000.0, (c / 3) as f64 * 1_200.0);
    Coordinates::new(vec![
        cx + rng.gen::<f64>() * 100.0,
        cy + rng.gen::<f64>() * 100.0,
    ])
}

/// Deterministic service placement: proxy `i` carries `i mod UNIVERSE`
/// and `(i * 3 + 1) mod UNIVERSE`, so every service has providers as
/// long as the overlay keeps at least `UNIVERSE` proxies.
fn service_sets(n: usize) -> Vec<ServiceSet> {
    (0..n)
        .map(|i| {
            ServiceSet::from_iter([
                ServiceId::new(i % UNIVERSE),
                ServiceId::new((i * 3 + 1) % UNIVERSE),
            ])
        })
        .collect()
}

fn snapshot_of(overlay: &DynamicOverlay) -> EngineSnapshot<CoordDelays> {
    EngineSnapshot::new(
        overlay.hfc().clone(),
        service_sets(overlay.len()),
        overlay.delays().clone(),
    )
}

fn batch(rng: &mut StdRng, count: usize) -> Vec<ServiceRequest> {
    (0..count)
        .map(|_| {
            let src = rng.gen_range(0..ADDRESSABLE);
            let mut dst = rng.gen_range(0..ADDRESSABLE);
            while dst == src {
                dst = rng.gen_range(0..ADDRESSABLE);
            }
            let chain: Vec<ServiceId> = (0..rng.gen_range(1..4))
                .map(|_| ServiceId::new(rng.gen_range(0..UNIVERSE)))
                .collect();
            ServiceRequest::new(
                ProxyId::new(src),
                ServiceGraph::linear(chain),
                ProxyId::new(dst),
            )
        })
        .collect()
}

#[test]
fn serving_across_churn_returns_no_stale_paths() {
    let mut rng = StdRng::seed_from_u64(2003);
    let coords: Vec<Coordinates> = (0..START_PROXIES).map(|_| random_coord(&mut rng)).collect();
    let mut overlay = DynamicOverlay::new(coords, ZahnConfig::default());

    let provider = HierProvider::default();
    let engine = Engine::new(
        snapshot_of(&overlay),
        HierProvider::default(),
        EngineConfig {
            workers: 3,
            ..EngineConfig::default()
        },
    );
    let requests = batch(&mut rng, 24);

    let mut total_stale_drops = 0u64;
    let mut repeat_hits = 0u64;
    for round in 0..ROUNDS {
        // Serve twice per round: the second pass must hit the cache
        // (same epoch, same requests) and still agree with the fresh
        // router below — hits are compared, not just misses.
        let outcome = engine.serve(&requests);
        let again = engine.serve(&requests);
        assert_eq!(
            outcome.paths, again.paths,
            "round {round}: cache hit diverged"
        );
        repeat_hits += again.report.cache.hits;
        total_stale_drops += outcome.report.cache.stale_drops;

        // A router built directly on the current topology is ground
        // truth; any stale cached path would disagree with it.
        let current = snapshot_of(&overlay);
        let fresh = provider.router(&current);
        for (request, served) in requests.iter().zip(&outcome.paths) {
            assert_eq!(
                served,
                &fresh.route_path(request),
                "round {round}: served path is stale for {request:?}"
            );
            if let Ok(path) = served {
                path.validate(request, |p, s| current.services()[p.index()].contains(s))
                    .expect("served path must be walkable on the current overlay");
            }
        }

        // Churn: a burst of joins and leaves, then a new snapshot. The
        // floor keeps addressed proxies and service coverage intact.
        for _ in 0..6 {
            if overlay.len() <= (ADDRESSABLE + 4) || rng.gen_bool(0.5) {
                overlay.join(random_coord(&mut rng));
            } else {
                overlay.leave(ProxyId::new(rng.gen_range(ADDRESSABLE..overlay.len())));
            }
        }
        engine.install_snapshot(snapshot_of(&overlay));
    }

    assert!(
        repeat_hits > 0,
        "the repeat pass never hit the cache — the test is not exercising it"
    );
    assert!(
        total_stale_drops > 0,
        "churn never invalidated a cached entry — the test is not exercising epochs"
    );
}
