//! Paper-scale end-to-end smoke test (Table 1's smallest row). Run it
//! explicitly — it takes seconds in release and minutes in debug:
//!
//! ```sh
//! cargo test --release -p son-core --test paper_scale -- --ignored
//! ```

use son_core::{OverheadKind, ServiceOverlay, SonConfig};

#[test]
#[ignore = "paper-scale; run with --release --ignored"]
fn table1_smallest_row_end_to_end() {
    let overlay = ServiceOverlay::build(&SonConfig::table1(250, 1));
    assert_eq!(overlay.proxy_count(), 250);
    assert!(overlay.hfc().cluster_count() > 5);
    assert!(
        overlay.stats().embedding_error.median < 0.4,
        "{:?}",
        overlay.stats().embedding_error
    );

    let report = overlay.run_state_protocol();
    assert!(report.converged, "{report:?}");

    let (flat, hfc) = overlay.overhead(OverheadKind::Coordinates);
    assert!(hfc.mean < flat.mean * 0.7);

    let router = overlay.hier_router();
    let mesh = overlay.build_mesh();
    let requests = overlay.generate_client_requests(100, 7);
    let (mut hier_total, mut mesh_total, mut compared) = (0.0, 0.0, 0);
    for request in &requests {
        let (Ok(h), Ok(m)) = (router.route(request), overlay.route_mesh(&mesh, request)) else {
            continue;
        };
        h.path
            .validate(request, |p, s| overlay.carries(p, s))
            .unwrap();
        hier_total += overlay.true_length(&h.path);
        mesh_total += overlay.true_length(&m);
        compared += 1;
    }
    assert!(compared > 60, "only {compared}/100 comparable");
    assert!(
        hier_total < mesh_total,
        "paper headline: HFC ({hier_total:.0}) beats mesh ({mesh_total:.0}) at scale"
    );
}
