//! Property: incremental HFC maintenance is exact.
//!
//! After *any* sequence of joins and leaves applied event-by-event to a
//! [`DynamicOverlay`], the maintained topology has the same clusters
//! and the same border pairs as [`HfcTopology::build`] run from scratch
//! on the final membership — and no full rebuild was ever triggered.
//! Compared through [`HfcSnapshot`], which canonicalises cluster
//! numbering (the incremental path compacts ids by swap-remove, the
//! scratch path numbers by first appearance).

use proptest::prelude::*;
use son_core::membership::DynamicOverlay;
use son_core::{Clustering, Coordinates, HfcTopology, ProxyId, ZahnConfig};

/// Four planted communities, three proxies each — small enough that a
/// from-scratch rebuild per event stays cheap, clustered enough that
/// Zahn finds real structure.
fn seeded_overlay() -> DynamicOverlay {
    let mut coords = Vec::new();
    for c in 0..4 {
        for i in 0..3 {
            coords.push(Coordinates::new(vec![
                c as f64 * 900.0 + i as f64 * 17.0,
                (c % 2) as f64 * 700.0 + i as f64 * 11.0,
            ]));
        }
    }
    DynamicOverlay::new(coords, ZahnConfig::default())
}

// One churn event is (join?, x, y, victim-pick): joins carry a
// coordinate, leaves pick a victim by index modulo the current size.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn incremental_hfc_equals_scratch_build(
        events in proptest::collection::vec(
            (any::<bool>(), 0.0f64..4000.0, 0.0f64..1400.0, 0usize..1000),
            0..30,
        )
    ) {
        let mut overlay = seeded_overlay();
        for &(join, x, y, pick) in &events {
            if join || overlay.len() <= 4 {
                overlay.join(Coordinates::new(vec![x, y]));
            } else {
                overlay.leave(ProxyId::new(pick % overlay.len()));
            }
            let scratch = HfcTopology::build(
                &Clustering::from_labels(&overlay.labels()),
                overlay.delays(),
            );
            prop_assert_eq!(overlay.hfc().snapshot(), scratch.snapshot());
        }
        // Every event above was handled incrementally.
        prop_assert_eq!(overlay.churn_stats().full_rebuilds, 0);
    }
}
