//! Integration: routing keeps working across membership churn — joins,
//! leaves and quality-triggered restructuring (the paper's §7 future
//! direction, end to end).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use son_core::membership::DynamicOverlay;
use son_core::{
    Coordinates, HierConfig, HierarchicalRouter, ProxyId, ServiceGraph, ServiceId, ServiceRequest,
    ServiceSet, ZahnConfig,
};

/// Five planted communities plus per-proxy service sets.
fn world(seed: u64) -> (DynamicOverlay, Vec<ServiceSet>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coords = Vec::new();
    for c in 0..5 {
        for _ in 0..6 {
            coords.push(Coordinates::new(vec![
                c as f64 * 800.0 + rng.gen::<f64>() * 40.0,
                (c % 2) as f64 * 600.0 + rng.gen::<f64>() * 40.0,
            ]));
        }
    }
    let n = coords.len();
    let overlay = DynamicOverlay::new(coords, ZahnConfig::default());
    let services: Vec<ServiceSet> = (0..n)
        .map(|i| {
            (0..10)
                .filter(|s| (i + s) % 3 != 0)
                .map(ServiceId::new)
                .collect()
        })
        .collect();
    (overlay, services)
}

fn route_everything(overlay: &DynamicOverlay, services: &[ServiceSet], seed: u64) -> usize {
    let router = HierarchicalRouter::from_services(
        overlay.hfc(),
        services,
        overlay.delays(),
        HierConfig::default(),
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let n = overlay.len();
    let mut ok = 0;
    for _ in 0..25 {
        let request = ServiceRequest::new(
            ProxyId::new(rng.gen_range(0..n)),
            ServiceGraph::linear(
                (0..3)
                    .map(|_| ServiceId::new(rng.gen_range(0..10)))
                    .collect(),
            ),
            ProxyId::new(rng.gen_range(0..n)),
        );
        if let Ok(route) = router.route(&request) {
            route
                .path
                .validate(&request, |p, s| services[p.index()].contains(s))
                .expect("routed path must be feasible");
            ok += 1;
        }
    }
    ok
}

#[test]
fn routing_survives_joins_leaves_and_restructure() {
    let (mut overlay, mut services) = world(5);
    assert!(route_everything(&overlay, &services, 1) > 15);

    let mut rng = StdRng::seed_from_u64(9);
    // Joins: newcomers with their own services.
    for i in 0..8 {
        overlay.join(Coordinates::new(vec![
            rng.gen::<f64>() * 3_500.0,
            rng.gen::<f64>() * 700.0,
        ]));
        services.push(
            (0..10)
                .filter(|s| (i + s) % 4 != 0)
                .map(ServiceId::new)
                .collect(),
        );
    }
    assert!(route_everything(&overlay, &services, 2) > 15);

    // Leaves: swap-remove semantics must be mirrored on the service
    // table.
    for _ in 0..5 {
        let victim = ProxyId::new(rng.gen_range(0..overlay.len()));
        overlay.leave(victim);
        services.swap_remove(victim.index());
    }
    assert_eq!(services.len(), overlay.len());
    assert!(route_everything(&overlay, &services, 3) > 15);

    // Restructure and route again.
    overlay.restructure();
    assert!(route_everything(&overlay, &services, 4) > 15);
}

#[test]
fn hfc_invariants_hold_through_heavy_churn() {
    let (mut overlay, _) = world(6);
    let mut rng = StdRng::seed_from_u64(10);
    for step in 0..40 {
        if step % 3 == 0 && overlay.len() > 5 {
            let victim = ProxyId::new(rng.gen_range(0..overlay.len()));
            overlay.leave(victim);
        } else {
            overlay.join(Coordinates::new(vec![
                rng.gen::<f64>() * 3_500.0,
                rng.gen::<f64>() * 700.0,
            ]));
        }
        let hfc = overlay.hfc();
        // Membership is a partition.
        let mut seen = vec![false; overlay.len()];
        for c in hfc.clusters() {
            for &m in hfc.members(c) {
                assert!(!seen[m.index()], "proxy in two clusters");
                seen[m.index()] = true;
                assert_eq!(hfc.cluster_of(m), c);
            }
        }
        assert!(seen.into_iter().all(|s| s), "proxy in no cluster");
        // Borders are symmetric and live in the right clusters.
        for i in hfc.clusters() {
            for j in hfc.clusters() {
                if i < j {
                    let ij = hfc.border(i, j);
                    let ji = hfc.border(j, i);
                    assert_eq!(ij.local, ji.remote);
                    assert_eq!(ij.remote, ji.local);
                    assert_eq!(hfc.cluster_of(ij.local), i);
                    assert_eq!(hfc.cluster_of(ij.remote), j);
                }
            }
        }
    }
}
