//! Integration: path-quality relationships the paper's Figure 10
//! relies on, checked on small worlds.

use son_core::{HfcDelays, ProxyId, RouteError, ServiceOverlay, SonConfig};

/// Routes the same request batch through all three systems and returns
/// `(mesh, hier, full_state)` average true path lengths.
fn compare(seed: u64, requests: usize) -> (f64, f64, f64) {
    let overlay = ServiceOverlay::build(&SonConfig::small(seed));
    let router = overlay.hier_router();
    let mesh = overlay.build_mesh();
    let batch = overlay.generate_requests(requests, seed ^ 0xabcd);
    let (mut m, mut h, mut f, mut count) = (0.0, 0.0, 0.0, 0);
    for request in &batch {
        let (Ok(mp), Ok(hr), Ok(fp)) = (
            overlay.route_mesh(&mesh, request),
            router.route(request),
            router.route_without_aggregation(request),
        ) else {
            continue;
        };
        for (name, path) in [("mesh", &mp), ("hier", &hr.path), ("full", &fp)] {
            path.validate(request, |p, s| overlay.carries(p, s))
                .unwrap_or_else(|e| panic!("{name} path invalid: {e}"));
        }
        m += overlay.true_length(&mp);
        h += overlay.true_length(&hr.path);
        f += overlay.true_length(&fp);
        count += 1;
    }
    assert!(count >= requests / 2, "only {count}/{requests} comparable");
    let c = count as f64;
    (m / c, h / c, f / c)
}

#[test]
fn hfc_is_competitive_with_mesh() {
    // The paper's Figure 10: HFC with aggregation is comparable to
    // (actually slightly better than) the mesh baseline. Averaged over
    // seeds to damp noise; assert HFC does not lose badly.
    let mut mesh_total = 0.0;
    let mut hier_total = 0.0;
    for seed in [11u64, 12, 13] {
        let (m, h, _) = compare(seed, 40);
        mesh_total += m;
        hier_total += h;
    }
    assert!(
        hier_total <= mesh_total * 1.15,
        "hier {hier_total:.1} should be competitive with mesh {mesh_total:.1}"
    );
}

#[test]
fn full_state_hfc_lower_bounds_aggregated_hfc_under_hfc_metric() {
    // Under the *HFC-constrained* metric the full-state route is
    // optimal, so it can never exceed the aggregated route's cost in
    // that same metric. (True-delay lengths can go either way because
    // decisions use predicted distances.)
    let overlay = ServiceOverlay::build(&SonConfig::small(21));
    let router = overlay.hier_router();
    let constrained = HfcDelays::new(overlay.hfc(), overlay.predicted_delays());
    let batch = overlay.generate_requests(40, 99);
    let mut checked = 0;
    for request in &batch {
        let (Ok(hr), Ok(fp)) = (
            router.route(request),
            router.route_without_aggregation(request),
        ) else {
            continue;
        };
        let agg = hr.path.length(&constrained);
        let full = fp.length(&constrained);
        assert!(
            full <= agg + 1e-6,
            "full-state {full:.2} > aggregated {agg:.2} under the HFC metric"
        );
        checked += 1;
    }
    assert!(checked >= 20, "only {checked} comparisons");
}

#[test]
fn hfc_pairs_are_at_most_two_overlay_hops_apart() {
    // The HFC property the paper credits for path efficiency: any two
    // proxies communicate over at most two overlay hops (one border
    // pair).
    let overlay = ServiceOverlay::build(&SonConfig::small(31));
    let constrained = HfcDelays::new(overlay.hfc(), overlay.predicted_delays());
    let n = overlay.proxy_count();
    for a in (0..n).step_by(7) {
        for b in (0..n).step_by(5) {
            let hops = constrained.hops(ProxyId::new(a), ProxyId::new(b));
            assert!(
                hops.len() <= 4,
                "{} hops between p{a} and p{b}",
                hops.len() - 1
            );
        }
    }
}

#[test]
fn rejections_only_happen_for_unavailable_services() {
    let overlay = ServiceOverlay::build(&SonConfig::small(41));
    let router = overlay.hier_router();
    for request in &overlay.generate_requests(60, 3) {
        if let Err(e) = router.route(request) {
            match e {
                RouteError::NoProvider(s) => {
                    // Verify the service truly exists nowhere.
                    let anywhere = overlay.services().iter().any(|set| set.contains(s));
                    assert!(!anywhere, "rejected {s} although some proxy carries it");
                }
                other => {
                    panic!("linear chains with providers everywhere cannot fail with {other:?}")
                }
            }
        }
    }
}

#[test]
fn distributed_resolution_agrees_with_centralized_on_real_overlays() {
    use son_core::resolve_distributed;
    let overlay = ServiceOverlay::build(&SonConfig::small(61));
    let router = overlay.hier_router();
    let mut sessions = 0;
    for request in &overlay.generate_requests(25, 13) {
        let Ok(central) = router.route(request) else {
            continue;
        };
        let session = resolve_distributed(&router, request, overlay.true_delays())
            .expect("centralized success implies distributed success");
        assert_eq!(session.route.path, central.path);
        // Latency covers at least the issue hop; messages are odd
        // (issue + request/answer pairs).
        assert!(session.resolution_latency.as_ms() > 0.0 || request.source == request.destination);
        assert_eq!(session.messages % 2, 1);
        sessions += 1;
    }
    assert!(sessions >= 10, "only {sessions} sessions compared");
}
