//! Property: the parallel staged build is an optimization, not a
//! semantic change.
//!
//! For any seed and overlay size, building with worker threads must
//! produce a world bit-identical to the single-threaded build: the
//! same [`EngineSnapshot`] digest (HFC topology, service placement,
//! and coordinate bits) and the same canonical [`HfcSnapshot`]. Every
//! parallelized stage — per-host embedding solves, MST edge scans,
//! border election, client attachment — is covered, because each
//! feeds the digest.
//!
//! Thread counts above the host's core count are deliberate: on a
//! small CI machine oversubscription still drives the chunked
//! work-splitting code paths, which is where ordering bugs would
//! live.

use proptest::prelude::*;
use son_core::{Environment, ServiceOverlay, SonConfig};

fn config(proxies: usize, seed: u64, threads: usize) -> SonConfig {
    let mut env = Environment::scaled(proxies, seed);
    // The 6:5 physical ratio leaves no slack at sub-paper sizes once
    // transit nodes and client attachments claim their stubs; double
    // it so every sampled size hosts.
    env.physical_nodes = proxies * 2;
    let mut config = SonConfig::from_environment(env);
    config.threads = threads;
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn parallel_build_is_bit_identical_to_sequential(
        // `Environment::scaled` needs ~65+ proxies before the 6:5
        // physical ratio clears the transit core's fixed stub cost.
        seed in 0u64..1_000,
        proxies in 100usize..240,
        threads in 2usize..6,
    ) {
        let sequential = ServiceOverlay::build(&config(proxies, seed, 1));
        let parallel = ServiceOverlay::build(&config(proxies, seed, threads));

        prop_assert_eq!(
            sequential.engine_snapshot().digest(),
            parallel.engine_snapshot().digest(),
            "digest diverged at {} proxies, seed {}, {} threads",
            proxies, seed, threads
        );
        prop_assert_eq!(sequential.hfc().snapshot(), parallel.hfc().snapshot());
    }
}

/// The same invariant holds with the bounded delay cache in play and
/// at a size where every stage has real work to split.
#[test]
fn parallel_build_matches_at_depth_and_bound() {
    let build = |threads: usize| {
        let mut c = config(400, 7, threads);
        c.delay_rows_limit = Some(64);
        ServiceOverlay::build(&c)
    };
    let sequential = build(1);
    let parallel = build(4);
    assert_eq!(
        sequential.engine_snapshot().digest(),
        parallel.engine_snapshot().digest()
    );
    assert_eq!(sequential.hfc().snapshot(), parallel.hfc().snapshot());
}
