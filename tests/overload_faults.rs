//! Property: for any survivable fault plan and any capacity
//! assignment, the admission-enabled engine never serves a path
//! through a `Down` proxy, never admits more load onto a proxy than
//! its capacity, and accounts for every request as exactly one of
//! optimal / degraded / rejected.
//!
//! Health reaches the engine the production way: the fault plan's
//! crash events feed the state protocol, whose missed-refresh detector
//! classifies every proxy, and that health map parameterizes the
//! serving snapshot.

use proptest::prelude::*;
use son_core::{
    AdmissionConfig, Clustering, CostConfig, DelayMatrix, Engine, EngineConfig, EngineSnapshot,
    FaultPlan, Health, HfcTopology, HierProvider, NodeId, ProtocolConfig, ProxyId, ServiceGraph,
    ServiceId, ServiceRequest, ServiceSet, SimTime, StateProtocol, StatusMap,
};

/// `clusters` planted communities of `size` proxies on a line (as in
/// `state_faults`): close within a cluster, far apart between, so
/// label assignment mirrors what the clustering stage would find.
fn world(clusters: usize, size: usize) -> (HfcTopology, DelayMatrix, Vec<ServiceSet>) {
    let n = clusters * size;
    let pos: Vec<f64> = (0..n)
        .map(|i| (i / size) as f64 * 300.0 + (i % size) as f64 * 4.0)
        .collect();
    let mut values = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            values[i * n + j] = (pos[i] - pos[j]).abs();
        }
    }
    let delays = DelayMatrix::from_values(n, values);
    let labels: Vec<usize> = (0..n).map(|i| i / size).collect();
    let hfc = HfcTopology::build(&Clustering::from_labels(&labels), &delays);
    let services: Vec<ServiceSet> = (0..n)
        .map(|i| ServiceSet::from_iter([ServiceId::new(i % 7), ServiceId::new(7 + i % 5)]))
        .collect();
    (hfc, delays, services)
}

/// A deterministic batch over the world's 12-service universe.
fn batch(n: usize, count: usize) -> Vec<ServiceRequest> {
    (0..count)
        .map(|k| {
            ServiceRequest::new(
                ProxyId::new(k % n),
                ServiceGraph::linear(vec![ServiceId::new(k % 12), ServiceId::new((k + 3) % 12)]),
                ProxyId::new((k * 5 + 2) % n),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn served_paths_respect_health_and_capacity(
        shape in (2usize..5, 3usize..6),
        seed in 0u64..1_000_000,
        crash_picks in (0usize..1000, 0usize..1000),
        cap_base in 1u32..8,
        cap_spread in 1u32..16,
        loss in 0.0f64..0.15,
    ) {
        let (clusters, size) = shape;
        let n = clusters * size;
        // Up to two distinct proxies crash permanently after the first
        // full table exchange; clusters have ≥ 3 members, so every
        // cluster keeps a live proxy and the plan is survivable.
        let (a, b) = crash_picks;
        let mut victims = vec![a % n];
        if b % n != a % n {
            victims.push(b % n);
        }
        let mut plan = FaultPlan::new(seed);
        for &v in &victims {
            plan = plan.with_crash(NodeId::new(v), SimTime::from_ms(150.0), None);
        }
        if loss > 0.0 {
            plan = plan.with_loss(loss);
        }

        let (hfc, delays, services) = world(clusters, size);
        let mut protocol =
            StateProtocol::new(&hfc, services.clone(), &delays, ProtocolConfig::resilient());
        protocol.install_faults(plan);
        protocol.run_until_converged(SimTime::from_ms(10_000.0));
        let mut statuses = protocol.health_view();
        // The detector must flag exactly the crashed proxies Down.
        let down: Vec<bool> = (0..n)
            .map(|p| statuses.health(ProxyId::new(p)) == Health::Down)
            .collect();
        for &v in &victims {
            prop_assert!(down[v], "crashed proxy {v} not detected Down");
        }

        // Arbitrary (but deterministic) tight capacities.
        let capacities: Vec<u32> = (0..n as u32)
            .map(|p| cap_base + (p * 7) % cap_spread)
            .collect();
        for (p, &cap) in capacities.iter().enumerate() {
            statuses.set_capacity(ProxyId::new(p), cap);
        }

        let engine = Engine::new(
            EngineSnapshot::new(hfc, services, delays)
                .with_statuses(statuses, CostConfig::balanced()),
            HierProvider::default(),
            EngineConfig {
                workers: 2,
                admission: AdmissionConfig {
                    enabled: true,
                    ..AdmissionConfig::default()
                },
                ..EngineConfig::default()
            },
        );
        let requests = batch(n, 4 * n);
        let outcome = engine.serve(&requests);

        // 1. No served path traverses a Down proxy.
        for result in outcome.paths.iter().flatten() {
            for hop in result.hops() {
                prop_assert!(
                    !down[hop.proxy.index()],
                    "served path traverses Down {}",
                    hop.proxy
                );
            }
        }
        // 2. Admitted load never exceeds capacity.
        for (p, &load) in outcome.report.admitted_load.iter().enumerate() {
            prop_assert!(
                load <= capacities[p] as u64,
                "proxy {p} admitted {load} > capacity {}",
                capacities[p]
            );
        }
        // 3. Every request lands in exactly one disposition class, and
        //    dispositions agree with the per-request results.
        let a = outcome.report.admission;
        prop_assert_eq!(a.total(), requests.len() as u64, "{:?}", a);
        for (d, p) in outcome.dispositions.iter().zip(&outcome.paths) {
            prop_assert_eq!(d.is_served(), p.is_ok());
        }
    }
}

/// Pin the zero-capacity edge: nothing can be admitted, everything is
/// shed as overloaded (or unroutable), and the accounting still sums.
#[test]
fn zero_capacity_sheds_everything() {
    let (hfc, delays, services) = world(3, 4);
    let n = 12;
    let mut statuses = StatusMap::all_up(n);
    for p in 0..n {
        statuses.set_capacity(ProxyId::new(p), 0);
    }
    let engine = Engine::new(
        EngineSnapshot::new(hfc, services, delays).with_statuses(statuses, CostConfig::balanced()),
        HierProvider::default(),
        EngineConfig {
            admission: AdmissionConfig {
                enabled: true,
                ..AdmissionConfig::default()
            },
            ..EngineConfig::default()
        },
    );
    let requests = batch(n, 30);
    let outcome = engine.serve(&requests);
    let a = outcome.report.admission;
    assert_eq!(a.served(), 0, "{a:?}");
    assert_eq!(a.total(), 30, "{a:?}");
    // Depending on the cost model, saturation surfaces either as an
    // admission failure or as every candidate pricing to infinity.
    assert_eq!(a.rejected_overloaded + a.rejected_unroutable, 30, "{a:?}");
    assert!(outcome.report.admitted_load.iter().all(|&l| l == 0));
}
