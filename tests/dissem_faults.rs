//! Property: tree-based dissemination is as survivable as flooding —
//! any survivable fault plan (i.i.d. loss up to 30%, duplication,
//! jitter, a temporary partition of one whole cluster, and a
//! crash/restart) converges with zero stale entries, identical seeds
//! replay identical event digests, and the tree run is strictly
//! cheaper than flooding over the same world and plan.

use proptest::prelude::*;
use son_core::{
    Clustering, DelayMatrix, DissemMode, FaultPlan, HfcTopology, NodeId, ProtocolConfig, ProxyId,
    ServiceId, ServiceSet, SimTime, StateProtocol, StateReport,
};

/// `clusters` planted communities of `size` proxies on a line — the
/// same world `tests/state_faults.rs` uses for the flooding baseline.
fn world(clusters: usize, size: usize) -> (HfcTopology, DelayMatrix, Vec<ServiceSet>) {
    let n = clusters * size;
    let pos: Vec<f64> = (0..n)
        .map(|i| (i / size) as f64 * 300.0 + (i % size) as f64 * 4.0)
        .collect();
    let mut values = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            values[i * n + j] = (pos[i] - pos[j]).abs();
        }
    }
    let delays = DelayMatrix::from_values(n, values);
    let labels: Vec<usize> = (0..n).map(|i| i / size).collect();
    let hfc = HfcTopology::build(&Clustering::from_labels(&labels), &delays);
    let services: Vec<ServiceSet> = (0..n)
        .map(|i| ServiceSet::from_iter([ServiceId::new(i % 7), ServiceId::new(7 + i % 5)]))
        .collect();
    (hfc, delays, services)
}

fn run_plan(
    clusters: usize,
    size: usize,
    mode: DissemMode,
    plan: FaultPlan,
    deadline_ms: f64,
) -> (StateReport, StateProtocol) {
    let (hfc, delays, services) = world(clusters, size);
    let config = ProtocolConfig {
        mode,
        ..ProtocolConfig::resilient()
    };
    let mut protocol = StateProtocol::new(&hfc, services, &delays, config);
    protocol.install_faults(plan);
    let report = protocol.run_until_converged(SimTime::from_ms(deadline_ms));
    (report, protocol)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(18))]
    #[test]
    fn tree_mode_survives_any_survivable_plan(
        shape in (2usize..5, 3usize..6),
        loss in 0.0f64..0.3,
        duplicate in 0.0f64..0.1,
        jitter_ms in 0.0f64..2.0,
        seed in 0u64..1_000_000,
        disruption in (0usize..1000, 10.0f64..120.0, 10.0f64..150.0),
    ) {
        let (clusters, size) = shape;
        let (crash_pick, partition_start, partition_len) = disruption;
        let n = clusters * size;
        // Cluster 0 is cut off for a bounded window — never permanent.
        let island: Vec<NodeId> = (0..size).map(NodeId::new).collect();
        // Any proxy may crash — tree roots and interior relays
        // included; it always comes back 40ms later.
        let victim = NodeId::new(crash_pick % n);
        let crash_at = 30.0 + (crash_pick % 50) as f64;
        let mut plan = FaultPlan::new(seed)
            .with_duplicate(duplicate)
            .with_partition(
                SimTime::from_ms(partition_start),
                SimTime::from_ms(partition_start + partition_len),
                island,
            )
            .with_crash(
                victim,
                SimTime::from_ms(crash_at),
                Some(SimTime::from_ms(crash_at + 40.0)),
            );
        if loss > 0.0 {
            plan = plan.with_loss(loss);
        }
        if jitter_ms > 0.0 {
            plan = plan.with_jitter_ms(jitter_ms);
        }
        let (report, protocol) = run_plan(clusters, size, DissemMode::Tree, plan, 30_000.0);
        prop_assert!(report.converged, "{report:?}");
        prop_assert_eq!(report.stale_entries, 0);
        prop_assert_eq!(report.crashed_proxies, 0);
        prop_assert_eq!(report.local_messages, 0, "tree mode must not flood");
        // The restarted proxy relearned its whole cluster through the
        // tree (or a repair, if its parent was slow to come back).
        let (sctp, sctc) = protocol.tables_of(ProxyId::new(victim.index()));
        prop_assert_eq!(sctp.len(), size);
        prop_assert_eq!(sctc.len(), clusters);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn identical_seeds_reproduce_identical_tree_traces(
        seed in 0u64..1_000_000,
        loss in 0.0f64..0.3,
    ) {
        let plan = || {
            let mut p = FaultPlan::new(seed)
                .with_duplicate(0.05)
                .with_jitter_ms(1.0)
                .with_crash(
                    NodeId::new(2),
                    SimTime::from_ms(40.0),
                    Some(SimTime::from_ms(80.0)),
                );
            if loss > 0.0 {
                p = p.with_loss(loss);
            }
            p
        };
        let (a, _) = run_plan(3, 4, DissemMode::Tree, plan(), 30_000.0);
        let (b, _) = run_plan(3, 4, DissemMode::Tree, plan(), 30_000.0);
        prop_assert_eq!(a, b);
        // A perturbed seed must not replay the same digest (the world
        // is identical, only the fault RNG differs).
        if loss > 0.0 {
            let (c, _) = run_plan(3, 4, DissemMode::Tree, plan().with_seed(seed + 1), 30_000.0);
            prop_assert_ne!(a.trace_hash, c.trace_hash);
        }
    }
}

/// Not a property — a deterministic apples-to-apples count: over the
/// identical fault-free world, the tree run converges on strictly
/// fewer sends than flooding.
#[test]
fn tree_is_cheaper_than_flooding_on_the_same_world() {
    let run = |mode| {
        let (report, _) = run_plan(3, 8, mode, FaultPlan::new(7), 30_000.0);
        assert!(report.converged, "{report:?}");
        assert_eq!(report.stale_entries, 0);
        report
    };
    let flooding = run(DissemMode::Flooding);
    let tree = run(DissemMode::Tree);
    assert!(
        tree.messages_sent() < flooding.messages_sent(),
        "tree {} vs flooding {}",
        tree.messages_sent(),
        flooding.messages_sent()
    );
    assert!(tree.tree_suppressed > 0, "suppression must be accounted");
}
