//! Integration: the full pipeline from physical topology to routed,
//! validated service paths, across several seeds.

use son_core::{OverheadKind, RouteError, ServiceOverlay, SonConfig};

#[test]
fn full_pipeline_works_across_seeds() {
    for seed in [1u64, 2, 3] {
        let overlay = ServiceOverlay::build(&SonConfig::small(seed));

        // The physical world is connected and the clustering covers
        // every proxy.
        assert!(overlay.physical().graph().is_connected());
        assert_eq!(overlay.clustering().point_count(), overlay.proxy_count());

        // The distributed state protocol converges.
        let report = overlay.run_state_protocol();
        assert!(report.converged, "seed {seed}: {report:?}");

        // Requests route and validate.
        let router = overlay.hier_router();
        let requests = overlay.generate_requests(40, seed ^ 0xbeef);
        let mut ok = 0;
        for request in &requests {
            match router.route(request) {
                Ok(route) => {
                    route
                        .path
                        .validate(request, |p, s| overlay.carries(p, s))
                        .unwrap_or_else(|e| panic!("seed {seed}: invalid path: {e}"));
                    ok += 1;
                }
                Err(RouteError::NoProvider(_)) => {} // genuinely unavailable service
                Err(_) => {}
            }
        }
        assert!(ok >= 20, "seed {seed}: only {ok}/40 requests routed");
    }
}

#[test]
fn hfc_overhead_beats_flat_at_every_size() {
    for seed in [4u64, 5] {
        let overlay = ServiceOverlay::build(&SonConfig::small(seed));
        let (flat_c, hfc_c) = overlay.overhead(OverheadKind::Coordinates);
        let (flat_s, hfc_s) = overlay.overhead(OverheadKind::ServiceCapability);
        assert!(
            hfc_c.mean < flat_c.mean,
            "seed {seed}: coordinates {} !< {}",
            hfc_c.mean,
            flat_c.mean
        );
        assert!(
            hfc_s.mean < flat_s.mean,
            "seed {seed}: services {} !< {}",
            hfc_s.mean,
            flat_s.mean
        );
        // And every individual proxy is below the flat bound.
        assert!(hfc_c.max <= flat_c.max);
        assert!(hfc_s.max <= flat_s.max + overlay.hfc().cluster_count());
    }
}

#[test]
fn protocol_tables_agree_with_router_construction() {
    // The router built directly from installed services must see the
    // same world as the one built from converged protocol tables.
    let overlay = ServiceOverlay::build(&SonConfig::small(6));
    let report = overlay.run_state_protocol();
    assert!(report.converged);

    let router = overlay.hier_router();
    // Every cluster aggregate in the router's SCT_C equals the union of
    // its members' installed services.
    for cluster in overlay.hfc().clusters() {
        let mut expected = son_core::ServiceSet::new();
        for &m in overlay.hfc().members(cluster) {
            expected.merge(&overlay.services()[m.index()]);
        }
        assert_eq!(
            router.sctc().services_of(cluster),
            Some(&expected),
            "aggregate mismatch for {cluster}"
        );
    }
}
