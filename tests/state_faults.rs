//! Property: the anti-entropy state protocol converges through any
//! survivable fault plan — i.i.d. loss up to 30%, duplication, jitter,
//! a temporary partition of one whole cluster, and a crash/restart —
//! and two runs under the same seed and plan produce byte-identical
//! event digests.

use proptest::prelude::*;
use son_core::{
    Clustering, DelayMatrix, FaultPlan, HfcTopology, NodeId, ProtocolConfig, ProxyId, ServiceId,
    ServiceSet, SimTime, StateProtocol, StateReport,
};

/// `clusters` planted communities of `size` proxies on a line: close
/// within a cluster, far apart between clusters, so Zahn-free label
/// assignment mirrors what the clustering stage would find.
fn world(clusters: usize, size: usize) -> (HfcTopology, DelayMatrix, Vec<ServiceSet>) {
    let n = clusters * size;
    let pos: Vec<f64> = (0..n)
        .map(|i| (i / size) as f64 * 300.0 + (i % size) as f64 * 4.0)
        .collect();
    let mut values = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            values[i * n + j] = (pos[i] - pos[j]).abs();
        }
    }
    let delays = DelayMatrix::from_values(n, values);
    let labels: Vec<usize> = (0..n).map(|i| i / size).collect();
    let hfc = HfcTopology::build(&Clustering::from_labels(&labels), &delays);
    let services: Vec<ServiceSet> = (0..n)
        .map(|i| ServiceSet::from_iter([ServiceId::new(i % 7), ServiceId::new(7 + i % 5)]))
        .collect();
    (hfc, delays, services)
}

fn run_plan(
    clusters: usize,
    size: usize,
    plan: FaultPlan,
    deadline_ms: f64,
) -> (StateReport, StateProtocol) {
    let (hfc, delays, services) = world(clusters, size);
    let mut protocol = StateProtocol::new(&hfc, services, &delays, ProtocolConfig::resilient());
    protocol.install_faults(plan);
    let report = protocol.run_until_converged(SimTime::from_ms(deadline_ms));
    (report, protocol)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn survivable_fault_plans_always_converge(
        shape in (2usize..5, 3usize..6),
        loss in 0.0f64..0.3,
        duplicate in 0.0f64..0.1,
        jitter_ms in 0.0f64..2.0,
        seed in 0u64..1_000_000,
        disruption in (0usize..1000, 10.0f64..120.0, 10.0f64..150.0),
    ) {
        let (clusters, size) = shape;
        let (crash_pick, partition_start, partition_len) = disruption;
        let n = clusters * size;
        // Cluster 0 is cut off for a bounded window — never permanent.
        let island: Vec<NodeId> = (0..size).map(NodeId::new).collect();
        // Any proxy may crash; it always comes back 40ms later.
        let victim = NodeId::new(crash_pick % n);
        let crash_at = 30.0 + (crash_pick % 50) as f64;
        let mut plan = FaultPlan::new(seed)
            .with_duplicate(duplicate)
            .with_partition(
                SimTime::from_ms(partition_start),
                SimTime::from_ms(partition_start + partition_len),
                island,
            )
            .with_crash(
                victim,
                SimTime::from_ms(crash_at),
                Some(SimTime::from_ms(crash_at + 40.0)),
            );
        if loss > 0.0 {
            plan = plan.with_loss(loss);
        }
        if jitter_ms > 0.0 {
            plan = plan.with_jitter_ms(jitter_ms);
        }
        let (report, protocol) = run_plan(clusters, size, plan, 30_000.0);
        prop_assert!(report.converged, "{report:?}");
        prop_assert_eq!(report.stale_entries, 0);
        prop_assert_eq!(report.crashed_proxies, 0);
        // The restarted proxy relearned its whole cluster.
        let (sctp, sctc) = protocol.tables_of(ProxyId::new(victim.index()));
        prop_assert_eq!(sctp.len(), size);
        prop_assert_eq!(sctc.len(), clusters);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn identical_seeds_reproduce_identical_trace_hashes(
        seed in 0u64..1_000_000,
        loss in 0.0f64..0.3,
    ) {
        let plan = || {
            let mut p = FaultPlan::new(seed)
                .with_duplicate(0.05)
                .with_jitter_ms(1.0)
                .with_crash(
                    NodeId::new(2),
                    SimTime::from_ms(40.0),
                    Some(SimTime::from_ms(80.0)),
                );
            if loss > 0.0 {
                p = p.with_loss(loss);
            }
            p
        };
        let (a, _) = run_plan(3, 4, plan(), 30_000.0);
        let (b, _) = run_plan(3, 4, plan(), 30_000.0);
        prop_assert_eq!(a, b);
        // A perturbed seed must not replay the same digest (the world
        // is identical, only the fault RNG differs).
        if loss > 0.0 {
            let (c, _) = run_plan(3, 4, plan().with_seed(seed + 1), 30_000.0);
            prop_assert_ne!(a.trace_hash, c.trace_hash);
        }
    }
}

#[test]
fn lossless_plan_converges_and_counts_nothing_dropped() {
    let (report, _) = run_plan(3, 4, FaultPlan::new(1), 30_000.0);
    assert!(report.converged);
    assert_eq!(report.messages_dropped, 0);
    assert_eq!(report.stale_entries, 0);
}
