//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so the workspace vendors
//! the tiny slice of the rand 0.8 API it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen`,
//! `gen_range`, and `gen_bool`. Streams are deterministic per seed but
//! are *not* bit-compatible with upstream rand; every consumer in this
//! workspace only relies on seeded determinism, never on exact values.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable from uniform bits (the rand `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a uniform `T` can be drawn from (`Rng::gen_range`).
///
/// Parameterized over the output type — not an associated type — so
/// integer literals in ranges infer from the call site, matching
/// upstream rand (`let i: usize = rng.gen_range(0..10)`).
pub trait SampleRange<T> {
    /// Draws one value from `rng`, uniformly over the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A deterministic 64-bit generator (SplitMix64 core): fast, decent
    /// statistical quality, and — unlike upstream — a trivially
    /// auditable implementation. Not cryptographic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..=4);
            assert!(w <= 4);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }
}
