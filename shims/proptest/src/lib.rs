//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access, so the workspace vendors
//! the subset of proptest it uses: the [`proptest!`] macro, range /
//! tuple / [`collection::vec`] / [`any`] strategies, `prop_map` /
//! `prop_flat_map` combinators, and the `prop_assert*` macros.
//!
//! Semantics differ from upstream in one deliberate way: failing cases
//! are **not shrunk** — the failing input is printed as-is. Every test
//! in this workspace treats proptest as a seeded random-case driver, so
//! shrinking is a debugging nicety, not a correctness requirement.

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic RNG driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from a label (typically the test name), so
    /// every test gets a distinct but reproducible stream.
    pub fn deterministic(label: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the label
        for b in label.bytes() {
            state ^= b as u64;
            state = state.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform usize in [0, bound).
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot sample an empty range");
        (self.next_u64() % bound as u64) as usize
    }
}

/// Why a property-test case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion inside the case failed.
    Fail(String),
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to generate.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values: the sampling core of proptest.
pub trait Strategy {
    /// The generated value type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generates a value, then samples from the strategy `f` derives
    /// from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "anything" strategy (`any::<T>()`).
pub trait ArbitrarySample: fmt::Debug + Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitrarySample for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitrarySample for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitrarySample for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, wide-ranging but tame: no NaN/inf surprises.
        (rng.next_f64() - 0.5) * 2e9
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: ArbitrarySample> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: ArbitrarySample>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Acceptable vector-length specs: an exact `usize` or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi_exclusive: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            SizeRange {
                lo: range.start,
                hi_exclusive: range.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *range.start(),
                hi_exclusive: range.end() + 1,
            }
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.lo < self.size.hi_exclusive, "empty size range");
            let len = self.size.lo + rng.below(self.size.hi_exclusive - self.size.lo);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` with length drawn from
    /// `size` (a range, or a bare `usize` for an exact length).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! Everything a proptest-using test module needs.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ArbitrarySample,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, "assertion failed: {:?} == {:?}", left, right);
    }};
}

/// Defines property tests: each `fn name(arg in strategy, ...)` becomes
/// an ordinary `#[test]` that samples its arguments `config.cases`
/// times and panics on the first failing case (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    // Render the inputs up front: the body may move them.
                    let rendered_inputs = format!("{:?}", ($(&$arg,)+));
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {case} failed: {e}\ninputs: {rendered_inputs}"
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_in_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..200 {
            let v = Strategy::sample(&(3usize..10), &mut rng);
            assert!((3..10).contains(&v));
            let f = Strategy::sample(&(-1.0f64..1.0), &mut rng);
            assert!((-1.0..1.0).contains(&f));
            let (a, b) = Strategy::sample(&(0usize..4, 0.0f64..2.0), &mut rng);
            assert!(a < 4 && (0.0..2.0).contains(&b));
            let xs = Strategy::sample(&crate::collection::vec(0usize..5, 1..7), &mut rng);
            assert!(!xs.is_empty() && xs.len() < 7 && xs.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::deterministic("compose");
        let doubled = (1usize..10).prop_map(|x| x * 2);
        let nested = (2usize..5).prop_flat_map(|n| crate::collection::vec(0usize..n, 1..4));
        for _ in 0..100 {
            let d = Strategy::sample(&doubled, &mut rng);
            assert!(d % 2 == 0 && d < 20);
            let v = Strategy::sample(&nested, &mut rng);
            assert!(v.len() < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: args bind, asserts work, `?` propagates.
        #[test]
        fn macro_generates_runnable_tests(x in 0usize..50, ys in crate::collection::vec(0usize..9, 1..5)) {
            prop_assert!(x < 50);
            prop_assert_eq!(ys.len(), ys.iter().filter(|&&y| y < 9).count());
            let parsed: usize = "7".parse().map_err(|_| TestCaseError::fail("parse"))?;
            prop_assert_ne!(parsed, 8);
        }
    }
}
