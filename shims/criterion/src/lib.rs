//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access, so the workspace vendors
//! the API subset its benches use: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Statistical sampling is deliberately replaced by a **single timed
//! pass** per benchmark: `harness = false` bench targets are compiled
//! and run by `cargo test`, so the workspace's tier-1 gate would
//! otherwise pay for full criterion sampling on every test run. For
//! real measurements, run a bench bin repeatedly and aggregate outside.

use std::fmt;
use std::time::Instant;

/// Times one closure invocation.
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Runs `routine` once and records its wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.elapsed_ns = start.elapsed().as_nanos();
        std::hint::black_box(out);
    }
}

/// A `function/parameter` label for one benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter into a label.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// A label from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the single-pass harness ignores
    /// sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs `routine` once under `id`, printing the measured time.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { elapsed_ns: 0 };
        routine(&mut bencher);
        report(&format!("{}/{}", self.name, id), bencher.elapsed_ns);
        self
    }

    /// Runs `routine` once with `input`, printing the measured time.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { elapsed_ns: 0 };
        routine(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), bencher.elapsed_ns);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark function once.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { elapsed_ns: 0 };
        routine(&mut bencher);
        report(name, bencher.elapsed_ns);
        self
    }
}

fn report(label: &str, elapsed_ns: u128) {
    let ms = elapsed_ns as f64 / 1e6;
    println!("bench {label}: {ms:.3} ms (single pass)");
}

/// Re-export point used by generated `main` functions.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a group of benchmark functions, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sum");
        group.sample_size(10);
        for n in [10u64, 100] {
            group.bench_with_input(BenchmarkId::new("range", n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
        }
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| 2 + 2));
    }

    criterion_group!(benches, sum_bench);

    #[test]
    fn harness_runs_benches() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
