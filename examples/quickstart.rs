//! Quickstart: build a clustered service overlay and route a request.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use son_core::{OverheadKind, RouteError, ServiceOverlay, SonConfig};

fn main() {
    // A small world: 120 physical nodes, 60 proxies, 8 landmarks.
    let config = SonConfig::small(42);
    let overlay = ServiceOverlay::build(&config);
    let stats = overlay.stats();

    println!("== overlay ==");
    println!("physical nodes : {}", overlay.physical().len());
    println!("proxies        : {}", overlay.proxy_count());
    println!("clusters       : {}", stats.clusters);
    println!("border proxies : {}", stats.border_proxies);
    println!(
        "embedding error: median {:.1}% (p90 {:.1}%)",
        stats.embedding_error.median * 100.0,
        stats.embedding_error.p90 * 100.0
    );

    // Converge the distributed state protocol.
    let report = overlay.run_state_protocol();
    println!("\n== state protocol ==");
    println!("converged      : {}", report.converged);
    println!("ended at       : {}", report.ended_at);
    println!(
        "messages       : {} local + {} aggregate",
        report.local_messages, report.aggregate_messages
    );

    // State overhead vs. a flat overlay (the paper's Figure 9).
    let (flat_c, hfc_c) = overlay.overhead(OverheadKind::Coordinates);
    let (flat_s, hfc_s) = overlay.overhead(OverheadKind::ServiceCapability);
    println!("\n== per-proxy node-states (flat vs HFC) ==");
    println!("coordinates    : {:.0} vs {:.1}", flat_c.mean, hfc_c.mean);
    println!("capabilities   : {:.0} vs {:.1}", flat_s.mean, hfc_s.mean);

    // Route requests hierarchically and against the mesh baseline.
    let router = overlay.hier_router();
    let mesh = overlay.build_mesh();
    let requests = overlay.generate_requests(10, 7);
    println!("\n== routing ==");
    for (i, request) in requests.iter().enumerate() {
        match router.route(request) {
            Ok(route) => {
                route
                    .path
                    .validate(request, |p, s| overlay.carries(p, s))
                    .expect("hierarchical paths are feasible");
                let hier_len = overlay.true_length(&route.path);
                let mesh_len = overlay
                    .route_mesh(&mesh, request)
                    .map(|p| overlay.true_length(&p))
                    .unwrap_or(f64::NAN);
                println!(
                    "request {i}: {} services, {} child requests, \
                     HFC {hier_len:.1}ms vs mesh {mesh_len:.1}ms",
                    request.graph.len(),
                    route.child_count,
                );
            }
            Err(RouteError::NoProvider(s)) => {
                println!("request {i}: service {s} unavailable anywhere — rejected");
            }
            Err(e) => println!("request {i}: {e}"),
        }
    }
}
