//! QoS-constrained hierarchical routing — the paper's §7 extension.
//!
//! Each proxy carries a QoS profile (egress bandwidth, machine load,
//! volatility); a request adds constraints and the hierarchical router
//! only maps services onto admissible proxies. The trade-off is
//! visible: tighter constraints shrink the provider pool, so paths get
//! longer until requests become unroutable.
//!
//! ```sh
//! cargo run --release --example qos_routing
//! ```

use son_core::{QosRequirement, ServiceOverlay, SonConfig};

fn main() {
    let overlay = ServiceOverlay::build(&SonConfig::small(33));
    let requests = overlay.generate_requests(60, 17);

    let tiers = [
        ("best effort      ", QosRequirement::default()),
        (
            "video ready     ",
            QosRequirement {
                min_bandwidth_mbps: Some(50.0),
                ..QosRequirement::default()
            },
        ),
        (
            "low load        ",
            QosRequirement {
                min_bandwidth_mbps: Some(50.0),
                max_load: Some(0.5),
                ..QosRequirement::default()
            },
        ),
        (
            "premium + stable",
            QosRequirement {
                min_bandwidth_mbps: Some(300.0),
                max_load: Some(0.4),
                max_volatility: Some(0.1),
            },
        ),
    ];

    println!(
        "{} proxies, {} clusters; 60 requests per tier\n",
        overlay.proxy_count(),
        overlay.hfc().cluster_count()
    );
    println!(
        "{:<18} {:>12} {:>14} {:>14}",
        "tier", "admissible", "routed", "avg length"
    );
    for (label, req) in &tiers {
        let admissible = overlay
            .qos()
            .iter()
            .filter(|profile| req.admits(profile))
            .count();
        let router = overlay.qos_router(req);
        let mut routed = 0;
        let mut total = 0.0;
        for request in &requests {
            if let Ok(route) = router.route(request) {
                routed += 1;
                total += overlay.true_length(&route.path);
            }
        }
        let avg = if routed > 0 {
            format!("{:.1}ms", total / routed as f64)
        } else {
            "-".to_string()
        };
        println!(
            "{:<18} {:>9}/{:<3} {:>13} {:>14}",
            label,
            admissible,
            overlay.proxy_count(),
            format!("{routed}/60"),
            avg
        );
    }
    println!(
        "\nQoS filtering keeps both levels of the hierarchy exact: cluster\n\
         aggregates and SCT_P tables are computed over admissible proxies\n\
         only, so no optimistic-aggregate crankback is ever needed."
    );
}
