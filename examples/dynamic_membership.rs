//! Dynamic membership — the paper's first future direction (§7),
//! implemented in `son_core::membership`.
//!
//! Proxies join the cluster of their nearest neighbor (cheap, no
//! re-clustering); churn gradually deteriorates the clustering, a
//! quality score detects it, and a restructure (full MST + Zahn pass)
//! repairs it.
//!
//! ```sh
//! cargo run --release --example dynamic_membership
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use son_core::membership::DynamicOverlay;
use son_core::{Coordinates, ProxyId, ZahnConfig};

fn main() {
    let mut rng = StdRng::seed_from_u64(9);
    // Start from five tight communities in the plane.
    let centers = [
        (0.0, 0.0),
        (400.0, 50.0),
        (120.0, 500.0),
        (500.0, 450.0),
        (250.0, 250.0),
    ];
    let mut coords = Vec::new();
    for &(cx, cy) in &centers {
        for _ in 0..8 {
            coords.push(Coordinates::new(vec![
                cx + rng.gen::<f64>() * 30.0,
                cy + rng.gen::<f64>() * 30.0,
            ]));
        }
    }
    let mut overlay = DynamicOverlay::new(coords, ZahnConfig::default());
    println!(
        "initial: {} proxies, {} clusters, quality {:.3}",
        overlay.len(),
        overlay.hfc().cluster_count(),
        overlay.quality().unwrap_or(f64::NAN)
    );

    // Churn: two *new* communities come online (e.g. new data centers)
    // and a few old members leave. Join-nearest stretches the existing
    // clusters toward the newcomers instead of recognizing the new
    // groups.
    let new_centers = [(720.0, 120.0), (80.0, 760.0)];
    for round in 1..=4 {
        for _ in 0..6 {
            let (cx, cy) = new_centers[rng.gen_range(0..new_centers.len())];
            overlay.join(Coordinates::new(vec![
                cx + rng.gen::<f64>() * 40.0,
                cy + rng.gen::<f64>() * 40.0,
            ]));
        }
        for _ in 0..2 {
            let victim = ProxyId::new(rng.gen_range(0..overlay.len()));
            overlay.leave(victim);
        }
        println!(
            "after churn round {round}: {} proxies, {} clusters, quality {:.3}",
            overlay.len(),
            overlay.hfc().cluster_count(),
            overlay.quality().unwrap_or(f64::NAN)
        );
    }

    // Quality-triggered restructuring.
    let threshold = 0.08;
    let restructured = overlay.restructure_if_needed(threshold);
    println!(
        "\nrestructure (threshold {threshold}): {} -> {} clusters, quality {:.3}{}",
        if restructured { "ran" } else { "skipped" },
        overlay.hfc().cluster_count(),
        overlay.quality().unwrap_or(f64::NAN),
        if restructured {
            " (fresh MST + Zahn pass)"
        } else {
            ""
        }
    );
}
