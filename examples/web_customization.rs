//! The paper's Web-document scenario (Section 2.1) with a *non-linear*
//! service graph (Figure 2(b)).
//!
//! A document can reach the client two ways:
//!
//! * `translate → merge → format` (translate first, then merge with a
//!   local document), or
//! * `ocr → merge → format` (the source is a scanned image that must be
//!   OCR'd instead of translated), or
//! * `ocr → format` (when no merge is needed for scanned sources).
//!
//! The router picks whichever feasible configuration yields the
//! shortest path — and different client locations pick different
//! configurations.
//!
//! ```sh
//! cargo run --release --example web_customization
//! ```

use son_core::{
    ProxyId, ServiceGraph, ServiceOverlay, ServiceRegistry, ServiceRequest, ServiceSet, SonConfig,
};

fn main() {
    let mut registry = ServiceRegistry::new();
    let translate = registry.intern("translate");
    let ocr = registry.intern("ocr");
    let merge = registry.intern("merge");
    let format = registry.intern("format");

    let base = ServiceOverlay::build(&SonConfig::small(77));
    let n = base.proxy_count();
    // translate is rare (every 11th proxy), ocr more common (every 5th),
    // merge/format widespread (every 3rd, alternating).
    let services: Vec<ServiceSet> = (0..n)
        .map(|i| {
            let mut set = ServiceSet::new();
            if i % 11 == 0 {
                set.insert(translate);
            }
            if i % 5 == 0 {
                set.insert(ocr);
            }
            if i % 3 == 0 {
                set.insert(if i % 2 == 0 { merge } else { format });
            }
            if i % 9 == 0 {
                set.insert(format);
            }
            set
        })
        .collect();
    let overlay = base.with_services(services);

    // Figure 2(b)-shaped graph: two source stages (translate, ocr)
    // feeding merge → format, plus the ocr → format shortcut.
    let graph = ServiceGraph::builder()
        .stage(translate) // 0
        .stage(ocr) // 1
        .stage(merge) // 2
        .stage(format) // 3
        .edge(0, 2)
        .edge(1, 2)
        .edge(2, 3)
        .edge(1, 3)
        .build()
        .expect("the dependency graph is acyclic");
    println!(
        "configurations available: {:?}",
        graph
            .configurations()
            .iter()
            .map(|c| c
                .iter()
                .map(|&s| registry.name(graph.service(s)))
                .collect::<Vec<_>>()
                .join("→"))
            .collect::<Vec<_>>()
    );
    println!();

    let router = overlay.hier_router();
    for (src, dst) in [(2usize, 50usize), (17, 33), (44, 8), (29, 58)] {
        let request = ServiceRequest::new(ProxyId::new(src), graph.clone(), ProxyId::new(dst));
        match router.route(&request) {
            Ok(route) => {
                route
                    .path
                    .validate(&request, |p, s| overlay.carries(p, s))
                    .expect("routed paths are feasible");
                let chosen: Vec<&str> = route
                    .path
                    .service_chain()
                    .iter()
                    .map(|&s| registry.name(s))
                    .collect();
                println!(
                    "p{src} → p{dst}: picked [{}], {:.1}ms over {} clusters",
                    chosen.join(" → "),
                    overlay.true_length(&route.path),
                    route.child_count
                );
            }
            Err(e) => println!("p{src} → p{dst}: {e}"),
        }
    }
}
