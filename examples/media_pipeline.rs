//! The paper's motivating multimedia scenario (Section 2.1):
//!
//! > An MPEG video stream may undergo a series of transformations for
//! > customization: (1) be watermarked for copyright protection;
//! > (2) be converted from MPEG to H.261 to reduce bandwidth
//! > requirement; (3) be incorporated with a background music, under
//! > user's request; (4) be compressed, again, for less bandwidth
//! > requirement.
//!
//! We install these named services on a sparse subset of proxies and
//! route the four-stage pipeline from a media server's proxy to a
//! client's proxy, comparing the hierarchical route against the
//! full-state HFC optimum.
//!
//! ```sh
//! cargo run --release --example media_pipeline
//! ```

use son_core::{
    ProxyId, ServiceGraph, ServiceOverlay, ServiceRegistry, ServiceRequest, ServiceSet, SonConfig,
};

fn main() {
    let mut registry = ServiceRegistry::new();
    let watermark = registry.intern("watermark");
    let mpeg2h261 = registry.intern("mpeg2h261");
    let bg_music = registry.intern("background-music");
    let compress = registry.intern("compress");

    // Build the overlay world, then install the media services by hand:
    // every 7th proxy gets one of the four services, round-robin, so
    // providers are scattered across clusters.
    let base = ServiceOverlay::build(&SonConfig::small(2024));
    let n = base.proxy_count();
    let all = [watermark, mpeg2h261, bg_music, compress];
    let services: Vec<ServiceSet> = (0..n)
        .map(|i| {
            if i % 7 == 0 {
                ServiceSet::from_iter([all[(i / 7) % all.len()]])
            } else {
                ServiceSet::new()
            }
        })
        .collect();
    let overlay = base.with_services(services);

    let pipeline = ServiceGraph::linear(vec![watermark, mpeg2h261, bg_music, compress]);
    println!("pipeline: watermark → mpeg2h261 → background-music → compress");
    println!(
        "world: {} proxies in {} clusters\n",
        overlay.proxy_count(),
        overlay.hfc().cluster_count()
    );

    let router = overlay.hier_router();
    let server = ProxyId::new(1);
    for client in [10usize, 25, 40, 55] {
        let request = ServiceRequest::new(server, pipeline.clone(), ProxyId::new(client));
        match router.route(&request) {
            Ok(route) => {
                route
                    .path
                    .validate(&request, |p, s| overlay.carries(p, s))
                    .expect("routed paths are feasible");
                let full = router
                    .route_without_aggregation(&request)
                    .expect("full-state route exists when the hierarchical one does");
                println!("server {server} → client p{client}");
                print!("  path : ");
                let mut first = true;
                for hop in route.path.hops() {
                    if !first {
                        print!(" → ");
                    }
                    first = false;
                    match hop.service {
                        Some(s) => print!("{}@{}", registry.name(s), hop.proxy),
                        None => print!("{}", hop.proxy),
                    }
                }
                println!();
                println!(
                    "  delay: {:.1}ms hierarchical vs {:.1}ms full-state HFC ({} relays)",
                    overlay.true_length(&route.path),
                    overlay.true_length(&full),
                    route.path.relay_count(),
                );
            }
            Err(e) => println!("server {server} → client p{client}: {e}"),
        }
        println!();
    }
}
