//! Scalability sweep: how state overhead and cluster structure evolve
//! with overlay size (a quick, laptop-sized rendition of the paper's
//! Section 6.1 story).
//!
//! ```sh
//! cargo run --release --example scalability
//! ```

use son_core::{Environment, OverheadKind, ServiceOverlay, SonConfig};

fn main() {
    println!(
        "{:>8} {:>9} {:>9} {:>12} {:>12} {:>12} {:>12}",
        "proxies", "clusters", "borders", "flat-coord", "hfc-coord", "flat-svc", "hfc-svc"
    );
    for proxies in [60usize, 120, 180, 240] {
        let environment = Environment {
            physical_nodes: proxies * 2,
            landmarks: 10,
            proxies,
            clients: proxies / 6,
            services_per_proxy: (4, 10),
            request_length: (4, 10),
            service_universe: 60,
            seed: 5,
        };
        let overlay = ServiceOverlay::build(&SonConfig::from_environment(environment));
        let (flat_c, hfc_c) = overlay.overhead(OverheadKind::Coordinates);
        let (flat_s, hfc_s) = overlay.overhead(OverheadKind::ServiceCapability);
        println!(
            "{:>8} {:>9} {:>9} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            proxies,
            overlay.stats().clusters,
            overlay.stats().border_proxies,
            flat_c.mean,
            hfc_c.mean,
            flat_s.mean,
            hfc_s.mean
        );
    }
    println!(
        "\nFlat state grows linearly (slope 1); HFC state grows with the\n\
         local cluster size plus the border/cluster counts — the gap is\n\
         the scalability win of Figure 9."
    );
}
