//! Property tests for the lock-free flight ring.
//!
//! The ring's contract under concurrency: an event whose `record()`
//! call returned a sequence number ("acknowledged") is durably
//! published — if its slot has not been lapped by a later sequence
//! number, a subsequent `dump()` must return it with every field
//! intact. Readers never observe torn payloads, and the dump is always
//! strictly ordered by sequence number.

use proptest::prelude::*;
use son_telemetry::{FlightEvent, FlightKind, FlightRecorder};
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn concurrent_writers_keep_the_most_recent_capacity_events(
        seed in 0u64..1_000,
        writers in 2usize..5,
        per_writer in 10usize..50,
    ) {
        let capacity = 32usize;
        let recorder = FlightRecorder::new(capacity);
        recorder.set_enabled(true);
        // Each writer records a distinct, recognizable payload stream;
        // acknowledged (seq, request, value) triples are collected.
        let acknowledged: Vec<(u64, u64, f64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..writers)
                .map(|w| {
                    let recorder = &recorder;
                    scope.spawn(move || {
                        let mut acks = Vec::new();
                        for k in 0..per_writer {
                            let request =
                                seed * 1_000_000 + (w as u64) * 1_000 + k as u64;
                            let value = request as f64 * 0.5;
                            if let Some(seq) = recorder.record(
                                FlightEvent::new(FlightKind::SnapshotInstall)
                                    .tick(k as u64)
                                    .request(request)
                                    .worker(w)
                                    .value(value),
                            ) {
                                acks.push((seq, request, value));
                            }
                        }
                        acks
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("writer panicked"))
                .collect()
        });
        // Every attempt took a ticket, acknowledged or dropped.
        let head = recorder.recorded();
        prop_assert_eq!(head, (writers * per_writer) as u64);
        prop_assert_eq!(
            acknowledged.len() as u64 + recorder.dropped(),
            head
        );

        let dump = recorder.dump();
        prop_assert!(dump.len() <= capacity, "dump holds at most `capacity` events");
        prop_assert!(
            dump.windows(2).all(|pair| pair[0].seq < pair[1].seq),
            "dump must be strictly seq-ordered"
        );
        // No writer is mid-publish anymore, so every acknowledged event
        // in the last `capacity` sequence numbers must be in the dump,
        // field-for-field.
        let by_seq: HashMap<u64, &FlightEvent> = dump.iter().map(|e| (e.seq, e)).collect();
        let floor = head.saturating_sub(capacity as u64);
        for &(seq, request, value) in &acknowledged {
            if seq < floor {
                continue;
            }
            let event = by_seq
                .get(&seq)
                .unwrap_or_else(|| panic!("acknowledged seq {seq} >= floor {floor} lost"));
            prop_assert_eq!(event.request, request);
            prop_assert_eq!(event.value, value);
            prop_assert!(matches!(event.kind, FlightKind::SnapshotInstall));
        }
    }

    #[test]
    fn single_writer_dump_is_deterministic_for_a_fixed_seed(seed in 0u64..1_000) {
        let run = |seed: u64| {
            let recorder = FlightRecorder::new(16);
            recorder.set_enabled(true);
            let mut state = seed;
            for i in 0..50u64 {
                // SplitMix-style stream: the whole event derives from
                // the seed, so two runs must produce identical rings.
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                recorder.record(
                    FlightEvent::new(FlightKind::HealthTransition)
                        .tick(i)
                        .request(state % 100)
                        .proxy((state >> 8) as u32 % 64)
                        .value((state >> 16 & 0xFFFF) as f64),
                );
            }
            recorder.dump()
        };
        let first = run(seed);
        let again = run(seed);
        prop_assert_eq!(first.len(), 16);
        prop_assert_eq!(first, again);
    }
}
