//! Log-bucketed histogram with cheap concurrent recording.
//!
//! Buckets grow geometrically by `2^(1/8)` per step (eight buckets per
//! octave), so any recorded value lands in a bucket whose upper bound is
//! at most `2^(1/8) - 1 ≈ 9.05%` above the value. Quantile extraction
//! therefore carries a **relative error bound of one bucket width
//! (≤ 9.05%)**; the tracked exact maximum additionally clamps every
//! quantile so `p50 ≤ p90 ≤ p99 ≤ max` holds exactly.
//!
//! Recording is lock-free: one relaxed fetch-add on the bucket and the
//! count, a CAS loop folding the value into an `f64`-bit sum, and a CAS
//! loop raising the `f64`-bit maximum (valid because non-negative finite
//! doubles order the same as their bit patterns).
//!
//! For per-item recording inside hot loops, [`LocalHistogram`] is a
//! single-thread accumulator with plain (non-atomic) fields that folds
//! into a shared [`Histogram`] in one `flush_into` call, so the atomic
//! traffic is paid once per batch instead of once per record.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sub-buckets per power of two. Growth factor is `2^(1/8)`.
const BUCKETS_PER_OCTAVE: usize = 8;
/// Octaves covered above 1.0. `2^40 µs ≈ 12.7 days` — ample for latency.
const OCTAVES: usize = 40;
/// `[0, 1)` underflow bucket + log buckets + overflow bucket.
const BUCKETS: usize = 2 + OCTAVES * BUCKETS_PER_OCTAVE;

/// Worst-case relative quantile error introduced by bucketing:
/// the growth factor minus one, `2^(1/8) - 1`.
pub const RELATIVE_ERROR_BOUND: f64 = 0.090_507_732_665_257_66;

struct Core {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of recorded values, stored as `f64` bits and folded via CAS.
    sum_bits: AtomicU64,
    /// Exact maximum recorded value, stored as `f64` bits.
    max_bits: AtomicU64,
}

/// A concurrent log-bucketed histogram handle. Clones share storage.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<Core>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        let buckets = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            core: Arc::new(Core {
                buckets,
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
                max_bits: AtomicU64::new(0f64.to_bits()),
            }),
        }
    }

    /// Index of the bucket that holds `value`.
    fn bucket_index(value: f64) -> usize {
        if value < 1.0 {
            return 0;
        }
        let idx = 1 + (value.log2() * BUCKETS_PER_OCTAVE as f64).floor() as usize;
        idx.min(BUCKETS - 1)
    }

    /// Upper bound of bucket `idx` (inclusive enough for quantiles).
    fn bucket_upper(idx: usize) -> f64 {
        if idx == 0 {
            return 1.0;
        }
        2f64.powf(idx as f64 / BUCKETS_PER_OCTAVE as f64)
    }

    /// Records a single non-negative value. Negative or non-finite
    /// values are clamped to zero so quantiles stay well-defined.
    pub fn record(&self, value: f64) {
        let value = if value.is_finite() && value > 0.0 {
            value
        } else {
            0.0
        };
        let idx = Self::bucket_index(value);
        self.core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
        self.add_sum(value);
        // Raise the exact maximum. Non-negative doubles order by bits.
        let bits = value.to_bits();
        self.core.max_bits.fetch_max(bits, Ordering::Relaxed);
    }

    /// Folds `value` into the f64-bit sum.
    fn add_sum(&self, value: f64) {
        let mut cur = self.core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self.core.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.core.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean of recorded values (zero when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Exact maximum recorded value (zero when empty).
    pub fn max(&self) -> f64 {
        f64::from_bits(self.core.max_bits.load(Ordering::Relaxed))
    }

    /// Nearest-rank quantile estimate for `q` in `[0, 1]`.
    ///
    /// Returns the upper bound of the bucket containing the ranked
    /// sample, clamped to the exact tracked maximum, so the result
    /// overestimates by at most one bucket width (≤ 9.05%) and the
    /// quantile sequence is monotone up to `max()`.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * (n as f64 - 1.0)).round() as u64).min(n - 1);
        let mut seen = 0u64;
        for (idx, bucket) in self.core.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen > rank {
                return Self::bucket_upper(idx).min(self.max());
            }
        }
        self.max()
    }

    /// Captures count/sum/quantiles in one pass.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

/// A single-thread accumulator for hot loops.
///
/// Recording here is a bucket computation plus three plain writes — no
/// atomic read-modify-write — and [`LocalHistogram::flush_into`] folds
/// everything accumulated into a shared [`Histogram`] with one atomic
/// operation per touched bucket. Use it when instrumenting per-item
/// work measured in nanoseconds; the flushed result is identical to
/// calling [`Histogram::record`] per item.
#[derive(Clone)]
pub struct LocalHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    max: f64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        LocalHistogram::new()
    }
}

impl LocalHistogram {
    /// Creates an empty accumulator.
    pub fn new() -> LocalHistogram {
        LocalHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            max: 0.0,
        }
    }

    /// Records a single value under the same clamping rules as
    /// [`Histogram::record`].
    pub fn record(&mut self, value: f64) {
        let value = if value.is_finite() && value > 0.0 {
            value
        } else {
            0.0
        };
        self.buckets[Histogram::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of values recorded since the last flush.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds everything recorded so far into `target` and resets this
    /// accumulator so it can be reused for the next batch.
    pub fn flush_into(&mut self, target: &Histogram) {
        if self.count == 0 {
            return;
        }
        for (idx, n) in self.buckets.iter_mut().enumerate() {
            if *n > 0 {
                target.core.buckets[idx].fetch_add(*n, Ordering::Relaxed);
                *n = 0;
            }
        }
        target.core.count.fetch_add(self.count, Ordering::Relaxed);
        target.add_sum(self.sum);
        target
            .core
            .max_bits
            .fetch_max(self.max.to_bits(), Ordering::Relaxed);
        self.count = 0;
        self.sum = 0.0;
        self.max = 0.0;
    }
}

/// A point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Median estimate (bucketed, ≤ 9.05% high).
    pub p50: f64,
    /// 90th-percentile estimate.
    pub p90: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
    /// Exact maximum.
    pub max: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact nearest-rank quantile over a sorted slice, mirroring the
    /// engine's `LatencySummary::from_samples` convention.
    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = (q * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    #[test]
    fn quantiles_match_known_distribution_within_a_bucket() {
        // Deterministic skewed distribution: 1..=1000 squared, scaled.
        let h = Histogram::new();
        let mut values: Vec<f64> = (1..=1000).map(|i| (i * i) as f64 / 37.0).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.5, 0.9, 0.99] {
            let exact = exact_quantile(&values, q);
            let bucketed = h.quantile(q);
            assert!(
                bucketed >= exact * (1.0 - 1e-9),
                "q{q}: bucketed {bucketed} below exact {exact}"
            );
            assert!(
                bucketed <= exact * (1.0 + RELATIVE_ERROR_BOUND) + 1.0,
                "q{q}: bucketed {bucketed} more than one bucket above exact {exact}"
            );
        }
        assert_eq!(h.count(), 1000);
        let exact_sum: f64 = values.iter().sum();
        assert!((h.sum() - exact_sum).abs() < 1e-6 * exact_sum);
        assert_eq!(h.max(), *values.last().unwrap());
    }

    #[test]
    fn quantile_sequence_is_monotone_and_clamped_to_max() {
        let h = Histogram::new();
        for v in [3.0, 3.0, 3.0, 3.1] {
            h.record(v);
        }
        let s = h.snapshot();
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
        assert_eq!(s.max, 3.1);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!((s.count, s.sum, s.p50, s.max), (0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn negative_and_non_finite_values_clamp_to_zero() {
        let h = Histogram::new();
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.quantile(0.99), 0.0);
    }

    #[test]
    fn local_flush_is_identical_to_direct_records() {
        let direct = Histogram::new();
        let shared = Histogram::new();
        let mut local = LocalHistogram::new();
        let values: Vec<f64> = (1..=500).map(|i| (i * 13 % 997) as f64 / 3.0).collect();
        for &v in &values {
            direct.record(v);
            local.record(v);
        }
        assert_eq!(local.count(), 500);
        local.flush_into(&shared);
        assert_eq!(shared.count(), direct.count());
        assert_eq!(shared.sum(), direct.sum());
        assert_eq!(shared.max(), direct.max());
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(shared.quantile(q), direct.quantile(q));
        }
        // The accumulator resets: a second flush adds nothing.
        assert_eq!(local.count(), 0);
        local.flush_into(&shared);
        assert_eq!(shared.count(), direct.count());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record((t * 10_000 + i) as f64 % 977.0);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
    }
}
