//! Log-bucketed histogram with cheap concurrent recording.
//!
//! Buckets grow geometrically by `2^(1/8)` per step (eight buckets per
//! octave), so any recorded value lands in a bucket whose upper bound is
//! at most `2^(1/8) - 1 ≈ 9.05%` above the value. Quantile extraction
//! therefore carries a **relative error bound of one bucket width
//! (≤ 9.05%)**; the tracked exact maximum additionally clamps every
//! quantile so `p50 ≤ p90 ≤ p99 ≤ max` holds exactly.
//!
//! Recording is lock-free: one relaxed fetch-add on the bucket and the
//! count, a CAS loop folding the value into an `f64`-bit sum, and a CAS
//! loop raising the `f64`-bit maximum (valid because non-negative finite
//! doubles order the same as their bit patterns).
//!
//! For per-item recording inside hot loops, [`LocalHistogram`] is a
//! single-thread accumulator with plain (non-atomic) fields that folds
//! into a shared [`Histogram`] in one `flush_into` call, so the atomic
//! traffic is paid once per batch instead of once per record.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sub-buckets per power of two. Growth factor is `2^(1/8)`.
const BUCKETS_PER_OCTAVE: usize = 8;
/// Octaves covered above 1.0. `2^40 µs ≈ 12.7 days` — ample for latency.
const OCTAVES: usize = 40;
/// `[0, 1)` underflow bucket + log buckets + overflow bucket.
const BUCKETS: usize = 2 + OCTAVES * BUCKETS_PER_OCTAVE;

/// Worst-case relative quantile error introduced by bucketing:
/// the growth factor minus one, `2^(1/8) - 1`.
pub const RELATIVE_ERROR_BOUND: f64 = 0.090_507_732_665_257_66;

struct Core {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of recorded values, stored as `f64` bits and folded via CAS.
    sum_bits: AtomicU64,
    /// Exact maximum recorded value, stored as `f64` bits.
    max_bits: AtomicU64,
}

/// A concurrent log-bucketed histogram handle. Clones share storage.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<Core>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        let buckets = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            core: Arc::new(Core {
                buckets,
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
                max_bits: AtomicU64::new(0f64.to_bits()),
            }),
        }
    }

    /// Index of the bucket that holds `value`: `1 + ⌊8·log₂(value)⌋`,
    /// computed from the float's bit pattern. The exponent field gives
    /// the octave and the mantissa is compared against the seven
    /// sub-octave boundaries `2^(k/8)` directly — exact, and an order
    /// of magnitude cheaper than `f64::log2` on the record hot path.
    fn bucket_index(value: f64) -> usize {
        if value < 1.0 {
            return 0;
        }
        // Mantissa bits of the sub-octave boundaries: the 52-bit
        // mantissa of 2^(k/8) for k = 1..=7, rounded up so that
        // `mantissa >= threshold` means `value >= 2^(k/8)` exactly.
        const SUB_OCTAVE: [u64; 7] = [
            0x172b83c7d517b,
            0x306fe0a31b716,
            0x4bfdad5362a28,
            0x6a09e667f3bcd,
            0x8ace5422aa0dc,
            0xae89f995ad3ae,
            0xd5818dcfba488,
        ];
        let bits = value.to_bits();
        // value >= 1.0 and finite, so the biased exponent is >= 1023.
        let octave = ((bits >> 52) & 0x7FF) as usize - 1023;
        let mantissa = bits & ((1u64 << 52) - 1);
        let mut sub = 0usize;
        for &t in &SUB_OCTAVE {
            sub += usize::from(mantissa >= t);
        }
        (1 + octave * BUCKETS_PER_OCTAVE + sub).min(BUCKETS - 1)
    }

    /// Upper bound of bucket `idx` (inclusive enough for quantiles).
    fn bucket_upper(idx: usize) -> f64 {
        if idx == 0 {
            return 1.0;
        }
        2f64.powf(idx as f64 / BUCKETS_PER_OCTAVE as f64)
    }

    /// Records a single non-negative value. Negative or non-finite
    /// values are clamped to zero so quantiles stay well-defined.
    pub fn record(&self, value: f64) {
        let value = if value.is_finite() && value > 0.0 {
            value
        } else {
            0.0
        };
        let idx = Self::bucket_index(value);
        self.core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
        self.add_sum(value);
        // Raise the exact maximum. Non-negative doubles order by bits.
        let bits = value.to_bits();
        self.core.max_bits.fetch_max(bits, Ordering::Relaxed);
    }

    /// Folds `value` into the f64-bit sum.
    fn add_sum(&self, value: f64) {
        let mut cur = self.core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self.core.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.core.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean of recorded values (zero when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Exact maximum recorded value (zero when empty).
    pub fn max(&self) -> f64 {
        f64::from_bits(self.core.max_bits.load(Ordering::Relaxed))
    }

    /// Nearest-rank quantile estimate for `q` in `[0, 1]`.
    ///
    /// Returns the upper bound of the bucket containing the ranked
    /// sample, clamped to the exact tracked maximum, so the result
    /// overestimates by at most one bucket width (≤ 9.05%) and the
    /// quantile sequence is monotone up to `max()`.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * (n as f64 - 1.0)).round() as u64).min(n - 1);
        let mut seen = 0u64;
        for (idx, bucket) in self.core.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen > rank {
                return Self::bucket_upper(idx).min(self.max());
            }
        }
        self.max()
    }

    /// Captures the full bucket-resolution state in one coherent pass.
    ///
    /// The bucket array is copied first and the derived count comes from
    /// that copy, so quantiles computed from the cells are always
    /// mutually consistent — unlike reading `count()`/`quantile()`
    /// separately, which can interleave with a concurrent
    /// [`LocalHistogram::flush_into`] and tear.
    pub fn cells(&self) -> HistogramCells {
        let buckets: Vec<u64> = self
            .core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        // Sum and max are read after the buckets: both only grow, so
        // they upper-bound everything present in the captured array.
        HistogramCells {
            count,
            sum: self.sum(),
            max: self.max(),
            buckets,
        }
    }

    /// Captures count/sum/quantiles from one coherent bucket view.
    ///
    /// All fields derive from a single [`cells`](Self::cells) capture,
    /// so `p50 ≤ p90 ≤ p99 ≤ max` holds even when snapshots race with
    /// per-worker batch flushes.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.cells().summary()
    }

    /// Summarizes only what was recorded since `earlier` was captured:
    /// a windowed view with per-bucket deltas, so sliding-window SLO
    /// math never re-reads cumulative totals.
    pub fn delta_since(&self, earlier: &HistogramCells) -> HistogramSnapshot {
        self.cells().delta(earlier)
    }
}

/// Full bucket-resolution capture of a [`Histogram`], used as the
/// baseline for windowed deltas ([`Histogram::delta_since`]).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramCells {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    max: f64,
}

impl Default for HistogramCells {
    fn default() -> Self {
        HistogramCells {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            max: 0.0,
        }
    }
}

impl HistogramCells {
    /// Number of values captured.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of values captured.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Nearest-rank quantile over a bucket array, returning the bucket
    /// upper bound clamped to `cap`.
    fn quantile_from(buckets: &[u64], count: u64, q: f64, cap: f64) -> f64 {
        if count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * (count as f64 - 1.0)).round() as u64).min(count - 1);
        let mut seen = 0u64;
        for (idx, &n) in buckets.iter().enumerate() {
            seen += n;
            if seen > rank {
                return Histogram::bucket_upper(idx).min(cap);
            }
        }
        cap
    }

    /// Summarizes the captured state. Every field derives from the same
    /// bucket array, so the quantile sequence is monotone by
    /// construction.
    pub fn summary(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            p50: Self::quantile_from(&self.buckets, self.count, 0.50, self.max),
            p90: Self::quantile_from(&self.buckets, self.count, 0.90, self.max),
            p99: Self::quantile_from(&self.buckets, self.count, 0.99, self.max),
            max: self.max,
        }
    }

    /// Summarizes `self − earlier`: only values recorded between the
    /// two captures.
    ///
    /// The exact interval maximum is not recoverable from cumulative
    /// state, so the delta max is the upper bound of the highest
    /// non-empty delta bucket, clamped to the cumulative max — when the
    /// interval contains the all-time maximum this is exact, otherwise
    /// it overestimates by at most one bucket width (≤ 9.05%). Delta
    /// quantiles clamp to the same bound, so `p50 ≤ p90 ≤ p99 ≤ max`
    /// holds on every delta.
    pub fn delta(&self, earlier: &HistogramCells) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(&earlier.buckets)
            .map(|(now, then)| now.saturating_sub(*then))
            .collect();
        let count: u64 = buckets.iter().sum();
        if count == 0 {
            return HistogramSnapshot {
                count: 0,
                sum: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        let top = buckets.iter().rposition(|&n| n > 0).unwrap_or(0);
        let max = Histogram::bucket_upper(top).min(self.max);
        HistogramSnapshot {
            count,
            sum: (self.sum - earlier.sum).max(0.0),
            p50: Self::quantile_from(&buckets, count, 0.50, max),
            p90: Self::quantile_from(&buckets, count, 0.90, max),
            p99: Self::quantile_from(&buckets, count, 0.99, max),
            max,
        }
    }
}

/// A single-thread accumulator for hot loops.
///
/// Recording here is a bucket computation plus three plain writes — no
/// atomic read-modify-write — and [`LocalHistogram::flush_into`] folds
/// everything accumulated into a shared [`Histogram`] with one atomic
/// operation per touched bucket. Use it when instrumenting per-item
/// work measured in nanoseconds; the flushed result is identical to
/// calling [`Histogram::record`] per item.
#[derive(Clone)]
pub struct LocalHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    max: f64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        LocalHistogram::new()
    }
}

impl LocalHistogram {
    /// Creates an empty accumulator.
    pub fn new() -> LocalHistogram {
        LocalHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            max: 0.0,
        }
    }

    /// Records a single value under the same clamping rules as
    /// [`Histogram::record`].
    pub fn record(&mut self, value: f64) {
        let value = if value.is_finite() && value > 0.0 {
            value
        } else {
            0.0
        };
        self.buckets[Histogram::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of values recorded since the last flush.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds everything recorded so far into `target` and resets this
    /// accumulator so it can be reused for the next batch.
    pub fn flush_into(&mut self, target: &Histogram) {
        if self.count == 0 {
            return;
        }
        for (idx, n) in self.buckets.iter_mut().enumerate() {
            if *n > 0 {
                target.core.buckets[idx].fetch_add(*n, Ordering::Relaxed);
                *n = 0;
            }
        }
        target.core.count.fetch_add(self.count, Ordering::Relaxed);
        target.add_sum(self.sum);
        target
            .core
            .max_bits
            .fetch_max(self.max.to_bits(), Ordering::Relaxed);
        self.count = 0;
        self.sum = 0.0;
        self.max = 0.0;
    }

    /// Folds everything recorded so far into *every* sink, then resets
    /// this accumulator. Lets one worker-local pass feed both a metric
    /// series and an SLO tracker without recording twice.
    pub fn flush_into_each(&mut self, sinks: &[&Histogram]) {
        if self.count == 0 {
            return;
        }
        for target in sinks {
            for (idx, &n) in self.buckets.iter().enumerate() {
                if n > 0 {
                    target.core.buckets[idx].fetch_add(n, Ordering::Relaxed);
                }
            }
            target.core.count.fetch_add(self.count, Ordering::Relaxed);
            target.add_sum(self.sum);
            target
                .core
                .max_bits
                .fetch_max(self.max.to_bits(), Ordering::Relaxed);
        }
        self.buckets.iter_mut().for_each(|n| *n = 0);
        self.count = 0;
        self.sum = 0.0;
        self.max = 0.0;
    }
}

/// A point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Median estimate (bucketed, ≤ 9.05% high).
    pub p50: f64,
    /// 90th-percentile estimate.
    pub p90: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
    /// Exact maximum.
    pub max: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact nearest-rank quantile over a sorted slice, mirroring the
    /// engine's `LatencySummary::from_samples` convention.
    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = (q * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    #[test]
    fn bit_pattern_bucket_index_matches_the_log2_formula() {
        let reference = |value: f64| -> usize {
            if value < 1.0 {
                return 0;
            }
            let idx = 1 + (value.log2() * BUCKETS_PER_OCTAVE as f64).floor() as usize;
            idx.min(BUCKETS - 1)
        };
        // Powers of two land exactly on octave starts.
        for e in 0..40 {
            let v = (1u64 << e) as f64;
            assert_eq!(Histogram::bucket_index(v), 1 + 8 * e, "v={v}");
        }
        // A deterministic sweep across ten orders of magnitude.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..100_000 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let v = (state >> 11) as f64 / (1u64 << 53) as f64 * 1e10;
            assert_eq!(Histogram::bucket_index(v), reference(v), "v={v}");
        }
        assert_eq!(Histogram::bucket_index(0.5), 0);
        assert_eq!(Histogram::bucket_index(f64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_match_known_distribution_within_a_bucket() {
        // Deterministic skewed distribution: 1..=1000 squared, scaled.
        let h = Histogram::new();
        let mut values: Vec<f64> = (1..=1000).map(|i| (i * i) as f64 / 37.0).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.5, 0.9, 0.99] {
            let exact = exact_quantile(&values, q);
            let bucketed = h.quantile(q);
            assert!(
                bucketed >= exact * (1.0 - 1e-9),
                "q{q}: bucketed {bucketed} below exact {exact}"
            );
            assert!(
                bucketed <= exact * (1.0 + RELATIVE_ERROR_BOUND) + 1.0,
                "q{q}: bucketed {bucketed} more than one bucket above exact {exact}"
            );
        }
        assert_eq!(h.count(), 1000);
        let exact_sum: f64 = values.iter().sum();
        assert!((h.sum() - exact_sum).abs() < 1e-6 * exact_sum);
        assert_eq!(h.max(), *values.last().unwrap());
    }

    #[test]
    fn quantile_sequence_is_monotone_and_clamped_to_max() {
        let h = Histogram::new();
        for v in [3.0, 3.0, 3.0, 3.1] {
            h.record(v);
        }
        let s = h.snapshot();
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
        assert_eq!(s.max, 3.1);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!((s.count, s.sum, s.p50, s.max), (0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn negative_and_non_finite_values_clamp_to_zero() {
        let h = Histogram::new();
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.quantile(0.99), 0.0);
    }

    #[test]
    fn local_flush_is_identical_to_direct_records() {
        let direct = Histogram::new();
        let shared = Histogram::new();
        let mut local = LocalHistogram::new();
        let values: Vec<f64> = (1..=500).map(|i| (i * 13 % 997) as f64 / 3.0).collect();
        for &v in &values {
            direct.record(v);
            local.record(v);
        }
        assert_eq!(local.count(), 500);
        local.flush_into(&shared);
        assert_eq!(shared.count(), direct.count());
        assert_eq!(shared.sum(), direct.sum());
        assert_eq!(shared.max(), direct.max());
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(shared.quantile(q), direct.quantile(q));
        }
        // The accumulator resets: a second flush adds nothing.
        assert_eq!(local.count(), 0);
        local.flush_into(&shared);
        assert_eq!(shared.count(), direct.count());
    }

    #[test]
    fn delta_since_summarizes_only_the_window() {
        let h = Histogram::new();
        for v in [10.0, 20.0, 30.0] {
            h.record(v);
        }
        let baseline = h.cells();
        // Nothing recorded since the capture: the delta is empty.
        let empty = h.delta_since(&baseline);
        assert_eq!(
            (empty.count, empty.sum, empty.p50, empty.max),
            (0, 0.0, 0.0, 0.0)
        );
        let window: Vec<f64> = (1..=100).map(|i| 500.0 + i as f64).collect();
        for &v in &window {
            h.record(v);
        }
        let delta = h.delta_since(&baseline);
        assert_eq!(delta.count, 100);
        let exact_sum: f64 = window.iter().sum();
        assert!((delta.sum - exact_sum).abs() < 1e-6 * exact_sum);
        // The window contains the all-time maximum, so the delta max is
        // exact; quantiles sit within one bucket of the window values.
        assert_eq!(delta.max, 600.0);
        assert!(delta.p50 >= 500.0 && delta.p50 <= 600.0 * (1.0 + RELATIVE_ERROR_BOUND));
        // The cumulative view still covers everything.
        assert_eq!(h.snapshot().count, 103);
    }

    #[test]
    fn delta_quantiles_are_monotone_for_many_seeds() {
        // Satellite invariant: p50 ≤ p90 ≤ p99 ≤ max on every delta,
        // across windows drawn from a deterministic generator.
        let h = Histogram::new();
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64
        };
        let mut baseline = h.cells();
        for window in 0..50 {
            let len = 1 + (window * 7) % 40;
            for _ in 0..len {
                h.record(rng() % 1e6);
            }
            let d = h.delta_since(&baseline);
            assert_eq!(d.count, len as u64, "window {window}");
            assert!(
                d.p50 <= d.p90 && d.p90 <= d.p99 && d.p99 <= d.max,
                "window {window}: {d:?}"
            );
            baseline = h.cells();
        }
    }

    #[test]
    fn snapshot_racing_batch_flushes_stays_internally_consistent() {
        // Regression: snapshot() used to read count, each quantile, and
        // max in separate passes, so a snapshot taken mid-flush could
        // report p50 > p90. The single-capture snapshot must keep the
        // quantile sequence monotone under concurrent flushes.
        let shared = Histogram::new();
        let done = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let flushers: Vec<_> = (0..2)
                .map(|t| {
                    let shared = shared.clone();
                    scope.spawn(move || {
                        let mut local = LocalHistogram::new();
                        for batch in 0..200 {
                            // Bimodal batches widen the p50/p99 spread
                            // a torn read would expose.
                            for i in 0..50 {
                                let v = if (batch + i + t) % 2 == 0 {
                                    5.0
                                } else {
                                    50_000.0
                                };
                                local.record(v);
                            }
                            local.flush_into(&shared);
                        }
                    })
                })
                .collect();
            let reader = {
                let shared = shared.clone();
                let done = &done;
                scope.spawn(move || {
                    let mut checked = 0u64;
                    while !done.load(Ordering::Relaxed) {
                        let s = shared.snapshot();
                        assert!(
                            s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max,
                            "torn snapshot: {s:?}"
                        );
                        assert!(s.count <= 2 * 200 * 50);
                        checked += 1;
                    }
                    checked
                })
            };
            for f in flushers {
                f.join().unwrap();
            }
            done.store(true, Ordering::Relaxed);
            assert!(reader.join().unwrap() > 0);
        });
        assert_eq!(shared.snapshot().count, 2 * 200 * 50);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record((t * 10_000 + i) as f64 % 977.0);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
    }
}
