//! Scoped spans: RAII timers that nest into dotted paths.
//!
//! `span!("build.topology")` starts a timer; when the guard drops, the
//! elapsed time lands in the global histogram `span.<path>_us`. Spans
//! opened while another span is live on the same thread nest under it
//! (`outer.inner`), so a registry snapshot shows the stage breakdown the
//! `OverlayBuilder` used to keep by hand.
//!
//! The span stack is thread-local; guards must drop in LIFO order (the
//! natural order for lexically scoped guards). When telemetry is
//! disabled the guard is inert and costs one atomic load.

use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// An RAII span guard. Records its elapsed microseconds on drop.
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    path: String,
    start: Instant,
}

impl Span {
    /// Opens a span named `name`, nested under the innermost live span
    /// on this thread (if any). Inert when telemetry is disabled.
    pub fn enter(name: &str) -> Span {
        if !crate::enabled() {
            return Span { inner: None };
        }
        let path = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{parent}.{name}"),
                None => name.to_string(),
            };
            stack.push(path.clone());
            path
        });
        Span {
            inner: Some(SpanInner {
                path,
                start: Instant::now(),
            }),
        }
    }

    /// Full dotted path of this span (`None` when inert).
    pub fn path(&self) -> Option<&str> {
        self.inner.as_ref().map(|i| i.path.as_str())
    }

    /// Elapsed time so far, in microseconds (zero when inert).
    pub fn elapsed_us(&self) -> f64 {
        self.inner
            .as_ref()
            .map(|i| i.start.elapsed().as_secs_f64() * 1e6)
            .unwrap_or(0.0)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let elapsed_us = inner.start.elapsed().as_secs_f64() * 1e6;
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // LIFO in practice; tolerate out-of-order drops by removing
            // the matching entry rather than blindly popping.
            if let Some(pos) = stack.iter().rposition(|p| *p == inner.path) {
                stack.remove(pos);
            }
        });
        crate::global()
            .histogram(&format!("span.{}_us", inner.path))
            .record(elapsed_us);
    }
}

/// Opens a [`Span`] and binds it to a guard expression:
/// `let _span = span!("engine.serve");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The disabled-spans test flips the global enable flag, so span
    /// tests must not interleave with each other.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serialize() -> MutexGuard<'static, ()> {
        TEST_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn spans_nest_into_dotted_paths() {
        let _guard = serialize();
        let outer = Span::enter("span_test_outer");
        assert_eq!(outer.path(), Some("span_test_outer"));
        {
            let inner = Span::enter("inner");
            assert_eq!(inner.path(), Some("span_test_outer.inner"));
            let deeper = Span::enter("deep");
            assert_eq!(deeper.path(), Some("span_test_outer.inner.deep"));
        }
        // Stack unwound: a sibling nests under the outer span again.
        let sibling = Span::enter("sibling");
        assert_eq!(sibling.path(), Some("span_test_outer.sibling"));
    }

    #[test]
    fn outer_span_time_dominates_inner() {
        let _guard = serialize();
        {
            let _outer = span!("span_test_mono");
            {
                let _inner = span!("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let reg = crate::global();
        let outer = reg.histogram("span.span_test_mono_us");
        let inner = reg.histogram("span.span_test_mono.inner_us");
        assert_eq!(outer.count(), 1);
        assert_eq!(inner.count(), 1);
        assert!(
            outer.sum() >= inner.sum(),
            "outer {} < inner {}",
            outer.sum(),
            inner.sum()
        );
        assert!(inner.sum() >= 2_000.0, "inner span missed its sleep");
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _guard = serialize();
        crate::set_enabled(false);
        let span = Span::enter("span_test_disabled");
        assert_eq!(span.path(), None);
        drop(span);
        crate::set_enabled(true);
        assert_eq!(
            crate::global()
                .histogram("span.span_test_disabled_us")
                .count(),
            0
        );
    }
}
