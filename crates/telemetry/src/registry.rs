//! Metric registry: named counters, gauges, and histograms.
//!
//! Registration (name lookup) takes a mutex, but the returned handles
//! are `Arc`-backed atomics, so the hot path — incrementing a counter or
//! recording a latency — is lock-free. Instrumented code should fetch
//! handles once per batch (or cache them) rather than re-registering per
//! event.
//!
//! Keys are `(name, sorted labels)`; the registry stores them in a
//! `BTreeMap` so exporters walk metrics in a stable order and snapshots
//! diff cleanly across runs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::histogram::{Histogram, HistogramSnapshot};

/// A monotonically increasing counter handle. Clones share storage.
#[derive(Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a detached counter (not registered anywhere).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` gauge handle. Clones share storage.
#[derive(Clone, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Creates a detached gauge (not registered anywhere).
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Identifies one metric series: a dotted name plus sorted labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Dotted metric name, e.g. `engine.cache.hits`.
    pub name: String,
    /// Label pairs, sorted by key at construction.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key, sorting labels so equivalent series collide.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    /// Renders the key as `name` or `name{k="v",...}` — the form used
    /// for JSON snapshot keys.
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect();
        format!("{}{{{}}}", self.name, labels.join(","))
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A point-in-time value of one metric series.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram summary.
    Histogram(HistogramSnapshot),
}

/// A named collection of metrics.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<MetricKey, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert<T: Clone>(
        &self,
        key: MetricKey,
        wrap: impl FnOnce(T) -> Metric,
        unwrap: impl Fn(&Metric) -> Option<T>,
        make: impl FnOnce() -> T,
    ) -> T {
        let mut metrics = self.metrics.lock().unwrap();
        if let Some(existing) = metrics.get(&key) {
            return unwrap(existing).unwrap_or_else(|| {
                panic!(
                    "metric {} already registered with another type",
                    key.render()
                )
            });
        }
        let handle = make();
        metrics.insert(key, wrap(handle.clone()));
        handle
    }

    /// Gets or creates the counter `name` (no labels).
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Gets or creates the counter `name` with `labels`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.get_or_insert(
            MetricKey::new(name, labels),
            Metric::Counter,
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
            Counter::new,
        )
    }

    /// Gets or creates the gauge `name` (no labels).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Gets or creates the gauge `name` with `labels`.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.get_or_insert(
            MetricKey::new(name, labels),
            Metric::Gauge,
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            Gauge::new,
        )
    }

    /// Gets or creates the histogram `name` (no labels).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// Gets or creates the histogram `name` with `labels`.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.get_or_insert(
            MetricKey::new(name, labels),
            Metric::Histogram,
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            Histogram::new,
        )
    }

    /// Captures every registered series in key order.
    pub fn snapshot(&self) -> Vec<(MetricKey, MetricValue)> {
        let metrics = self.metrics.lock().unwrap();
        metrics
            .iter()
            .map(|(key, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (key.clone(), value)
            })
            .collect()
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry every instrumented subsystem records into.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

static ENABLED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(true);

/// Globally enables or disables telemetry recording. Instrumentation
/// sites check [`enabled`] before touching the registry, so disabling
/// reduces overhead to a single relaxed load — this is what the
/// `telemetry` bench toggles to measure instrumentation cost.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether telemetry recording is currently enabled (default: yes).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_survive_four_threads_hammering() {
        let reg = Registry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    // Re-fetching the handle per iteration also exercises
                    // concurrent get-or-create on the same key.
                    for _ in 0..10_000 {
                        reg.counter("test.hits").inc();
                    }
                });
            }
        });
        assert_eq!(reg.counter("test.hits").get(), 40_000);
    }

    #[test]
    fn labeled_series_are_distinct_and_label_order_is_canonical() {
        let reg = Registry::new();
        reg.counter_with("c", &[("worker", "0")]).add(3);
        reg.counter_with("c", &[("worker", "1")]).add(5);
        // Same labels in a different order hit the same series.
        reg.counter_with("d", &[("a", "1"), ("b", "2")]).add(1);
        reg.counter_with("d", &[("b", "2"), ("a", "1")]).add(1);
        assert_eq!(reg.counter_with("c", &[("worker", "0")]).get(), 3);
        assert_eq!(reg.counter_with("c", &[("worker", "1")]).get(), 5);
        assert_eq!(reg.counter_with("d", &[("a", "1"), ("b", "2")]).get(), 2);
    }

    #[test]
    fn snapshot_walks_keys_in_stable_order() {
        let reg = Registry::new();
        reg.gauge("z.last").set(1.0);
        reg.counter("a.first").inc();
        reg.histogram("m.middle").record(2.0);
        let names: Vec<String> = reg
            .snapshot()
            .into_iter()
            .map(|(k, _)| k.render())
            .collect();
        assert_eq!(names, ["a.first", "m.middle", "z.last"]);
    }

    #[test]
    #[should_panic(expected = "another type")]
    fn type_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x").inc();
        reg.gauge("x").set(1.0);
    }
}
