//! The workspace's canonical minimal JSON emitter.
//!
//! Historically this lived in `son-bench` for bench artifacts; it moved
//! here so the telemetry snapshot exporter and the benches share one
//! writer (`son-bench` re-exports it for its callers). The workspace
//! carries no JSON dependency, and the values we emit are flat
//! (numbers, strings, shallow objects), so a small writer is all
//! that's needed.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so emitted files are
/// stable across runs and diff cleanly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Finite numbers only; NaN and infinities render as `null`
    /// (JSON has no spelling for them).
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Renders the value as pretty-printed JSON (two-space indent,
    /// trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if *n == n.trunc() && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent + 1);
            }),
            Json::Obj(pairs) => write_seq(out, indent, '{', '}', pairs.len(), |out, i| {
                write_escaped(out, &pairs[i].0);
                out.push_str(": ");
                pairs[i].1.write(out, indent + 1);
            }),
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

fn write_seq(
    out: &mut String,
    indent: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    if len == 0 {
        out.push(open);
        out.push(close);
        return;
    }
    out.push(open);
    for i in 0..len {
        out.push('\n');
        for _ in 0..=indent {
            out.push_str("  ");
        }
        item(out, i);
        if i + 1 < len {
            out.push(',');
        }
    }
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integral_floats_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42\n");
        assert_eq!(Json::Num(0.5).render(), "0.5\n");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::Str("a\"b\\c\nd".to_string()).render(),
            "\"a\\\"b\\\\c\\nd\"\n"
        );
    }

    #[test]
    fn empty_collections_stay_inline() {
        assert_eq!(Json::Arr(vec![]).render(), "[]\n");
        assert_eq!(Json::Obj(vec![]).render(), "{}\n");
    }
}
