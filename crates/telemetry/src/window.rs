//! Sliding-window time series and SLO tracking.
//!
//! Cumulative counters answer "how much since start"; SLOs need "how
//! much *lately*". This module keeps fixed-width windows of counter and
//! histogram **deltas**. Windows advance on served-request ticks, never
//! on wall clock, so window contents are exactly reproducible on the
//! 1-core CI box: with a single worker, window `k` contains precisely
//! requests `k·W .. (k+1)·W`.
//!
//! [`SloTracker`] layers objectives on top: an availability target
//! (fraction of requests served) and a p99 latency target, evaluated
//! per window. The error-budget burn rate is the windowed error rate
//! divided by the allowed error rate — burn 1.0 consumes the budget
//! exactly at the objective boundary, burn 10 exhausts it ten times
//! faster. When a window breaches the latency objective or the
//! rejection-rate trigger, the tracker fires the flight recorder's
//! anomaly trigger ([`FlightRecorder::trigger_anomaly`]), freezing the
//! event ring around the first breach.
//!
//! With multiple engine workers, ticks from concurrent threads may
//! interleave between a window boundary and its seal, so exact-content
//! assertions hold for one worker; multi-worker runs assert
//! conservation (window sums equal totals) instead.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::flight::{flight, AnomalyKind, FlightRecorder};
use crate::histogram::{Histogram, HistogramCells, HistogramSnapshot};
use crate::registry::{Counter, Registry};

/// Objectives and window geometry for an [`SloTracker`].
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// Window width in served-request ticks, rounded up to a power of
    /// two at construction so the per-tick boundary test is a mask,
    /// not a division. A seal snapshots the full latency histogram
    /// under a mutex (microseconds, not nanoseconds), so the default
    /// width is chosen to keep the amortized per-request seal cost
    /// well inside the telemetry budget.
    pub window_ticks: u64,
    /// Sealed windows retained for inspection.
    pub retain: usize,
    /// Availability objective: minimum fraction of requests served.
    pub availability_objective: f64,
    /// Latency objective: windowed p99 must stay at or under this (µs).
    pub p99_objective_us: f64,
    /// Windowed rejection-rate fraction that fires the anomaly trigger.
    pub rejection_trigger: f64,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            window_ticks: 1024,
            retain: 64,
            availability_objective: 0.99,
            p99_objective_us: 50_000.0,
            rejection_trigger: 0.5,
        }
    }
}

/// One sealed window: deltas over exactly `window_ticks` requests.
#[derive(Debug, Clone)]
pub struct WindowFrame {
    /// Zero-based window index.
    pub index: u64,
    /// Tick at which the window sealed (`(index+1) · window_ticks` with
    /// a single worker).
    pub end_tick: u64,
    /// Requests served (optimal or degraded) in the window.
    pub served: u64,
    /// Requests rejected in the window.
    pub rejected: u64,
    /// `served / (served + rejected)`; 1.0 for an empty window.
    pub availability: f64,
    /// `rejected / (served + rejected)`.
    pub rejection_rate: f64,
    /// Windowed error rate over the allowed error rate. Burn 1.0 spends
    /// the error budget exactly at the objective boundary.
    pub burn_rate: f64,
    /// Latency delta summary for the window's served requests.
    pub latency: HistogramSnapshot,
    /// Whether the window met the availability objective.
    pub availability_ok: bool,
    /// Whether the windowed p99 met the latency objective.
    pub latency_ok: bool,
}

struct Baseline {
    served: u64,
    rejected: u64,
    latency: HistogramCells,
}

struct Inner {
    baseline: Baseline,
    frames: VecDeque<WindowFrame>,
    sealed: u64,
    breaches: u64,
}

/// Tick-driven sliding-window SLO tracker.
///
/// The tracker owns its counters and latency histogram (they are not
/// registry series), so tests can assert exact window contents without
/// global-state interference; [`publish`](Self::publish) exports the
/// derived `slo.*` series into a registry on demand.
pub struct SloTracker {
    config: SloConfig,
    /// `window_ticks - 1`; valid because the width is a power of two.
    window_mask: u64,
    ticks: AtomicU64,
    rejected: Counter,
    latency: Histogram,
    flight: &'static FlightRecorder,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for SloTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloTracker")
            .field("config", &self.config)
            .field("ticks", &self.ticks())
            .field("served", &self.served_total())
            .field("rejected", &self.rejected.get())
            .finish_non_exhaustive()
    }
}

impl SloTracker {
    /// Creates a tracker wired to the process-wide flight recorder.
    pub fn new(config: SloConfig) -> SloTracker {
        SloTracker::with_flight(config, flight())
    }

    /// Creates a tracker wired to a specific flight recorder (tests use
    /// a leaked private recorder to avoid global-state interference).
    pub fn with_flight(config: SloConfig, flight: &'static FlightRecorder) -> SloTracker {
        let config = SloConfig {
            window_ticks: config.window_ticks.max(1).next_power_of_two(),
            retain: config.retain.max(1),
            ..config
        };
        SloTracker {
            window_mask: config.window_ticks - 1,
            config,
            ticks: AtomicU64::new(0),
            rejected: Counter::new(),
            latency: Histogram::new(),
            flight,
            inner: Mutex::new(Inner {
                baseline: Baseline {
                    served: 0,
                    rejected: 0,
                    latency: HistogramCells::default(),
                },
                frames: VecDeque::new(),
                sealed: 0,
                breaches: 0,
            }),
        }
    }

    /// The tracker's configuration.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Total ticks recorded (served + rejected requests).
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Total requests served since creation. Served counts are derived
    /// (`ticks - rejected`) rather than counted, so the serve hot path
    /// pays exactly one atomic increment per request.
    pub fn served_total(&self) -> u64 {
        self.ticks().saturating_sub(self.rejected.get())
    }

    /// Total requests rejected since creation.
    pub fn rejected_total(&self) -> u64 {
        self.rejected.get()
    }

    /// Windows that have breached either objective.
    pub fn breaches(&self) -> u64 {
        self.inner.lock().unwrap().breaches
    }

    /// Number of windows sealed so far.
    pub fn sealed(&self) -> u64 {
        self.inner.lock().unwrap().sealed
    }

    /// The retained sealed windows, oldest first.
    pub fn frames(&self) -> Vec<WindowFrame> {
        self.inner.lock().unwrap().frames.iter().cloned().collect()
    }

    /// Records the outcome of one request: `served` with its latency in
    /// µs, or rejected (`latency_us` ignored). Advances the tick clock;
    /// returns the sealed frame when this tick closes a window.
    pub fn record(&self, served: bool, latency_us: f64) -> Option<WindowFrame> {
        if served {
            self.latency.record(latency_us);
            self.tick_served()
        } else {
            self.tick_rejected()
        }
        .map(|tick| self.seal(tick))
    }

    /// Advances the tick clock for a served request *without* recording
    /// its latency — the fast path for callers that batch latencies in
    /// a worker-local histogram and fold them into
    /// [`latency_sink`](Self::latency_sink) at window boundaries.
    /// Returns the closing tick when this tick completes a window; the
    /// caller must flush its pending latencies and then call
    /// [`seal_at`](Self::seal_at) with it (skipping the seal merges
    /// this window into the next).
    #[inline]
    pub fn tick_served(&self) -> Option<u64> {
        let tick = self.ticks.fetch_add(1, Ordering::Relaxed) + 1;
        (tick & self.window_mask == 0).then_some(tick)
    }

    /// Advances the tick clock for a rejected request. Same sealing
    /// contract as [`tick_served`](Self::tick_served).
    #[inline]
    pub fn tick_rejected(&self) -> Option<u64> {
        self.rejected.inc();
        self.tick_served()
    }

    /// The tracker's latency histogram, for callers on the
    /// [`tick_served`](Self::tick_served) fast path to fold
    /// worker-local latency cells into.
    pub fn latency_sink(&self) -> &Histogram {
        &self.latency
    }

    /// Seals the window closed by `tick` (as returned by a `tick_*`
    /// call) and fires anomaly triggers on breach. Latencies folded
    /// into [`latency_sink`](Self::latency_sink) before this call are
    /// attributed to the sealing window.
    pub fn seal_at(&self, tick: u64) -> WindowFrame {
        self.seal(tick)
    }

    fn seal(&self, tick: u64) -> WindowFrame {
        let rejected_now = self.rejected.get();
        // `rejected_now` may include rejections ticked after `tick` by
        // other workers; the saturating delta below absorbs the skew.
        let served_now = tick.saturating_sub(rejected_now);
        let cells = self.latency.cells();
        let mut inner = self.inner.lock().unwrap();
        // Two workers can close windows concurrently; the one that read
        // its counters earlier may take the lock after the baseline has
        // already advanced past that reading, so deltas saturate rather
        // than underflow (the shortfall lands in the next window).
        let served = served_now.saturating_sub(inner.baseline.served);
        let rejected = rejected_now.saturating_sub(inner.baseline.rejected);
        let latency = cells.delta(&inner.baseline.latency);
        let total = served + rejected;
        let availability = if total == 0 {
            1.0
        } else {
            served as f64 / total as f64
        };
        let rejection_rate = 1.0 - availability;
        let allowed = (1.0 - self.config.availability_objective).max(1e-9);
        let burn_rate = rejection_rate / allowed;
        let availability_ok = availability >= self.config.availability_objective;
        let latency_ok = latency.p99 <= self.config.p99_objective_us;
        let index = inner.sealed;
        let frame = WindowFrame {
            index,
            end_tick: tick,
            served,
            rejected,
            availability,
            rejection_rate,
            burn_rate,
            latency,
            availability_ok,
            latency_ok,
        };
        if !availability_ok || !latency_ok {
            inner.breaches += 1;
        }
        inner.sealed += 1;
        // Monotone baseline: an out-of-order seal must not rewind it,
        // or the next window would double-count the difference.
        inner.baseline.served = inner.baseline.served.max(served_now);
        inner.baseline.rejected = inner.baseline.rejected.max(rejected_now);
        if cells.count() >= inner.baseline.latency.count() {
            inner.baseline.latency = cells;
        }
        inner.frames.push_back(frame.clone());
        while inner.frames.len() > self.config.retain {
            inner.frames.pop_front();
        }
        drop(inner);
        // Anomaly triggers fire outside the lock: the flight recorder
        // freezes its own ring and must not wait on window state.
        if rejection_rate >= self.config.rejection_trigger {
            self.flight.trigger_anomaly(
                AnomalyKind::RejectionRate,
                index,
                tick,
                rejection_rate,
                self.config.rejection_trigger,
            );
        }
        if !latency_ok {
            self.flight.trigger_anomaly(
                AnomalyKind::LatencyP99,
                index,
                tick,
                latency.p99,
                self.config.p99_objective_us,
            );
        }
        frame
    }

    /// Overall availability since creation (1.0 before any request).
    pub fn availability(&self) -> f64 {
        let total = self.ticks();
        if total == 0 {
            1.0
        } else {
            self.served_total() as f64 / total as f64
        }
    }

    /// Publishes derived `slo.*` series into `registry`: overall and
    /// last-window availability, burn rate, windowed p99, window/breach
    /// totals.
    pub fn publish(&self, registry: &Registry) {
        registry.gauge("slo.availability").set(self.availability());
        registry
            .gauge("slo.objective.availability")
            .set(self.config.availability_objective);
        registry
            .gauge("slo.objective.p99_us")
            .set(self.config.p99_objective_us);
        let inner = self.inner.lock().unwrap();
        registry.gauge("slo.windows").set(inner.sealed as f64);
        registry.gauge("slo.breaches").set(inner.breaches as f64);
        if let Some(last) = inner.frames.back() {
            registry
                .gauge("slo.window.availability")
                .set(last.availability);
            registry
                .gauge("slo.window.rejection_rate")
                .set(last.rejection_rate);
            registry.gauge("slo.window.burn_rate").set(last.burn_rate);
            registry.gauge("slo.window.p99_us").set(last.latency.p99);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::{FlightKind, FlightRecorder};

    fn private_flight(capacity: usize) -> &'static FlightRecorder {
        let rec = Box::leak(Box::new(FlightRecorder::new(capacity)));
        rec.set_enabled(true);
        rec
    }

    fn tracker(window: u64, flight: &'static FlightRecorder) -> SloTracker {
        SloTracker::with_flight(
            SloConfig {
                window_ticks: window,
                retain: 8,
                availability_objective: 0.9,
                p99_objective_us: 1000.0,
                rejection_trigger: 0.5,
            },
            flight,
        )
    }

    #[test]
    fn windows_seal_on_exact_tick_boundaries_with_exact_contents() {
        let t = tracker(4, private_flight(32));
        // Window 0: four served requests at known latencies.
        assert!(t.record(true, 10.0).is_none());
        assert!(t.record(true, 20.0).is_none());
        assert!(t.record(true, 30.0).is_none());
        let f0 = t.record(true, 40.0).expect("tick 4 seals window 0");
        assert_eq!(
            (f0.index, f0.end_tick, f0.served, f0.rejected),
            (0, 4, 4, 0)
        );
        assert_eq!(f0.availability, 1.0);
        assert_eq!(f0.burn_rate, 0.0);
        assert_eq!(f0.latency.count, 4);
        assert!(f0.availability_ok && f0.latency_ok);
        // Window 1: two served, two rejected — deltas, not cumulatives.
        t.record(true, 10.0);
        t.record(false, 0.0);
        t.record(false, 0.0);
        let f1 = t.record(true, 10.0).expect("tick 8 seals window 1");
        assert_eq!((f1.index, f1.served, f1.rejected), (1, 2, 2));
        assert_eq!(f1.availability, 0.5);
        assert_eq!(f1.latency.count, 2);
        // Error rate 0.5 against an allowed 0.1 → burn 5.
        assert!((f1.burn_rate - 5.0).abs() < 1e-9);
        assert!(!f1.availability_ok);
        assert_eq!(t.breaches(), 1);
        assert_eq!(t.sealed(), 2);
        assert_eq!(t.ticks(), 8);
    }

    #[test]
    fn latency_objective_breach_is_detected_per_window() {
        let flight = private_flight(32);
        let t = tracker(2, flight);
        // Window 0 fast, window 1 slow, window 2 fast again.
        t.record(true, 100.0);
        let f0 = t.record(true, 100.0).unwrap();
        assert!(f0.latency_ok);
        t.record(true, 90_000.0);
        let f1 = t.record(true, 90_000.0).unwrap();
        assert!(!f1.latency_ok && f1.availability_ok);
        t.record(true, 100.0);
        let f2 = t.record(true, 100.0).unwrap();
        // The slow window does not contaminate the next delta.
        assert!(
            f2.latency_ok,
            "window 2 p99 {} should be fast",
            f2.latency.p99
        );
        assert_eq!(t.breaches(), 1);
    }

    #[test]
    fn rejection_spike_fires_the_flight_anomaly_deterministically() {
        let flight = private_flight(64);
        let t = tracker(4, flight);
        for _ in 0..4 {
            t.record(true, 10.0);
        }
        assert!(flight.anomaly().is_none());
        // Injected spike: 3 of 4 requests rejected → rate 0.75 ≥ 0.5.
        t.record(false, 0.0);
        t.record(false, 0.0);
        t.record(false, 0.0);
        t.record(true, 10.0);
        let snap = flight.anomaly().expect("spike fires the trigger");
        assert_eq!(snap.kind, AnomalyKind::RejectionRate);
        assert_eq!(snap.window, 1);
        assert_eq!(snap.tick, 8);
        assert!((snap.observed - 0.75).abs() < 1e-9);
        assert_eq!(snap.threshold, 0.5);
        // The frozen ring contains the anomaly event itself.
        assert!(snap
            .events
            .iter()
            .any(|e| e.kind == FlightKind::Anomaly(AnomalyKind::RejectionRate)));
        assert_eq!(flight.anomaly_count(), 1);
    }

    #[test]
    fn frames_are_bounded_by_retain_and_conserve_totals() {
        let t = tracker(2, private_flight(16));
        for i in 0..40u64 {
            t.record(i % 5 != 0, 10.0);
        }
        assert_eq!(t.sealed(), 20);
        let frames = t.frames();
        assert_eq!(frames.len(), 8, "retain bounds the kept frames");
        assert_eq!(frames.first().unwrap().index, 12);
        assert_eq!(frames.last().unwrap().index, 19);
        // Conservation across all windows (sealed counts cover every
        // tick, so totals match the cumulative counters).
        assert_eq!(t.served_total() + t.rejected_total(), 40);
        assert_eq!(t.served_total(), 32);
        assert!((t.availability() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn multi_worker_recording_conserves_counts_across_windows() {
        let t = tracker(8, private_flight(16));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let t = &t;
                scope.spawn(move || {
                    for i in 0..200u64 {
                        t.record(i % 10 != 0, 25.0);
                    }
                });
            }
        });
        assert_eq!(t.ticks(), 800);
        assert_eq!(t.sealed(), 100);
        assert_eq!(t.served_total(), 720);
        assert_eq!(t.rejected_total(), 80);
    }

    #[test]
    fn publish_exports_slo_series() {
        let t = tracker(2, private_flight(16));
        t.record(true, 10.0);
        t.record(false, 0.0);
        let reg = Registry::new();
        t.publish(&reg);
        assert_eq!(reg.gauge("slo.availability").get(), 0.5);
        assert_eq!(reg.gauge("slo.windows").get(), 1.0);
        assert_eq!(reg.gauge("slo.window.availability").get(), 0.5);
        assert_eq!(reg.gauge("slo.window.rejection_rate").get(), 0.5);
        assert_eq!(reg.gauge("slo.breaches").get(), 1.0);
        assert_eq!(reg.gauge("slo.objective.availability").get(), 0.9);
    }
}
