//! `son-telemetry` — zero-dependency observability for the SON stack.
//!
//! The paper's evaluation (§6) is entirely measurement-driven, so the
//! repo needs a uniform way to observe itself: this crate provides a
//! process-wide metric [`Registry`] (counters, gauges, log-bucketed
//! [`Histogram`]s with p50/p90/p99/max extraction), RAII [`Span`]s that
//! time scoped work and nest (`span!("build.hfc")`), a per-request
//! route-provenance record ([`RouteTrace`]), and two exporters —
//! Prometheus text exposition and a JSON snapshot built on the
//! workspace's canonical [`Json`] emitter.
//!
//! The crate depends on nothing (like the offline shims), and no other
//! workspace crate depends on anything through it, so every layer —
//! netsim, state, routing, engine, builder, CLI, benches — can record
//! into the same registry without dependency cycles.
//!
//! Recording can be globally disabled ([`set_enabled`]) which reduces
//! each instrumentation site to one relaxed atomic load; the
//! `telemetry` bench uses this to measure instrumentation overhead.

pub mod export;
pub mod flight;
pub mod histogram;
pub mod json;
pub mod registry;
pub mod span;
pub mod trace;
pub mod window;

pub use export::{render_prometheus, sanitize_name, snapshot_json, write_json_snapshot};
pub use flight::{
    flight, AnomalyKind, AnomalySnapshot, CacheVerdict, DispositionMark, FlightEvent, FlightKind,
    FlightRecorder, Stage, DEFAULT_FLIGHT_CAPACITY, NO_PROXY, NO_REQUEST, NO_WORKER,
};
pub use histogram::{
    Histogram, HistogramCells, HistogramSnapshot, LocalHistogram, RELATIVE_ERROR_BOUND,
};
pub use json::Json;
pub use registry::{
    enabled, global, set_enabled, Counter, Gauge, MetricKey, MetricValue, Registry,
};
pub use span::Span;
pub use trace::{BorderHop, CacheOutcome, ChildTrace, CspStage, RouteTrace, TraceHop};
pub use window::{SloConfig, SloTracker, WindowFrame};
