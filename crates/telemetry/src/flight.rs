//! Flight recorder: a lock-free bounded ring of structured events.
//!
//! Counters answer "how much"; the flight recorder answers "what
//! happened just now". Subsystems append fixed-size [`FlightEvent`]s —
//! snapshot installs, health transitions, cache verdicts, failover
//! retries, admission dispositions, dissemination tree repairs, worker
//! stage timings — each carrying a request id, epoch, proxy id, and
//! worker id so a per-request timeline can be reconstructed after the
//! fact (`son flight`).
//!
//! The ring is a fixed array of slots claimed by a global ticket
//! counter. Each slot is a seqlock: a state word encodes
//! empty / writing(seq) / complete(seq), and five payload words hold
//! the packed event. A writer that finds its slot still occupied by a
//! stalled older writer never takes the slot over (that could publish a
//! torn payload as complete); it spins briefly, then drops its *own*
//! event and counts it in `dropped`. [`FlightRecorder::record`] returns
//! the assigned sequence number only when the event was durably
//! published, so tests can assert that no *acknowledged* event within
//! the most recent `capacity` window is ever lost.
//!
//! An anomaly trigger (armed by the SLO window layer) freezes a
//! deterministic snapshot of the ring: first trigger wins, later
//! triggers only bump a counter, so the captured context is the state
//! at the moment the first objective breached.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::registry::Registry;

/// Default slot count for the process-wide recorder.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 8192;

/// Sentinel for events not tied to a request.
pub const NO_REQUEST: u64 = u64::MAX;
/// Sentinel for events not tied to a proxy.
pub const NO_PROXY: u32 = u32::MAX;
/// Sentinel for events not tied to a worker.
pub const NO_WORKER: u16 = u16::MAX;

/// How a cache consultation resolved for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheVerdict {
    /// Fresh exact-key hit.
    Hit,
    /// Exact-key miss; the request went to the solver.
    Miss,
    /// Stale entry served under the stale-while-revalidate budget.
    StaleServe,
    /// Stale entry found but unusable (budget exhausted or path down).
    StaleDrop,
    /// Negative-cache hit: known-unroutable, rejected without solving.
    NegativeHit,
    /// CSP-tier prefix hit during an exact miss.
    CspHit,
    /// Cached path crossed a down/draining proxy and was discarded.
    HealthDrop,
}

/// Serving pipeline stage, used by [`FlightKind::StageTime`] events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Time requests waited in the worker's queue before service began.
    Queue,
    /// Route computation (CSP solve, fallback retries).
    Route,
    /// Admission control and path-health validation.
    Admit,
    /// Cache lookups, inserts, and revalidation.
    Cache,
    /// Simulated dispatch holds (the overlappable part of serving).
    Dispatch,
    /// Whole-loop busy time for one worker.
    Busy,
    /// Wall time the worker sat idle while the batch completed.
    Idle,
}

/// Final disposition of one served request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispositionMark {
    /// Served on an optimal path.
    Optimal,
    /// Served on a degraded (constraint-relaxed or stale) path.
    Degraded,
    /// Rejected: source cluster has no live ingress.
    RejectNoIngress,
    /// Rejected: admission control found no capacity.
    RejectOverloaded,
    /// Rejected: no feasible path exists.
    RejectUnroutable,
}

/// Which SLO objective tripped the anomaly trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// Windowed p99 latency exceeded the objective.
    LatencyP99,
    /// Windowed rejection rate exceeded the trigger threshold.
    RejectionRate,
}

/// What one flight event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A new engine snapshot was installed (`epoch` is the new epoch).
    SnapshotInstall,
    /// A proxy's health changed; `value` is the new state ordinal
    /// (0 = up, 1 = draining, 2 = down).
    HealthTransition,
    /// A cache consultation resolved (`CacheVerdict`).
    CacheVerdict(CacheVerdict),
    /// A failover retry: the chosen path failed validation and the
    /// solver re-ran avoiding `proxy`.
    FailoverRetry,
    /// Final disposition of a request.
    Disposition(DispositionMark),
    /// A dissemination tree repair fired on `proxy`.
    TreeRepair,
    /// Per-worker stage timing for one serve batch; `value` is µs.
    StageTime(Stage),
    /// The anomaly trigger fired; `value` is the observed metric.
    Anomaly(AnomalyKind),
}

impl FlightKind {
    fn encode(self) -> (u8, u8) {
        match self {
            FlightKind::SnapshotInstall => (0, 0),
            FlightKind::HealthTransition => (1, 0),
            FlightKind::CacheVerdict(v) => (2, v as u8),
            FlightKind::FailoverRetry => (3, 0),
            FlightKind::Disposition(d) => (4, d as u8),
            FlightKind::TreeRepair => (5, 0),
            FlightKind::StageTime(s) => (6, s as u8),
            FlightKind::Anomaly(a) => (7, a as u8),
        }
    }

    fn decode(kind: u8, detail: u8) -> FlightKind {
        match kind {
            0 => FlightKind::SnapshotInstall,
            1 => FlightKind::HealthTransition,
            2 => FlightKind::CacheVerdict(match detail {
                0 => CacheVerdict::Hit,
                1 => CacheVerdict::Miss,
                2 => CacheVerdict::StaleServe,
                3 => CacheVerdict::StaleDrop,
                4 => CacheVerdict::NegativeHit,
                5 => CacheVerdict::CspHit,
                _ => CacheVerdict::HealthDrop,
            }),
            3 => FlightKind::FailoverRetry,
            4 => FlightKind::Disposition(match detail {
                0 => DispositionMark::Optimal,
                1 => DispositionMark::Degraded,
                2 => DispositionMark::RejectNoIngress,
                3 => DispositionMark::RejectOverloaded,
                _ => DispositionMark::RejectUnroutable,
            }),
            5 => FlightKind::TreeRepair,
            6 => FlightKind::StageTime(match detail {
                0 => Stage::Queue,
                1 => Stage::Route,
                2 => Stage::Admit,
                3 => Stage::Cache,
                4 => Stage::Dispatch,
                5 => Stage::Busy,
                _ => Stage::Idle,
            }),
            _ => FlightKind::Anomaly(match detail {
                0 => AnomalyKind::LatencyP99,
                _ => AnomalyKind::RejectionRate,
            }),
        }
    }

    /// Short lowercase label, e.g. `cache.stale_serve`.
    pub fn label(&self) -> String {
        match self {
            FlightKind::SnapshotInstall => "snapshot.install".to_string(),
            FlightKind::HealthTransition => "health.transition".to_string(),
            FlightKind::CacheVerdict(v) => format!(
                "cache.{}",
                match v {
                    CacheVerdict::Hit => "hit",
                    CacheVerdict::Miss => "miss",
                    CacheVerdict::StaleServe => "stale_serve",
                    CacheVerdict::StaleDrop => "stale_drop",
                    CacheVerdict::NegativeHit => "negative_hit",
                    CacheVerdict::CspHit => "csp_hit",
                    CacheVerdict::HealthDrop => "health_drop",
                }
            ),
            FlightKind::FailoverRetry => "failover.retry".to_string(),
            FlightKind::Disposition(d) => format!(
                "disposition.{}",
                match d {
                    DispositionMark::Optimal => "optimal",
                    DispositionMark::Degraded => "degraded",
                    DispositionMark::RejectNoIngress => "reject_no_ingress",
                    DispositionMark::RejectOverloaded => "reject_overloaded",
                    DispositionMark::RejectUnroutable => "reject_unroutable",
                }
            ),
            FlightKind::TreeRepair => "tree.repair".to_string(),
            FlightKind::StageTime(s) => format!(
                "stage.{}",
                match s {
                    Stage::Queue => "queue",
                    Stage::Route => "route",
                    Stage::Admit => "admit",
                    Stage::Cache => "cache",
                    Stage::Dispatch => "dispatch",
                    Stage::Busy => "busy",
                    Stage::Idle => "idle",
                }
            ),
            FlightKind::Anomaly(a) => format!(
                "anomaly.{}",
                match a {
                    AnomalyKind::LatencyP99 => "latency_p99",
                    AnomalyKind::RejectionRate => "rejection_rate",
                }
            ),
        }
    }
}

/// One structured event in the flight ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightEvent {
    /// Global sequence number (assigned by the recorder on publish).
    pub seq: u64,
    /// Served-request tick at record time (correlates with SLO windows).
    pub tick: u64,
    /// Request id, or [`NO_REQUEST`] for global events.
    pub request: u64,
    /// Snapshot epoch in effect when the event fired.
    pub epoch: u64,
    /// Proxy involved, or [`NO_PROXY`].
    pub proxy: u32,
    /// Worker that recorded the event, or [`NO_WORKER`].
    pub worker: u16,
    /// What happened.
    pub kind: FlightKind,
    /// Kind-specific payload (µs for stage timings, observed metric for
    /// anomalies, health ordinal for transitions, 0 otherwise).
    pub value: f64,
}

impl FlightEvent {
    /// Builds an event not tied to any request, proxy, or worker.
    pub fn new(kind: FlightKind) -> FlightEvent {
        FlightEvent {
            seq: 0,
            tick: 0,
            request: NO_REQUEST,
            epoch: 0,
            proxy: NO_PROXY,
            worker: NO_WORKER,
            kind,
            value: 0.0,
        }
    }

    /// Sets the served-request tick.
    pub fn tick(mut self, tick: u64) -> FlightEvent {
        self.tick = tick;
        self
    }

    /// Ties the event to a request id.
    pub fn request(mut self, request: u64) -> FlightEvent {
        self.request = request;
        self
    }

    /// Sets the snapshot epoch.
    pub fn epoch(mut self, epoch: u64) -> FlightEvent {
        self.epoch = epoch;
        self
    }

    /// Ties the event to a proxy.
    pub fn proxy(mut self, proxy: u32) -> FlightEvent {
        self.proxy = proxy;
        self
    }

    /// Ties the event to a worker.
    pub fn worker(mut self, worker: usize) -> FlightEvent {
        self.worker = worker.min(NO_WORKER as usize - 1) as u16;
        self
    }

    /// Sets the kind-specific payload value.
    pub fn value(mut self, value: f64) -> FlightEvent {
        self.value = value;
        self
    }

    fn pack(&self) -> [u64; 5] {
        let (kind, detail) = self.kind.encode();
        let packed = (kind as u64)
            | ((detail as u64) << 8)
            | ((self.worker as u64) << 16)
            | ((self.proxy as u64) << 32);
        [
            self.tick,
            self.request,
            self.epoch,
            packed,
            self.value.to_bits(),
        ]
    }

    fn unpack(seq: u64, words: [u64; 5]) -> FlightEvent {
        let packed = words[3];
        FlightEvent {
            seq,
            tick: words[0],
            request: words[1],
            epoch: words[2],
            proxy: (packed >> 32) as u32,
            worker: ((packed >> 16) & 0xFFFF) as u16,
            kind: FlightKind::decode((packed & 0xFF) as u8, ((packed >> 8) & 0xFF) as u8),
            value: f64::from_bits(words[4]),
        }
    }

    /// One-line rendering used by `son flight` timelines.
    pub fn render(&self) -> String {
        let mut out = format!(
            "seq={:<6} tick={:<6} {:<24}",
            self.seq,
            self.tick,
            self.kind.label()
        );
        if self.request != NO_REQUEST {
            out.push_str(&format!(" req={}", self.request));
        }
        out.push_str(&format!(" epoch={}", self.epoch));
        if self.proxy != NO_PROXY {
            out.push_str(&format!(" proxy={}", self.proxy));
        }
        if self.worker != NO_WORKER {
            out.push_str(&format!(" worker={}", self.worker));
        }
        if self.value != 0.0 {
            out.push_str(&format!(" value={:.1}", self.value));
        }
        out
    }
}

// Slot state word: 0 = empty, ((seq+1) << 1) | 1 = writing(seq),
// (seq+1) << 1 = complete(seq). The +1 keeps seq 0 distinct from empty.
const EMPTY: u64 = 0;

fn writing(seq: u64) -> u64 {
    ((seq + 1) << 1) | 1
}

fn complete(seq: u64) -> u64 {
    (seq + 1) << 1
}

fn state_seq(state: u64) -> Option<u64> {
    if state == EMPTY {
        None
    } else {
        Some((state >> 1) - 1)
    }
}

fn state_is_writing(state: u64) -> bool {
    state != EMPTY && state & 1 == 1
}

struct Slot {
    state: AtomicU64,
    words: [AtomicU64; 5],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            state: AtomicU64::new(EMPTY),
            words: [0; 5].map(AtomicU64::new),
        }
    }
}

/// A frozen copy of the ring taken when an SLO objective breached.
#[derive(Debug, Clone)]
pub struct AnomalySnapshot {
    /// Which objective tripped.
    pub kind: AnomalyKind,
    /// Index of the sealed window that breached.
    pub window: u64,
    /// Served-request tick at the seal.
    pub tick: u64,
    /// The observed windowed value (p99 µs or rejection fraction).
    pub observed: f64,
    /// The configured threshold it crossed.
    pub threshold: f64,
    /// The ring contents at trigger time, in sequence order.
    pub events: Vec<FlightEvent>,
}

/// Lock-free bounded ring of [`FlightEvent`]s.
pub struct FlightRecorder {
    slots: Vec<Slot>,
    head: AtomicU64,
    dropped: AtomicU64,
    anomalies: AtomicU64,
    enabled: AtomicBool,
    anomaly: Mutex<Option<AnomalySnapshot>>,
}

impl FlightRecorder {
    /// Creates a recorder with `capacity` slots (rounded up to ≥ 2).
    /// Recording starts disabled.
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(2);
        FlightRecorder {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            anomalies: AtomicU64::new(0),
            enabled: AtomicBool::new(false),
            anomaly: Mutex::new(None),
        }
    }

    /// Number of slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Enables or disables recording. Disabled recording costs one
    /// relaxed load per call site.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether the recorder currently accepts events.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Total sequence numbers handed out so far (published + dropped).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events dropped because their slot was held by a stalled writer.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// How many times the anomaly trigger fired (only the first freeze
    /// is retained).
    pub fn anomaly_count(&self) -> u64 {
        self.anomalies.load(Ordering::Relaxed)
    }

    /// Appends an event. Returns the assigned sequence number if the
    /// event was durably published, or `None` if recording is disabled
    /// or the event was dropped (slot held by a stalled older writer).
    pub fn record(&self, event: FlightEvent) -> Option<u64> {
        if !self.is_enabled() {
            return None;
        }
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let mut spins = 0u32;
        let mut state = slot.state.load(Ordering::Acquire);
        loop {
            if let Some(occupant) = state_seq(state) {
                if occupant >= seq {
                    // We stalled between taking the ticket and claiming
                    // the slot; a full lap overwrote it. Our event is
                    // too old to matter.
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                if state_is_writing(state) {
                    // An older writer is mid-publish. Taking over would
                    // let a torn payload surface as complete, so wait
                    // briefly and otherwise drop our own event.
                    spins += 1;
                    if spins > 64 {
                        self.dropped.fetch_add(1, Ordering::Relaxed);
                        return None;
                    }
                    std::hint::spin_loop();
                    state = slot.state.load(Ordering::Acquire);
                    continue;
                }
            }
            match slot.state.compare_exchange_weak(
                state,
                writing(seq),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(seen) => state = seen,
            }
        }
        // Payload stores use Release so a reader that observes any of
        // them also observes the writing(seq) claim (see dump()).
        for (word, value) in slot.words.iter().zip(event.pack()) {
            word.store(value, Ordering::Release);
        }
        slot.state.store(complete(seq), Ordering::Release);
        Some(seq)
    }

    /// Reads the current ring contents in sequence order. Slots being
    /// written concurrently are skipped, so the result only ever
    /// contains fully published events.
    pub fn dump(&self) -> Vec<FlightEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            for _ in 0..8 {
                let before = slot.state.load(Ordering::Acquire);
                if before == EMPTY || state_is_writing(before) {
                    break;
                }
                let mut words = [0u64; 5];
                for (copy, word) in words.iter_mut().zip(&slot.words) {
                    *copy = word.load(Ordering::Acquire);
                }
                let after = slot.state.load(Ordering::Acquire);
                if after == before {
                    let seq = state_seq(before).expect("complete state has a seq");
                    out.push(FlightEvent::unpack(seq, words));
                    break;
                }
            }
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Like [`dump`](Self::dump), keeping only events with
    /// `seq >= since`.
    pub fn since(&self, since: u64) -> Vec<FlightEvent> {
        let mut events = self.dump();
        events.retain(|e| e.seq >= since);
        events
    }

    /// Fires the anomaly trigger: records an [`FlightKind::Anomaly`]
    /// event, then freezes a snapshot of the ring. First trigger wins;
    /// later triggers only increment the anomaly counter so the frozen
    /// context stays the one surrounding the first breach.
    pub fn trigger_anomaly(
        &self,
        kind: AnomalyKind,
        window: u64,
        tick: u64,
        observed: f64,
        threshold: f64,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.anomalies.fetch_add(1, Ordering::Relaxed);
        self.record(
            FlightEvent::new(FlightKind::Anomaly(kind))
                .tick(tick)
                .value(observed),
        );
        let mut frozen = self.anomaly.lock().unwrap();
        if frozen.is_none() {
            *frozen = Some(AnomalySnapshot {
                kind,
                window,
                tick,
                observed,
                threshold,
                events: self.dump(),
            });
        }
    }

    /// The frozen anomaly snapshot, if the trigger has fired.
    pub fn anomaly(&self) -> Option<AnomalySnapshot> {
        self.anomaly.lock().unwrap().clone()
    }

    /// Publishes recorder totals as `flight.*` gauges so they appear in
    /// Prometheus/JSON exports alongside the rest of the registry.
    pub fn publish(&self, registry: &Registry) {
        registry.gauge("flight.events").set(self.recorded() as f64);
        registry.gauge("flight.dropped").set(self.dropped() as f64);
        registry
            .gauge("flight.anomalies")
            .set(self.anomaly_count() as f64);
    }
}

static FLIGHT: OnceLock<FlightRecorder> = OnceLock::new();

/// The process-wide flight recorder (disabled until
/// [`FlightRecorder::set_enabled`] is called on it).
pub fn flight() -> &'static FlightRecorder {
    FLIGHT.get_or_init(|| FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled_recorder(capacity: usize) -> FlightRecorder {
        let rec = FlightRecorder::new(capacity);
        rec.set_enabled(true);
        rec
    }

    #[test]
    fn disabled_recorder_accepts_nothing() {
        let rec = FlightRecorder::new(16);
        assert_eq!(
            rec.record(FlightEvent::new(FlightKind::SnapshotInstall)),
            None
        );
        assert_eq!(rec.recorded(), 0);
        assert!(rec.dump().is_empty());
    }

    #[test]
    fn events_round_trip_all_fields() {
        let rec = enabled_recorder(16);
        let ev = FlightEvent::new(FlightKind::CacheVerdict(CacheVerdict::StaleServe))
            .tick(42)
            .request(7)
            .epoch(3)
            .proxy(19)
            .worker(2)
            .value(123.5);
        let seq = rec.record(ev).expect("published");
        let dump = rec.dump();
        assert_eq!(dump.len(), 1);
        let got = dump[0];
        assert_eq!(got.seq, seq);
        assert_eq!(got.tick, 42);
        assert_eq!(got.request, 7);
        assert_eq!(got.epoch, 3);
        assert_eq!(got.proxy, 19);
        assert_eq!(got.worker, 2);
        assert_eq!(got.kind, FlightKind::CacheVerdict(CacheVerdict::StaleServe));
        assert_eq!(got.value, 123.5);
    }

    #[test]
    fn every_kind_round_trips() {
        let kinds = [
            FlightKind::SnapshotInstall,
            FlightKind::HealthTransition,
            FlightKind::CacheVerdict(CacheVerdict::Hit),
            FlightKind::CacheVerdict(CacheVerdict::Miss),
            FlightKind::CacheVerdict(CacheVerdict::StaleServe),
            FlightKind::CacheVerdict(CacheVerdict::StaleDrop),
            FlightKind::CacheVerdict(CacheVerdict::NegativeHit),
            FlightKind::CacheVerdict(CacheVerdict::CspHit),
            FlightKind::CacheVerdict(CacheVerdict::HealthDrop),
            FlightKind::FailoverRetry,
            FlightKind::Disposition(DispositionMark::Optimal),
            FlightKind::Disposition(DispositionMark::Degraded),
            FlightKind::Disposition(DispositionMark::RejectNoIngress),
            FlightKind::Disposition(DispositionMark::RejectOverloaded),
            FlightKind::Disposition(DispositionMark::RejectUnroutable),
            FlightKind::TreeRepair,
            FlightKind::StageTime(Stage::Queue),
            FlightKind::StageTime(Stage::Route),
            FlightKind::StageTime(Stage::Admit),
            FlightKind::StageTime(Stage::Cache),
            FlightKind::StageTime(Stage::Dispatch),
            FlightKind::StageTime(Stage::Busy),
            FlightKind::StageTime(Stage::Idle),
            FlightKind::Anomaly(AnomalyKind::LatencyP99),
            FlightKind::Anomaly(AnomalyKind::RejectionRate),
        ];
        let rec = enabled_recorder(64);
        for &kind in &kinds {
            rec.record(FlightEvent::new(kind));
        }
        let dump = rec.dump();
        assert_eq!(dump.len(), kinds.len());
        for (ev, &kind) in dump.iter().zip(&kinds) {
            assert_eq!(ev.kind, kind);
        }
    }

    #[test]
    fn ring_keeps_only_the_most_recent_capacity_events() {
        let rec = enabled_recorder(8);
        for i in 0..20u64 {
            rec.record(FlightEvent::new(FlightKind::SnapshotInstall).epoch(i));
        }
        let dump = rec.dump();
        assert_eq!(dump.len(), 8);
        let seqs: Vec<u64> = dump.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<u64>>());
        for ev in &dump {
            assert_eq!(ev.epoch, ev.seq);
        }
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn since_filters_by_sequence() {
        let rec = enabled_recorder(16);
        for i in 0..10u64 {
            rec.record(FlightEvent::new(FlightKind::SnapshotInstall).epoch(i));
        }
        let tail = rec.since(6);
        assert_eq!(tail.len(), 4);
        assert!(tail.iter().all(|e| e.seq >= 6));
    }

    #[test]
    fn first_anomaly_trigger_wins_and_freezes_the_ring() {
        let rec = enabled_recorder(32);
        for i in 0..5u64 {
            rec.record(FlightEvent::new(FlightKind::SnapshotInstall).epoch(i));
        }
        rec.trigger_anomaly(AnomalyKind::RejectionRate, 3, 300, 0.8, 0.5);
        // Later events and triggers must not disturb the frozen copy.
        for i in 5..10u64 {
            rec.record(FlightEvent::new(FlightKind::SnapshotInstall).epoch(i));
        }
        rec.trigger_anomaly(AnomalyKind::LatencyP99, 4, 400, 9000.0, 5000.0);
        let snap = rec.anomaly().expect("anomaly fired");
        assert_eq!(snap.kind, AnomalyKind::RejectionRate);
        assert_eq!(snap.window, 3);
        assert_eq!(snap.tick, 300);
        assert_eq!(snap.observed, 0.8);
        assert_eq!(snap.threshold, 0.5);
        // 5 installs + the anomaly event itself.
        assert_eq!(snap.events.len(), 6);
        assert_eq!(rec.anomaly_count(), 2);
    }

    #[test]
    fn publish_exports_flight_gauges() {
        let rec = enabled_recorder(16);
        rec.record(FlightEvent::new(FlightKind::SnapshotInstall));
        rec.record(FlightEvent::new(FlightKind::SnapshotInstall));
        let reg = Registry::new();
        rec.publish(&reg);
        assert_eq!(reg.gauge("flight.events").get(), 2.0);
        assert_eq!(reg.gauge("flight.dropped").get(), 0.0);
        assert_eq!(reg.gauge("flight.anomalies").get(), 0.0);
    }

    #[test]
    fn concurrent_writers_publish_consistent_events() {
        let rec = enabled_recorder(128);
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let rec = &rec;
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        rec.record(
                            FlightEvent::new(FlightKind::SnapshotInstall)
                                .request(w * 1_000_000 + i)
                                .epoch(w * 1_000_000 + i),
                        );
                    }
                });
            }
        });
        assert_eq!(rec.recorded(), 4000);
        let dump = rec.dump();
        assert!(dump.len() <= 128);
        // No torn payloads: request and epoch were written as a pair.
        for ev in &dump {
            assert_eq!(ev.request, ev.epoch);
        }
        // Sequence numbers strictly increase.
        for pair in dump.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
    }
}
