//! Exporters: Prometheus-style text exposition and JSON snapshots.
//!
//! Both walk a [`Registry`] snapshot (stable key order). The JSON
//! exporter reuses the workspace's canonical [`Json`] emitter so the
//! snapshot file diffs exactly like the bench artifacts under
//! `results/`.

use std::path::Path;

use crate::json::Json;
use crate::registry::{MetricValue, Registry};

/// Maps a dotted metric name onto the Prometheus charset
/// (`[a-zA-Z0-9_:]`): every other character becomes `_`.
pub fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_name(k), v))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn render_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders the registry in Prometheus text exposition format.
/// Histograms export as summaries (`quantile` labels plus `_sum`,
/// `_count`, and a `_max` gauge).
pub fn render_prometheus(registry: &Registry) -> String {
    let mut out = String::new();
    let mut last_typed = String::new();
    for (key, value) in registry.snapshot() {
        let name = sanitize_name(&key.name);
        match value {
            MetricValue::Counter(v) => {
                if last_typed != name {
                    out.push_str(&format!("# TYPE {name} counter\n"));
                    last_typed = name.clone();
                }
                out.push_str(&format!("{name}{} {v}\n", render_labels(&key.labels, None)));
            }
            MetricValue::Gauge(v) => {
                if last_typed != name {
                    out.push_str(&format!("# TYPE {name} gauge\n"));
                    last_typed = name.clone();
                }
                out.push_str(&format!(
                    "{name}{} {}\n",
                    render_labels(&key.labels, None),
                    render_num(v)
                ));
            }
            MetricValue::Histogram(s) => {
                if last_typed != name {
                    out.push_str(&format!("# TYPE {name} summary\n"));
                    last_typed = name.clone();
                }
                for (q, v) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
                    out.push_str(&format!(
                        "{name}{} {}\n",
                        render_labels(&key.labels, Some(("quantile", q))),
                        render_num(v)
                    ));
                }
                let plain = render_labels(&key.labels, None);
                out.push_str(&format!("{name}_sum{plain} {}\n", render_num(s.sum)));
                out.push_str(&format!("{name}_count{plain} {}\n", s.count));
                out.push_str(&format!("{name}_max{plain} {}\n", render_num(s.max)));
            }
        }
    }
    out
}

/// Builds the JSON snapshot object: `{"snapshot": "son-telemetry",
/// "metrics": {<rendered key>: <value>, ...}}`. Histogram values are
/// objects with `count`/`sum`/`p50`/`p90`/`p99`/`max`.
pub fn snapshot_json(registry: &Registry) -> Json {
    let metrics: Vec<(String, Json)> = registry
        .snapshot()
        .into_iter()
        .map(|(key, value)| {
            let json = match value {
                MetricValue::Counter(v) => Json::Num(v as f64),
                MetricValue::Gauge(v) => Json::Num(v),
                MetricValue::Histogram(s) => Json::obj([
                    ("count", Json::from(s.count)),
                    ("sum", Json::Num(s.sum)),
                    ("p50", Json::Num(s.p50)),
                    ("p90", Json::Num(s.p90)),
                    ("p99", Json::Num(s.p99)),
                    ("max", Json::Num(s.max)),
                ]),
            };
            (key.render(), json)
        })
        .collect();
    Json::obj([
        ("snapshot", Json::from("son-telemetry")),
        ("metrics", Json::Obj(metrics)),
    ])
}

/// Writes the JSON snapshot of `registry` to `path`.
pub fn write_json_snapshot(registry: &Registry, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, snapshot_json(registry).render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_registry() -> Registry {
        let reg = Registry::new();
        reg.counter("engine.cache.hits").add(42);
        // Cache-v2 keys: the CSP frontier tier and stale-while-
        // revalidate counters the engine folds per batch.
        reg.counter("engine.cache.csp_hits").add(17);
        reg.counter("engine.cache.stale_served").add(3);
        reg.counter_with("engine.errors", &[("worker", "0")]).add(1);
        reg.gauge("state.convergence_ms").set(125.5);
        // Tree-dissemination keys: a counter and a gauge, as
        // `StateProtocol` folds them.
        reg.counter("state.tree.sent").add(7);
        reg.gauge("state.tree.depth").set(3.0);
        // Flight-recorder and SLO-window keys, as
        // `FlightRecorder::publish` / `SloTracker::publish` set them.
        reg.gauge("flight.events").set(128.0);
        reg.gauge("flight.dropped").set(0.0);
        reg.gauge("flight.anomalies").set(1.0);
        reg.gauge("slo.availability").set(0.9975);
        reg.gauge("slo.windows").set(16.0);
        reg.gauge("slo.breaches").set(1.0);
        reg.gauge("slo.window.burn_rate").set(0.25);
        let h = reg.histogram_with("engine.serve_us", &[("worker", "0")]);
        for v in [10.0, 20.0, 30.0, 40.0] {
            h.record(v);
        }
        reg
    }

    #[test]
    fn prometheus_text_matches_golden_file() {
        let text = render_prometheus(&demo_registry());
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics.prom");
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::write(path, &text).expect("regenerate golden file");
        }
        let golden = std::fs::read_to_string(path).expect("read golden file");
        assert_eq!(
            text, golden,
            "Prometheus exposition drifted from the golden file \
             (UPDATE_GOLDEN=1 regenerates it)"
        );
    }

    #[test]
    fn json_snapshot_contains_rendered_keys() {
        let json = snapshot_json(&demo_registry()).render();
        assert!(json.contains("\"engine.cache.hits\": 42"));
        assert!(
            json.contains("engine.serve_us{worker=\\\"0\\\"}")
                || json.contains("engine.serve_us{worker=\"0\"}")
        );
        assert!(json.contains("\"p99\""));
    }

    #[test]
    fn sanitize_maps_dots_to_underscores() {
        assert_eq!(sanitize_name("engine.cache.hits"), "engine_cache_hits");
        assert_eq!(sanitize_name("span.build.hfc_us"), "span_build_hfc_us");
    }
}
