//! Route-provenance records.
//!
//! A [`RouteTrace`] explains *why* one routed request took the path it
//! did: which router answered, whether the answer came from the route
//! cache (and at which epoch), how the hierarchical planner dissected
//! the constrained shortest path across clusters, what each cluster's
//! child solver returned, where the path crossed borders, and what the
//! final cost was. The record uses only plain ids (`usize`) and strings
//! so `son-telemetry` stays below every other crate in the dependency
//! graph; `son-routing` fills it in from its own types.

use std::fmt::Write as _;

/// How the route cache participated in answering a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served straight from the cache at the current epoch.
    Hit,
    /// Not cached; a router computed the path.
    Miss,
    /// A cached entry existed but belonged to an older epoch and was
    /// dropped before recomputing.
    StaleDrop,
}

impl CacheOutcome {
    /// Short lowercase label (`hit` / `miss` / `stale-drop`).
    pub fn label(&self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::StaleDrop => "stale-drop",
        }
    }
}

/// One hop of a service path: the proxy visited and the service it
/// executes there, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHop {
    /// Proxy id.
    pub proxy: usize,
    /// Service executed at this proxy (`None` for pure relay hops).
    pub service: Option<usize>,
}

/// One stage of the constrained-shortest-path dissection: which cluster
/// the planner pinned a service-graph stage to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CspStage {
    /// Stage index in the service graph.
    pub stage: usize,
    /// Cluster chosen for this stage.
    pub cluster: usize,
}

/// One per-cluster child subproblem and the assignment it produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChildTrace {
    /// Cluster the child subproblem was confined to.
    pub cluster: usize,
    /// Proxy acting as the child solver for that cluster.
    pub solver: usize,
    /// Entry proxy of the child segment.
    pub source: usize,
    /// Exit proxy of the child segment.
    pub dest: usize,
    /// Services the child had to place, in order.
    pub services: Vec<usize>,
    /// Proxies the child assigned those services to (empty if the child
    /// was never solved, e.g. on failure).
    pub assigned: Vec<usize>,
}

/// A border crossing between two clusters on the composed path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BorderHop {
    /// Exit proxy in the first cluster.
    pub from_proxy: usize,
    /// Entry proxy in the next cluster.
    pub to_proxy: usize,
}

/// Full provenance of one routed request.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteTrace {
    /// Router that answered (`hier`, `flat`, ...).
    pub router: String,
    /// Engine snapshot epoch at the time of routing, when known.
    pub epoch: Option<u64>,
    /// Route-cache participation, when the engine was involved.
    pub cache: Option<CacheOutcome>,
    /// Requested source proxy.
    pub source: usize,
    /// Requested destination proxy.
    pub destination: usize,
    /// Requested service chain.
    pub services: Vec<usize>,
    /// CSP dissection: stage → cluster choices made by the planner.
    pub csp: Vec<CspStage>,
    /// Per-cluster child subproblems.
    pub children: Vec<ChildTrace>,
    /// Border crossings stitched in by composition.
    pub border_hops: Vec<BorderHop>,
    /// The final composed path.
    pub hops: Vec<TraceHop>,
    /// Path cost under the snapshot's delay model, when computed.
    pub cost: Option<f64>,
    /// Planner's cost estimate before child solving, when available.
    pub estimate: Option<f64>,
    /// Wall-clock time spent producing the answer, in microseconds.
    pub elapsed_us: f64,
    /// `"ok"` or a routing error description.
    pub outcome: String,
}

impl RouteTrace {
    /// Starts an empty trace for `router`.
    pub fn new(router: &str) -> RouteTrace {
        RouteTrace {
            router: router.to_string(),
            epoch: None,
            cache: None,
            source: 0,
            destination: 0,
            services: Vec::new(),
            csp: Vec::new(),
            children: Vec::new(),
            border_hops: Vec::new(),
            hops: Vec::new(),
            cost: None,
            estimate: None,
            elapsed_us: 0.0,
            outcome: "ok".to_string(),
        }
    }

    fn fmt_hop(hop: &TraceHop) -> String {
        match hop.service {
            Some(s) => format!("s{}@p{}", s, hop.proxy),
            None => format!("p{}", hop.proxy),
        }
    }

    /// Renders the trace as an indented human-readable block — the
    /// output of `son trace`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "route provenance: router={}", self.router);
        if let Some(epoch) = self.epoch {
            let _ = write!(out, " epoch={epoch}");
        }
        if let Some(cache) = self.cache {
            let _ = write!(out, " cache={}", cache.label());
        }
        out.push('\n');
        let services: Vec<String> = self.services.iter().map(|s| format!("s{s}")).collect();
        let _ = writeln!(
            out,
            "  request : p{} -> p{} via [{}]",
            self.source,
            self.destination,
            services.join(", ")
        );
        if !self.csp.is_empty() {
            let stages: Vec<String> = self
                .csp
                .iter()
                .map(|c| format!("stage{}->C{}", c.stage, c.cluster))
                .collect();
            let _ = writeln!(out, "  csp     : {}", stages.join("  "));
        }
        for (i, child) in self.children.iter().enumerate() {
            let services: Vec<String> = child.services.iter().map(|s| format!("s{s}")).collect();
            let assigned: Vec<String> = child.assigned.iter().map(|p| format!("p{p}")).collect();
            let _ = writeln!(
                out,
                "  child #{i}: C{} solver=p{} p{}->p{} places [{}] on [{}]",
                child.cluster,
                child.solver,
                child.source,
                child.dest,
                services.join(", "),
                assigned.join(", ")
            );
        }
        for hop in &self.border_hops {
            let _ = writeln!(out, "  border  : p{} => p{}", hop.from_proxy, hop.to_proxy);
        }
        if !self.hops.is_empty() {
            let hops: Vec<String> = self.hops.iter().map(Self::fmt_hop).collect();
            let _ = writeln!(out, "  path    : {}", hops.join(" -> "));
        }
        match self.cost {
            Some(cost) => {
                let _ = write!(out, "  cost    : {cost:.3}");
                if let Some(est) = self.estimate {
                    let _ = write!(out, " (planner estimate {est:.3})");
                }
                out.push('\n');
            }
            None => {
                if let Some(est) = self.estimate {
                    let _ = writeln!(out, "  cost    : planner estimate {est:.3}");
                }
            }
        }
        let _ = writeln!(
            out,
            "  outcome : {} in {:.1} us",
            self.outcome, self.elapsed_us
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shows_every_section() {
        let mut trace = RouteTrace::new("hier");
        trace.epoch = Some(3);
        trace.cache = Some(CacheOutcome::Miss);
        trace.source = 0;
        trace.destination = 9;
        trace.services = vec![2, 5];
        trace.csp = vec![
            CspStage {
                stage: 0,
                cluster: 1,
            },
            CspStage {
                stage: 1,
                cluster: 4,
            },
        ];
        trace.children = vec![ChildTrace {
            cluster: 1,
            solver: 7,
            source: 0,
            dest: 3,
            services: vec![2],
            assigned: vec![2],
        }];
        trace.border_hops = vec![BorderHop {
            from_proxy: 3,
            to_proxy: 4,
        }];
        trace.hops = vec![
            TraceHop {
                proxy: 0,
                service: None,
            },
            TraceHop {
                proxy: 2,
                service: Some(2),
            },
            TraceHop {
                proxy: 9,
                service: Some(5),
            },
        ];
        trace.cost = Some(12.5);
        trace.estimate = Some(11.0);
        trace.elapsed_us = 42.0;
        let text = trace.render();
        for needle in [
            "router=hier",
            "epoch=3",
            "cache=miss",
            "p0 -> p9 via [s2, s5]",
            "stage0->C1",
            "stage1->C4",
            "child #0: C1 solver=p7",
            "border  : p3 => p4",
            "p0 -> s2@p2 -> s5@p9",
            "cost    : 12.500 (planner estimate 11.000)",
            "outcome : ok",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn cache_hit_render_omits_planner_sections() {
        let mut trace = RouteTrace::new("hier");
        trace.cache = Some(CacheOutcome::Hit);
        trace.hops = vec![TraceHop {
            proxy: 1,
            service: None,
        }];
        let text = trace.render();
        assert!(text.contains("cache=hit"));
        assert!(!text.contains("csp"));
        assert!(!text.contains("child #"));
    }
}
