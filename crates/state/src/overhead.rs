//! State-maintenance overhead accounting (paper Section 6.1).
//!
//! Overhead is quantified in *node-states*: the number of entries a
//! proxy keeps in the relevant state table, where an entry may describe
//! a single node or a whole cluster.
//!
//! * **Flat (single-level) topology** — every proxy keeps coordinates
//!   and capabilities of all `n` proxies: `n` node-states each.
//! * **HFC topology** —
//!   * coordinates: own cluster's members plus every border proxy in
//!     the system;
//!   * service capabilities: own cluster's members (`SCT_P`) plus one
//!     aggregate entry per cluster (`SCT_C`).

use son_overlay::{HfcTopology, ProxyId};

/// Which kind of state is being counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OverheadKind {
    /// Coordinates-related state (Figure 9(a)).
    Coordinates,
    /// Service-capability-related state (Figure 9(b)).
    ServiceCapability,
}

/// Per-proxy node-state statistics across an overlay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadReport {
    /// Mean node-states per proxy.
    pub mean: f64,
    /// Smallest per-proxy count.
    pub min: usize,
    /// Largest per-proxy count.
    pub max: usize,
    /// Number of proxies sampled.
    pub proxies: usize,
}

impl OverheadReport {
    fn from_counts(counts: &[usize]) -> Self {
        assert!(!counts.is_empty(), "overhead over an empty overlay");
        OverheadReport {
            mean: counts.iter().sum::<usize>() as f64 / counts.len() as f64,
            min: counts.iter().copied().min().expect("non-empty"),
            max: counts.iter().copied().max().expect("non-empty"),
            proxies: counts.len(),
        }
    }
}

/// Node-state overhead of a flat (single-level) topology of `n`
/// proxies: every proxy keeps `n` node-states for either kind.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn flat_overhead(n: usize, _kind: OverheadKind) -> OverheadReport {
    assert!(n > 0, "overhead over an empty overlay");
    OverheadReport {
        mean: n as f64,
        min: n,
        max: n,
        proxies: n,
    }
}

/// Node-state overhead of an HFC topology, per proxy.
///
/// # Panics
///
/// Panics if the topology has no proxies.
pub fn hfc_overhead(hfc: &HfcTopology, kind: OverheadKind) -> OverheadReport {
    let counts: Vec<usize> = (0..hfc.proxy_count())
        .map(|p| hfc_overhead_of(hfc, ProxyId::new(p), kind))
        .collect();
    OverheadReport::from_counts(&counts)
}

/// Node-states kept by one specific proxy under HFC.
pub fn hfc_overhead_of(hfc: &HfcTopology, proxy: ProxyId, kind: OverheadKind) -> usize {
    match kind {
        // Coordinates of all members within the cluster plus all border
        // proxies in the system (deduplicated — own borders are both).
        OverheadKind::Coordinates => hfc.visible_proxies(proxy).len(),
        // SCT_P entries (own cluster members) + SCT_C entries (one per
        // cluster in the system).
        OverheadKind::ServiceCapability => {
            hfc.members(hfc.cluster_of(proxy)).len() + hfc.cluster_count()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use son_clustering::Clustering;
    use son_overlay::DelayMatrix;

    /// 9 proxies in 3 equal clusters at mutual distance far larger
    /// than intra-cluster spread.
    fn world() -> HfcTopology {
        let n = 9;
        let pos: Vec<f64> = (0..n)
            .map(|i| (i / 3) as f64 * 100.0 + (i % 3) as f64)
            .collect();
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                values[i * n + j] = (pos[i] - pos[j]).abs();
            }
        }
        let labels: Vec<usize> = (0..n).map(|i| i / 3).collect();
        HfcTopology::build(
            &Clustering::from_labels(&labels),
            &DelayMatrix::from_values(n, values),
        )
    }

    #[test]
    fn flat_overhead_is_n() {
        let r = flat_overhead(250, OverheadKind::Coordinates);
        assert_eq!(r.mean, 250.0);
        assert_eq!(r.min, 250);
        assert_eq!(r.max, 250);
        assert_eq!(r.proxies, 250);
    }

    #[test]
    fn hfc_coordinate_overhead_counts_cluster_plus_borders() {
        let hfc = world();
        let borders = hfc.all_border_proxies().len();
        let r = hfc_overhead(&hfc, OverheadKind::Coordinates);
        // Upper bound: 3 own members + all borders; dedup can only
        // lower it.
        assert!(r.max <= 3 + borders);
        assert!(r.min >= 3, "at least the own cluster");
        // And always at most n.
        assert!(r.max <= 9);
    }

    #[test]
    fn hfc_service_overhead_is_members_plus_clusters() {
        let hfc = world();
        let r = hfc_overhead(&hfc, OverheadKind::ServiceCapability);
        assert_eq!(r.mean, (3 + 3) as f64);
        assert_eq!(r.min, 6);
        assert_eq!(r.max, 6);
    }

    #[test]
    fn hfc_beats_flat_for_many_small_clusters() {
        let hfc = world();
        let flat = flat_overhead(hfc.proxy_count(), OverheadKind::ServiceCapability);
        let hier = hfc_overhead(&hfc, OverheadKind::ServiceCapability);
        assert!(hier.mean < flat.mean);
    }

    #[test]
    fn single_cluster_overhead_degenerates_to_flat() {
        let n = 5;
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                values[i * n + j] = if i == j { 0.0 } else { 1.0 };
            }
        }
        let hfc = HfcTopology::build(
            &Clustering::from_labels(&[0; 5]),
            &DelayMatrix::from_values(n, values),
        );
        let coords = hfc_overhead(&hfc, OverheadKind::Coordinates);
        assert_eq!(coords.mean, 5.0);
        let svc = hfc_overhead(&hfc, OverheadKind::ServiceCapability);
        assert_eq!(svc.mean, 6.0, "5 members + 1 cluster aggregate");
    }

    #[test]
    #[should_panic(expected = "empty overlay")]
    fn empty_flat_overhead_panics() {
        let _ = flat_overhead(0, OverheadKind::Coordinates);
    }
}
