//! The hierarchical state distribution protocol (paper Section 4),
//! executed on the deterministic discrete-event simulator.
//!
//! 1. **Local state**: every proxy periodically sends a local state
//!    message (its installed service names) to every proxy of its own
//!    cluster; receivers update their `SCT_P`.
//! 2. **Aggregate state**: every border proxy periodically aggregates
//!    its cluster's capabilities (union over its `SCT_P`) and sends an
//!    aggregate state message to the neighbor border proxies of other
//!    clusters. A border proxy receiving such a message updates its
//!    `SCT_C` and forwards it to the other proxies of its own cluster.

use crate::tables::{SctC, SctP};
use son_netsim::graph::NodeId;
use son_netsim::sim::{Actor, Ctx, Simulator};
use son_netsim::SimTime;
use son_overlay::{ClusterId, DelayModel, HfcTopology, ProxyId, ServiceSet};

/// Timing parameters of the protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolConfig {
    /// Period between local state broadcasts, in milliseconds.
    pub local_period_ms: f64,
    /// Period between aggregate state broadcasts, in milliseconds.
    pub aggregate_period_ms: f64,
    /// How many periods each proxy runs before going quiet. With
    /// static services two rounds reach convergence; the default keeps
    /// one round of slack.
    pub rounds: usize,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            local_period_ms: 10.0,
            aggregate_period_ms: 15.0,
            rounds: 3,
        }
    }
}

/// Messages exchanged by the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateMsg {
    /// A proxy's own service names, flooded within its cluster.
    Local {
        /// Installed services of the sender.
        services: ServiceSet,
    },
    /// A cluster's aggregate service set, exchanged between border
    /// proxies and forwarded within clusters.
    Aggregate {
        /// The cluster being described.
        cluster: ClusterId,
        /// Union of the cluster's service sets.
        services: ServiceSet,
    },
}

const LOCAL_TIMER: u64 = 1;
const AGGREGATE_TIMER: u64 = 2;

/// One proxy's protocol state machine.
#[derive(Debug)]
pub struct ProxyActor {
    id: ProxyId,
    cluster: ClusterId,
    services: ServiceSet,
    /// Other members of the local cluster.
    peers: Vec<ProxyId>,
    /// Remote border proxies this proxy (as a border) must advertise
    /// to: one per neighboring cluster where this proxy is the border.
    border_duties: Vec<ProxyId>,
    config: ProtocolConfig,
    local_rounds_left: usize,
    aggregate_rounds_left: usize,
    /// Full state of the local cluster.
    pub sctp: SctP,
    /// Aggregate state of every cluster.
    pub sctc: SctC,
    /// Local state messages sent.
    pub sent_local: u64,
    /// Aggregate state messages sent (including intra-cluster
    /// forwards).
    pub sent_aggregate: u64,
}

impl ProxyActor {
    fn broadcast_local(&mut self, ctx: &mut Ctx<'_, StateMsg>) {
        for &peer in &self.peers {
            ctx.send(
                NodeId::new(peer.index()),
                StateMsg::Local {
                    services: self.services.clone(),
                },
            );
            self.sent_local += 1;
        }
    }

    fn broadcast_aggregate(&mut self, ctx: &mut Ctx<'_, StateMsg>) {
        let aggregate = self.sctp.aggregate();
        self.sctc.update(self.cluster, aggregate.clone());
        for &remote in &self.border_duties {
            ctx.send(
                NodeId::new(remote.index()),
                StateMsg::Aggregate {
                    cluster: self.cluster,
                    services: aggregate.clone(),
                },
            );
            self.sent_aggregate += 1;
        }
    }

    /// Re-forwards every known remote aggregate to the local cluster —
    /// the periodic leg of Section 4 rule 2. Without this, the final
    /// update of a table could ride a single (droppable) message once
    /// the advertisement rounds run out.
    fn reforward_known_aggregates(&mut self, ctx: &mut Ctx<'_, StateMsg>) {
        let entries: Vec<(ClusterId, ServiceSet)> = self
            .sctc
            .iter()
            .filter(|(c, _)| *c != self.cluster)
            .map(|(c, s)| (c, s.clone()))
            .collect();
        for (cluster, services) in entries {
            for &peer in &self.peers {
                ctx.send(
                    NodeId::new(peer.index()),
                    StateMsg::Aggregate {
                        cluster,
                        services: services.clone(),
                    },
                );
                self.sent_aggregate += 1;
            }
        }
    }
}

impl Actor for ProxyActor {
    type Msg = StateMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, StateMsg>) {
        // A proxy always knows itself.
        self.sctp.update(self.id, self.services.clone());
        self.sctc.update(self.cluster, self.services.clone());
        if self.local_rounds_left > 0 {
            self.local_rounds_left -= 1;
            self.broadcast_local(ctx);
            ctx.set_timer(SimTime::from_ms(self.config.local_period_ms), LOCAL_TIMER);
        }
        if !self.border_duties.is_empty() && self.aggregate_rounds_left > 0 {
            self.aggregate_rounds_left -= 1;
            self.broadcast_aggregate(ctx);
            ctx.set_timer(
                SimTime::from_ms(self.config.aggregate_period_ms),
                AGGREGATE_TIMER,
            );
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, StateMsg>, from: NodeId, msg: StateMsg) {
        match msg {
            StateMsg::Local { services } => {
                let changed = self.sctp.update(ProxyId::new(from.index()), services);
                // The local cluster's aggregate is derivable from SCT_P
                // without any extra messages — keep it fresh.
                let aggregate_changed = self.sctc.update(self.cluster, self.sctp.aggregate());
                // A border whose cluster aggregate just changed
                // re-advertises immediately rather than waiting for the
                // next period; otherwise slow local-state deliveries
                // could outlive the advertising rounds.
                if changed && aggregate_changed && !self.border_duties.is_empty() {
                    self.broadcast_aggregate(ctx);
                }
            }
            StateMsg::Aggregate { cluster, services } => {
                // Merge (set union): services are static, so aggregates
                // are monotone and merging makes delivery order and
                // duplicate retransmissions harmless.
                self.sctc.merge_update(cluster, &services);
                // A border proxy that received the message from outside
                // its own cluster forwards it inward, unconditionally
                // (Section 4 rule 2) — the repetition is what lets the
                // protocol ride out message loss.
                let from_outside = !self.peers.contains(&ProxyId::new(from.index()))
                    && ProxyId::new(from.index()) != self.id;
                if from_outside {
                    for &peer in &self.peers {
                        ctx.send(
                            NodeId::new(peer.index()),
                            StateMsg::Aggregate {
                                cluster,
                                services: services.clone(),
                            },
                        );
                        self.sent_aggregate += 1;
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, StateMsg>, token: u64) {
        match token {
            LOCAL_TIMER if self.local_rounds_left > 0 => {
                self.local_rounds_left -= 1;
                self.broadcast_local(ctx);
                ctx.set_timer(SimTime::from_ms(self.config.local_period_ms), LOCAL_TIMER);
            }
            AGGREGATE_TIMER if self.aggregate_rounds_left > 0 => {
                self.aggregate_rounds_left -= 1;
                self.broadcast_aggregate(ctx);
                self.reforward_known_aggregates(ctx);
                ctx.set_timer(
                    SimTime::from_ms(self.config.aggregate_period_ms),
                    AGGREGATE_TIMER,
                );
            }
            _ => {}
        }
    }
}

/// Outcome of a protocol run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateReport {
    /// `true` when every proxy reached full local state and correct
    /// aggregates for all clusters.
    pub converged: bool,
    /// Simulated time when the run went quiescent (or hit the
    /// deadline).
    pub ended_at: SimTime,
    /// Total messages delivered.
    pub messages_delivered: u64,
    /// Local state messages sent.
    pub local_messages: u64,
    /// Aggregate state messages sent (border exchange + forwards).
    pub aggregate_messages: u64,
}

/// Drives the protocol for a whole overlay.
///
/// # Example
///
/// ```
/// use son_clustering::Clustering;
/// use son_overlay::{DelayMatrix, HfcTopology, ServiceId, ServiceSet};
/// use son_state::{ProtocolConfig, StateProtocol};
///
/// let clustering = Clustering::from_labels(&[0, 0, 1, 1]);
/// let delays = DelayMatrix::from_values(4, vec![
///     0.0, 1.0, 4.0, 9.0,
///     1.0, 0.0, 6.0, 9.0,
///     4.0, 6.0, 0.0, 1.0,
///     9.0, 9.0, 1.0, 0.0,
/// ]);
/// let hfc = HfcTopology::build(&clustering, &delays);
/// let services: Vec<ServiceSet> = (0..4)
///     .map(|i| ServiceSet::from_iter([ServiceId::new(i)]))
///     .collect();
/// let mut protocol = StateProtocol::new(&hfc, services, &delays, ProtocolConfig::default());
/// let report = protocol.run_to_quiescence();
/// assert!(report.converged);
/// ```
pub struct StateProtocol {
    simulator: Simulator<ProxyActor, Box<dyn FnMut(NodeId, NodeId) -> SimTime>>,
    expected_sctp: Vec<SctP>,
    expected_sctc: SctC,
}

impl std::fmt::Debug for StateProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateProtocol")
            .field("proxies", &self.expected_sctp.len())
            .field("clusters", &self.expected_sctc.len())
            .finish_non_exhaustive()
    }
}

impl StateProtocol {
    /// Builds actors for every proxy in `hfc` with the given installed
    /// `services` (indexed by proxy), delivering messages with delays
    /// from `delays`.
    ///
    /// # Panics
    ///
    /// Panics if `services.len()` differs from the proxy count.
    pub fn new<D>(
        hfc: &HfcTopology,
        services: Vec<ServiceSet>,
        delays: &D,
        config: ProtocolConfig,
    ) -> Self
    where
        D: DelayModel + Clone + 'static,
    {
        assert_eq!(
            services.len(),
            hfc.proxy_count(),
            "one service set per proxy required"
        );
        let n = hfc.proxy_count();
        let mut actors = Vec::with_capacity(n);
        for (p, service_set) in services.iter().enumerate() {
            let id = ProxyId::new(p);
            let cluster = hfc.cluster_of(id);
            let peers: Vec<ProxyId> = hfc
                .members(cluster)
                .iter()
                .copied()
                .filter(|&m| m != id)
                .collect();
            let mut border_duties = Vec::new();
            for other in hfc.clusters() {
                if other == cluster {
                    continue;
                }
                let pair = hfc.border(cluster, other);
                if pair.local == id {
                    border_duties.push(pair.remote);
                }
            }
            actors.push(ProxyActor {
                id,
                cluster,
                services: service_set.clone(),
                peers,
                border_duties,
                config: config.clone(),
                local_rounds_left: config.rounds,
                aggregate_rounds_left: config.rounds,
                sctp: SctP::new(),
                sctc: SctC::new(),
                sent_local: 0,
                sent_aggregate: 0,
            });
        }

        // Expected converged state, for the convergence check.
        let mut expected_sctp = vec![SctP::new(); n];
        let mut expected_sctc = SctC::new();
        for c in hfc.clusters() {
            let mut cluster_table = SctP::new();
            for &m in hfc.members(c) {
                cluster_table.update(m, services[m.index()].clone());
            }
            expected_sctc.update(c, cluster_table.aggregate());
            for &m in hfc.members(c) {
                expected_sctp[m.index()] = cluster_table.clone();
            }
        }

        let delays = delays.clone();
        let delay_fn: Box<dyn FnMut(NodeId, NodeId) -> SimTime> = Box::new(move |a, b| {
            SimTime::from_ms(delays.delay(ProxyId::new(a.index()), ProxyId::new(b.index())))
        });

        StateProtocol {
            simulator: Simulator::new(actors, delay_fn),
            expected_sctp,
            expected_sctc,
        }
    }

    /// Injects reproducible random message loss: every protocol
    /// message is dropped independently with probability `probability`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= probability <= 1.0`.
    pub fn inject_loss(&mut self, probability: f64, seed: u64) {
        assert!(
            (0.0..=1.0).contains(&probability),
            "loss probability must be in [0, 1], got {probability}"
        );
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        self.simulator
            .set_loss(move |_, _| rng.gen_bool(probability));
    }

    /// Runs until all scheduled protocol rounds complete and the event
    /// queue drains.
    pub fn run_to_quiescence(&mut self) -> StateReport {
        self.run_until(SimTime::from_ms(f64::MAX / 1e6))
    }

    /// Runs until `deadline` (or quiescence, whichever comes first).
    pub fn run_until(&mut self, deadline: SimTime) -> StateReport {
        let stats = self.simulator.run_until_quiescent(deadline);
        let actors = self.simulator.actors();
        StateReport {
            converged: self.converged(),
            ended_at: stats.ended_at,
            messages_delivered: stats.messages_delivered,
            local_messages: actors.iter().map(|a| a.sent_local).sum(),
            aggregate_messages: actors.iter().map(|a| a.sent_aggregate).sum(),
        }
    }

    /// Returns `true` if every proxy's tables match the expected
    /// converged state.
    pub fn converged(&self) -> bool {
        self.simulator.actors().iter().enumerate().all(|(p, a)| {
            a.sctp == self.expected_sctp[p]
                && self
                    .expected_sctc
                    .iter()
                    .all(|(c, s)| a.sctc.services_of(c) == Some(s))
        })
    }

    /// Read access to the converged actors (their tables feed the
    /// routing layer).
    pub fn actors(&self) -> &[ProxyActor] {
        self.simulator.actors()
    }

    /// The tables of one proxy.
    ///
    /// # Panics
    ///
    /// Panics if `proxy` is out of range.
    pub fn tables_of(&self, proxy: ProxyId) -> (&SctP, &SctC) {
        let a = &self.simulator.actors()[proxy.index()];
        (&a.sctp, &a.sctc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use son_clustering::Clustering;
    use son_overlay::{DelayMatrix, ServiceId};

    /// 6 proxies, 3 clusters on a line (same fixture as the overlay
    /// crate's HFC tests).
    fn three_cluster_world() -> (HfcTopology, DelayMatrix, Vec<ServiceSet>) {
        let xs: [f64; 6] = [0.0, 1.0, 10.0, 11.0, 30.0, 31.0];
        let n = xs.len();
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                values[i * n + j] = (xs[i] - xs[j]).abs();
            }
        }
        let delays = DelayMatrix::from_values(n, values);
        let clustering = Clustering::from_labels(&[0, 0, 1, 1, 2, 2]);
        let hfc = HfcTopology::build(&clustering, &delays);
        // Proxy i carries service i, plus proxy 0 and 5 share service 9.
        let services: Vec<ServiceSet> = (0..n)
            .map(|i| {
                let mut s = ServiceSet::from_iter([ServiceId::new(i)]);
                if i == 0 || i == 5 {
                    s.insert(ServiceId::new(9));
                }
                s
            })
            .collect();
        (hfc, delays, services)
    }

    #[test]
    fn protocol_converges() {
        let (hfc, delays, services) = three_cluster_world();
        let mut protocol = StateProtocol::new(&hfc, services, &delays, ProtocolConfig::default());
        let report = protocol.run_to_quiescence();
        assert!(report.converged, "{report:?}");
        assert!(report.messages_delivered > 0);
        assert!(report.local_messages > 0);
        assert!(report.aggregate_messages > 0);
    }

    #[test]
    fn tables_reflect_cluster_structure() {
        let (hfc, delays, services) = three_cluster_world();
        let mut protocol = StateProtocol::new(&hfc, services, &delays, ProtocolConfig::default());
        protocol.run_to_quiescence();
        // Proxy 0 (cluster 0) knows proxies 0 and 1 in SCT_P...
        let (sctp, sctc) = protocol.tables_of(ProxyId::new(0));
        assert_eq!(sctp.len(), 2);
        assert!(sctp.services_of(ProxyId::new(1)).is_some());
        assert!(sctp.services_of(ProxyId::new(2)).is_none(), "other cluster");
        // ...and all three clusters in SCT_C.
        assert_eq!(sctc.len(), 3);
        // Service 9 lives in clusters 0 (proxy 0) and 2 (proxy 5).
        assert_eq!(
            sctc.clusters_with(ServiceId::new(9)),
            vec![ClusterId::new(0), ClusterId::new(2)]
        );
    }

    #[test]
    fn no_convergence_before_messages_arrive() {
        let (hfc, delays, services) = three_cluster_world();
        let mut protocol = StateProtocol::new(&hfc, services, &delays, ProtocolConfig::default());
        let report = protocol.run_until(SimTime::from_ms(0.5));
        assert!(
            !report.converged,
            "nothing can converge in half a millisecond"
        );
        let report = protocol.run_to_quiescence();
        assert!(report.converged);
    }

    #[test]
    fn single_cluster_needs_no_aggregate_messages() {
        let n = 4;
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                values[i * n + j] = if i == j { 0.0 } else { 1.0 };
            }
        }
        let delays = DelayMatrix::from_values(n, values);
        let clustering = Clustering::from_labels(&[0, 0, 0, 0]);
        let hfc = HfcTopology::build(&clustering, &delays);
        let services: Vec<ServiceSet> = (0..n)
            .map(|i| ServiceSet::from_iter([ServiceId::new(i)]))
            .collect();
        let mut protocol = StateProtocol::new(&hfc, services, &delays, ProtocolConfig::default());
        let report = protocol.run_to_quiescence();
        assert!(report.converged);
        assert_eq!(report.aggregate_messages, 0);
    }

    #[test]
    fn message_volume_scales_with_rounds() {
        let (hfc, delays, services) = three_cluster_world();
        let run = |rounds: usize| {
            let config = ProtocolConfig {
                rounds,
                ..ProtocolConfig::default()
            };
            let mut protocol = StateProtocol::new(&hfc, services.clone(), &delays, config);
            protocol.run_to_quiescence()
        };
        let one = run(1);
        let three = run(3);
        // Even a single round converges thanks to the event-driven
        // re-advertisement borders perform when their aggregate
        // changes; more rounds just cost more messages.
        assert!(one.converged);
        assert!(three.converged);
        assert!(three.local_messages > one.local_messages);
    }

    #[test]
    #[should_panic(expected = "one service set per proxy")]
    fn wrong_service_count_panics() {
        let (hfc, delays, _) = three_cluster_world();
        let _ = StateProtocol::new(&hfc, vec![], &delays, ProtocolConfig::default());
    }
}

#[cfg(test)]
mod loss_tests {
    use super::*;
    use son_clustering::Clustering;
    use son_overlay::{DelayMatrix, ServiceId};

    fn world() -> (HfcTopology, DelayMatrix, Vec<ServiceSet>) {
        let n = 12;
        let pos: Vec<f64> = (0..n)
            .map(|i| (i / 4) as f64 * 200.0 + (i % 4) as f64 * 3.0)
            .collect();
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                values[i * n + j] = (pos[i] - pos[j]).abs();
            }
        }
        let delays = DelayMatrix::from_values(n, values);
        let labels: Vec<usize> = (0..n).map(|i| i / 4).collect();
        let hfc = HfcTopology::build(&Clustering::from_labels(&labels), &delays);
        let services: Vec<ServiceSet> = (0..n)
            .map(|i| ServiceSet::from_iter([ServiceId::new(i)]))
            .collect();
        (hfc, delays, services)
    }

    #[test]
    fn protocol_survives_moderate_loss() {
        let (hfc, delays, services) = world();
        // Periodic retransmission is the protocol's loss defence: with
        // enough rounds, a 25% drop rate still converges.
        let config = ProtocolConfig {
            rounds: 8,
            ..ProtocolConfig::default()
        };
        let mut protocol = StateProtocol::new(&hfc, services, &delays, config);
        protocol.inject_loss(0.25, 7);
        let report = protocol.run_to_quiescence();
        assert!(report.converged, "{report:?}");
    }

    #[test]
    fn total_loss_prevents_convergence() {
        let (hfc, delays, services) = world();
        let mut protocol = StateProtocol::new(&hfc, services, &delays, ProtocolConfig::default());
        protocol.inject_loss(1.0, 1);
        let report = protocol.run_to_quiescence();
        assert!(!report.converged);
        assert_eq!(report.messages_delivered, 0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let (hfc, delays, services) = world();
        let mut protocol = StateProtocol::new(&hfc, services, &delays, ProtocolConfig::default());
        protocol.inject_loss(1.5, 0);
    }
}
