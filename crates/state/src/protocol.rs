//! The hierarchical state distribution protocol (paper Section 4),
//! executed on the deterministic discrete-event simulator.
//!
//! 1. **Local state**: every proxy periodically sends a local state
//!    message (its installed service names) to every proxy of its own
//!    cluster; receivers update their `SCT_P`.
//! 2. **Aggregate state**: every border proxy periodically aggregates
//!    its cluster's capabilities (union over its `SCT_P`) and sends an
//!    aggregate state message to the neighbor border proxies of other
//!    clusters. A border proxy receiving such a message updates its
//!    `SCT_C` and forwards it to the other proxies of its own cluster.
//!
//! That is [`DissemMode::Flooding`], the paper verbatim — O(m²)
//! messages per cluster per round. [`DissemMode::Tree`] replaces the
//! intra-cluster legs with batched table syncs along a per-cluster
//! broadcast tree ([`son_overlay::DissemForest`]) rooted at the
//! busiest border proxy, keeps the border-pair aggregate exchange
//! point-to-point, and falls back to flooding repair when a tree
//! parent goes silent. Same version guards, same anti-entropy refresh,
//! same ground-truth convergence check.

use crate::checker::{ConvergenceChecker, Staleness};
use crate::tables::{SctC, SctP};
use son_netsim::faults::FaultPlan;
use son_netsim::graph::NodeId;
use son_netsim::sim::{Actor, Ctx, Simulator};
use son_netsim::SimTime;
use son_overlay::{ClusterId, DelayModel, DissemForest, HfcTopology, ProxyId, ServiceSet};
use std::collections::BTreeMap;

/// How table rows travel *inside* a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DissemMode {
    /// Section 4 verbatim: every proxy floods its local state to every
    /// cluster peer, and borders re-flood every known remote aggregate
    /// — O(m²) messages per cluster per round. The baseline.
    #[default]
    Flooding,
    /// Batched relay along a per-cluster [`DissemForest`] tree rooted
    /// at the busiest border proxy: each proxy exchanges its whole
    /// table with its tree parent and children only (O(m) messages per
    /// cluster per round), borders exchange aggregates pairwise
    /// without intra-cluster re-flooding, and a proxy whose parent
    /// goes silent falls back to flooding its state until the parent
    /// returns. Needs anti-entropy refresh to converge — use
    /// [`ProtocolConfig::tree`].
    Tree,
}

/// Timing parameters of the protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolConfig {
    /// Period between local state broadcasts, in milliseconds.
    pub local_period_ms: f64,
    /// Period between aggregate state broadcasts, in milliseconds.
    pub aggregate_period_ms: f64,
    /// How many periods each proxy runs before going quiet. With
    /// static services two rounds reach convergence; the default keeps
    /// one round of slack.
    pub rounds: usize,
    /// Anti-entropy refresh period in milliseconds. When positive,
    /// every proxy keeps re-broadcasting its local state (and borders
    /// their aggregates) forever at this period, so any entry a lost
    /// message left stale is repaired by a later refresh. `0.0`
    /// disables it and preserves the legacy fixed-round quiescence.
    pub refresh_period_ms: f64,
    /// Intra-cluster dissemination: Section 4 flooding (default) or
    /// broadcast trees over the cluster structure.
    pub mode: DissemMode,
    /// Child-count bound for [`DissemMode::Tree`] broadcast trees.
    pub tree_fanout: usize,
    /// Tree mode: how long a parent may stay silent (no sync received)
    /// before its children declare it gone and fall back to flooding
    /// repair. Should cover a few refresh periods so jitter and a
    /// quick crash/restart don't trigger it.
    pub repair_after_ms: f64,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            local_period_ms: 10.0,
            aggregate_period_ms: 15.0,
            rounds: 3,
            refresh_period_ms: 0.0,
            mode: DissemMode::Flooding,
            tree_fanout: son_overlay::DEFAULT_TREE_FANOUT,
            repair_after_ms: 120.0,
        }
    }
}

impl ProtocolConfig {
    /// A fault-tolerant preset: anti-entropy refresh on, so the
    /// protocol converges through message loss, partitions that heal,
    /// and crash/restart cycles. Pair with
    /// [`StateProtocol::run_until_converged`] — with refresh on, the
    /// event queue never drains.
    pub fn resilient() -> Self {
        ProtocolConfig {
            refresh_period_ms: 40.0,
            ..ProtocolConfig::default()
        }
    }

    /// The resilient preset with tree dissemination on: state travels
    /// along per-cluster broadcast trees instead of being flooded.
    /// Refresh is mandatory here — tree repair leans on it, and a
    /// deep tree needs periodic rounds to push rows across its hops.
    pub fn tree() -> Self {
        ProtocolConfig {
            mode: DissemMode::Tree,
            ..ProtocolConfig::resilient()
        }
    }
}

/// Messages exchanged by the protocol. Every message carries the
/// simulated time (in microseconds) at which its content was
/// *produced*; receivers keep per-entry version maps and ignore
/// messages older than what they already hold, so duplicated or
/// reordered deliveries can never roll a table backwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateMsg {
    /// A proxy's own service names, flooded within its cluster.
    Local {
        /// Installed services of the sender.
        services: ServiceSet,
        /// Production time of this snapshot, in simulated µs.
        version: u64,
    },
    /// A cluster's aggregate service set, exchanged between border
    /// proxies and forwarded within clusters.
    Aggregate {
        /// The cluster being described.
        cluster: ClusterId,
        /// Union of the cluster's service sets.
        services: ServiceSet,
        /// Production time at the originating border, in simulated µs.
        /// Intra-cluster forwards keep the original version.
        version: u64,
    },
    /// Tree mode: a batch of table rows relayed along a tree edge —
    /// periodic full-table syncs between parent and children, and
    /// event-driven deltas cascading fresh rows through the tree.
    /// Every row keeps the version its origin stamped.
    TreeSync {
        /// `SCT_P` rows: (member, services, version).
        sctp: Vec<(ProxyId, ServiceSet, u64)>,
        /// `SCT_C` rows: (cluster, services, version).
        sctc: Vec<(ClusterId, ServiceSet, u64)>,
    },
    /// Tree mode's flooding fallback: a proxy whose parent went silent
    /// broadcasts everything it knows to every cluster peer. Receivers
    /// merge it like a [`TreeSync`] *and* reply with their own full
    /// tables, so the orphan both teaches and relearns.
    Repair {
        /// `SCT_P` rows: (member, services, version).
        sctp: Vec<(ProxyId, ServiceSet, u64)>,
        /// `SCT_C` rows: (cluster, services, version).
        sctc: Vec<(ClusterId, ServiceSet, u64)>,
    },
}

const LOCAL_TIMER: u64 = 1;
const AGGREGATE_TIMER: u64 = 2;
const REFRESH_TIMER: u64 = 3;

/// Versioned `SCT_P` rows as they travel in tree-mode payloads.
type SctPRows = Vec<(ProxyId, ServiceSet, u64)>;
/// Versioned `SCT_C` rows as they travel in tree-mode payloads.
type SctCRows = Vec<(ClusterId, ServiceSet, u64)>;

/// One proxy's protocol state machine.
#[derive(Debug)]
pub struct ProxyActor {
    id: ProxyId,
    cluster: ClusterId,
    services: ServiceSet,
    /// Other members of the local cluster.
    peers: Vec<ProxyId>,
    /// Remote border proxies this proxy (as a border) must advertise
    /// to: one per neighboring cluster where this proxy is the border.
    border_duties: Vec<ProxyId>,
    /// Tree-mode parent in the cluster's broadcast tree; `None` for
    /// the cluster root (and for every proxy in flooding mode).
    parent: Option<ProxyId>,
    /// Tree-mode children this proxy relays to.
    children: Vec<ProxyId>,
    /// Simulated µs at which the parent was last heard from (any
    /// `TreeSync` or `Repair` it sent). Reset on (re)boot.
    parent_heard_at: u64,
    config: ProtocolConfig,
    local_rounds_left: usize,
    aggregate_rounds_left: usize,
    /// Full state of the local cluster.
    pub sctp: SctP,
    /// Aggregate state of every cluster.
    pub sctc: SctC,
    /// Newest version (simulated µs) applied per `SCT_P` row.
    sctp_versions: BTreeMap<ProxyId, u64>,
    /// Newest version applied per `SCT_C` row.
    sctc_versions: BTreeMap<ClusterId, u64>,
    /// Local state messages sent. Survives restarts — the counters
    /// account for total network overhead, not per-incarnation work.
    pub sent_local: u64,
    /// Aggregate state messages sent (including intra-cluster
    /// forwards).
    pub sent_aggregate: u64,
    /// Deliveries ignored because a fresher version of the same row was
    /// already applied — the version guard firing on duplicated or
    /// reordered messages. Survives restarts like the sent counters.
    pub ignored_stale: u64,
    /// Anti-entropy refresh rounds executed (one per `REFRESH_TIMER`
    /// firing). Survives restarts.
    pub refresh_rounds: u64,
    /// Tree-mode messages sent (syncs, cascades, repairs and their
    /// replies). Survives restarts like the other sent counters.
    pub sent_tree: u64,
    /// Messages flooding would have sent at the same decision points
    /// but the tree did not — the measured savings.
    pub suppressed: u64,
    /// Repair rounds entered because the tree parent went silent.
    pub repairs: u64,
}

impl ProxyActor {
    fn broadcast_local(&mut self, ctx: &mut Ctx<'_, StateMsg>) {
        let version = ctx.now().as_micros();
        for &peer in &self.peers {
            ctx.send(
                NodeId::new(peer.index()),
                StateMsg::Local {
                    services: self.services.clone(),
                    version,
                },
            );
            self.sent_local += 1;
        }
    }

    fn broadcast_aggregate(&mut self, ctx: &mut Ctx<'_, StateMsg>) {
        let aggregate = self.sctp.aggregate();
        let version = ctx.now().as_micros();
        self.sctc.update(self.cluster, aggregate.clone());
        self.sctc_versions.insert(self.cluster, version);
        for &remote in &self.border_duties {
            ctx.send(
                NodeId::new(remote.index()),
                StateMsg::Aggregate {
                    cluster: self.cluster,
                    services: aggregate.clone(),
                    version,
                },
            );
            self.sent_aggregate += 1;
        }
    }

    /// Re-forwards every known remote aggregate to the local cluster —
    /// the periodic leg of Section 4 rule 2. Without this, the final
    /// update of a table could ride a single (droppable) message once
    /// the advertisement rounds run out.
    fn reforward_known_aggregates(&mut self, ctx: &mut Ctx<'_, StateMsg>) {
        let entries: Vec<(ClusterId, ServiceSet, u64)> = self
            .sctc
            .iter()
            .filter(|(c, _)| *c != self.cluster)
            .map(|(c, s)| {
                (
                    c,
                    s.clone(),
                    self.sctc_versions.get(&c).copied().unwrap_or(0),
                )
            })
            .collect();
        for (cluster, services, version) in entries {
            for &peer in &self.peers {
                ctx.send(
                    NodeId::new(peer.index()),
                    StateMsg::Aggregate {
                        cluster,
                        services: services.clone(),
                        version,
                    },
                );
                self.sent_aggregate += 1;
            }
        }
    }

    fn tree_mode(&self) -> bool {
        self.config.mode == DissemMode::Tree
    }

    /// Everything this proxy knows, with the versions it holds, ready
    /// to ride a [`StateMsg::TreeSync`] or [`StateMsg::Repair`].
    fn full_payload(&self) -> (SctPRows, SctCRows) {
        let sctp = self
            .sctp
            .iter()
            .map(|(p, s)| {
                (
                    p,
                    s.clone(),
                    self.sctp_versions.get(&p).copied().unwrap_or(0),
                )
            })
            .collect();
        let sctc = self
            .sctc
            .iter()
            .map(|(c, s)| {
                (
                    c,
                    s.clone(),
                    self.sctc_versions.get(&c).copied().unwrap_or(0),
                )
            })
            .collect();
        (sctp, sctc)
    }

    /// One periodic tree round: full-table sync with the parent and
    /// every child. Flooding would have sent one message per cluster
    /// peer here — the difference is the tree's saving.
    fn tree_sync_round(&mut self, ctx: &mut Ctx<'_, StateMsg>) {
        let (sctp, sctc) = self.full_payload();
        let mut sent = 0u64;
        for &n in self.parent.iter().chain(self.children.iter()) {
            ctx.send(
                NodeId::new(n.index()),
                StateMsg::TreeSync {
                    sctp: sctp.clone(),
                    sctc: sctc.clone(),
                },
            );
            self.sent_tree += 1;
            sent += 1;
        }
        self.suppressed += (self.peers.len() as u64).saturating_sub(sent);
    }

    /// Relays fresh rows to every tree neighbor except the one they
    /// came from — the event-driven wave that lets a deep tree
    /// converge without waiting one refresh period per hop.
    fn cascade(
        &mut self,
        ctx: &mut Ctx<'_, StateMsg>,
        except: Option<ProxyId>,
        sctp: SctPRows,
        sctc: SctCRows,
    ) {
        if sctp.is_empty() && sctc.is_empty() {
            return;
        }
        for &n in self.parent.iter().chain(self.children.iter()) {
            if Some(n) == except {
                continue;
            }
            ctx.send(
                NodeId::new(n.index()),
                StateMsg::TreeSync {
                    sctp: sctp.clone(),
                    sctc: sctc.clone(),
                },
            );
            self.sent_tree += 1;
        }
    }

    /// Applies a batch of relayed rows under the same version guards
    /// as the flooding handlers, returning the rows that actually
    /// changed a table (fresh information worth cascading) and whether
    /// the own-cluster aggregate moved.
    fn merge_rows(
        &mut self,
        ctx: &mut Ctx<'_, StateMsg>,
        sctp: SctPRows,
        sctc: SctCRows,
    ) -> (SctPRows, SctCRows, bool) {
        let mut fresh_p = SctPRows::new();
        for (proxy, services, version) in sctp {
            if proxy == self.id {
                continue;
            }
            if version < self.sctp_versions.get(&proxy).copied().unwrap_or(0) {
                self.ignored_stale += 1;
                continue;
            }
            self.sctp_versions.insert(proxy, version);
            if self.sctp.update(proxy, services.clone()) {
                fresh_p.push((proxy, services, version));
            }
        }
        // The local cluster's aggregate stays derived from SCT_P, like
        // the flooding handler does on every Local delivery.
        let mut aggregate_changed = false;
        if !fresh_p.is_empty() && self.sctc.update(self.cluster, self.sctp.aggregate()) {
            self.sctc_versions
                .insert(self.cluster, ctx.now().as_micros());
            aggregate_changed = true;
        }
        let mut fresh_c = SctCRows::new();
        for (cluster, services, version) in sctc {
            if version < self.sctc_versions.get(&cluster).copied().unwrap_or(0) {
                self.ignored_stale += 1;
                continue;
            }
            if self.sctc.merge_update(cluster, &services) {
                aggregate_changed |= cluster == self.cluster;
                fresh_c.push((cluster, services, version));
            }
            self.sctc_versions.insert(cluster, version);
        }
        (fresh_p, fresh_c, aggregate_changed)
    }

    /// Initial-knowledge seeding plus timer arming, shared by cold
    /// start and post-crash restart.
    fn boot(&mut self, ctx: &mut Ctx<'_, StateMsg>) {
        let now = ctx.now().as_micros();
        // A proxy always knows itself.
        self.sctp.update(self.id, self.services.clone());
        self.sctp_versions.insert(self.id, now);
        self.sctc.update(self.cluster, self.services.clone());
        self.parent_heard_at = now;
        if self.local_rounds_left > 0 {
            self.local_rounds_left -= 1;
            if self.tree_mode() {
                self.tree_sync_round(ctx);
            } else {
                self.broadcast_local(ctx);
            }
            ctx.set_timer(SimTime::from_ms(self.config.local_period_ms), LOCAL_TIMER);
        }
        if !self.border_duties.is_empty() && self.aggregate_rounds_left > 0 {
            self.aggregate_rounds_left -= 1;
            self.broadcast_aggregate(ctx);
            ctx.set_timer(
                SimTime::from_ms(self.config.aggregate_period_ms),
                AGGREGATE_TIMER,
            );
        }
        if self.config.refresh_period_ms > 0.0 {
            ctx.set_timer(
                SimTime::from_ms(self.config.refresh_period_ms),
                REFRESH_TIMER,
            );
        }
    }
}

impl Actor for ProxyActor {
    type Msg = StateMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, StateMsg>) {
        self.boot(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, StateMsg>, from: NodeId, msg: StateMsg) {
        match msg {
            StateMsg::Local { services, version } => {
                let sender = ProxyId::new(from.index());
                // A duplicated or reordered delivery older than what we
                // hold must not roll the row back.
                if version < self.sctp_versions.get(&sender).copied().unwrap_or(0) {
                    self.ignored_stale += 1;
                    return;
                }
                self.sctp_versions.insert(sender, version);
                let changed = self.sctp.update(sender, services);
                // The local cluster's aggregate is derivable from SCT_P
                // without any extra messages — keep it fresh.
                let aggregate_changed = self.sctc.update(self.cluster, self.sctp.aggregate());
                if aggregate_changed {
                    self.sctc_versions
                        .insert(self.cluster, ctx.now().as_micros());
                }
                // A border whose cluster aggregate just changed
                // re-advertises immediately rather than waiting for the
                // next period; otherwise slow local-state deliveries
                // could outlive the advertising rounds.
                if changed && aggregate_changed && !self.border_duties.is_empty() {
                    self.broadcast_aggregate(ctx);
                }
            }
            StateMsg::Aggregate {
                cluster,
                services,
                version,
            } => {
                // Stale aggregate: a fresher snapshot of this cluster
                // was already applied, so neither merge nor forward.
                if version < self.sctc_versions.get(&cluster).copied().unwrap_or(0) {
                    self.ignored_stale += 1;
                    return;
                }
                // Merge (set union): services are static, so aggregates
                // are monotone and merging makes delivery order and
                // duplicate retransmissions harmless.
                let changed = self.sctc.merge_update(cluster, &services);
                self.sctc_versions.insert(cluster, version);
                let from_outside = !self.peers.contains(&ProxyId::new(from.index()))
                    && ProxyId::new(from.index()) != self.id;
                if from_outside {
                    if self.tree_mode() {
                        // Subscription-style: the border pair exchange
                        // already delivered the row; inward it rides
                        // the tree, and only when it said something
                        // new. Periodic tree refresh repairs losses.
                        if changed {
                            let row = vec![(cluster, services, version)];
                            self.cascade(ctx, None, SctPRows::new(), row);
                        } else {
                            self.suppressed += self.peers.len() as u64;
                        }
                    } else {
                        // A border proxy that received the message from
                        // outside its own cluster forwards it inward,
                        // unconditionally (Section 4 rule 2) — the
                        // repetition is what lets the protocol ride out
                        // message loss.
                        for &peer in &self.peers {
                            ctx.send(
                                NodeId::new(peer.index()),
                                StateMsg::Aggregate {
                                    cluster,
                                    services: services.clone(),
                                    version,
                                },
                            );
                            self.sent_aggregate += 1;
                        }
                    }
                }
            }
            StateMsg::TreeSync { sctp, sctc } => {
                let sender = ProxyId::new(from.index());
                if Some(sender) == self.parent {
                    self.parent_heard_at = ctx.now().as_micros();
                }
                let (fresh_p, fresh_c, aggregate_changed) = self.merge_rows(ctx, sctp, sctc);
                // Same event-driven leg as flooding: a border whose
                // cluster aggregate just changed re-advertises to its
                // remote pairs immediately.
                if aggregate_changed && !self.border_duties.is_empty() {
                    self.broadcast_aggregate(ctx);
                }
                self.cascade(ctx, Some(sender), fresh_p, fresh_c);
            }
            StateMsg::Repair { sctp, sctc } => {
                let sender = ProxyId::new(from.index());
                if Some(sender) == self.parent {
                    self.parent_heard_at = ctx.now().as_micros();
                }
                let (fresh_p, fresh_c, aggregate_changed) = self.merge_rows(ctx, sctp, sctc);
                if aggregate_changed && !self.border_duties.is_empty() {
                    self.broadcast_aggregate(ctx);
                }
                self.cascade(ctx, Some(sender), fresh_p, fresh_c);
                // The orphan's broadcast is also a plea: answer with
                // everything we know so it relearns what its dead
                // parent would have relayed.
                let (sctp, sctc) = self.full_payload();
                ctx.send(
                    NodeId::new(sender.index()),
                    StateMsg::TreeSync { sctp, sctc },
                );
                self.sent_tree += 1;
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, StateMsg>, token: u64) {
        match token {
            LOCAL_TIMER if self.local_rounds_left > 0 => {
                self.local_rounds_left -= 1;
                if self.tree_mode() {
                    self.tree_sync_round(ctx);
                } else {
                    self.broadcast_local(ctx);
                }
                ctx.set_timer(SimTime::from_ms(self.config.local_period_ms), LOCAL_TIMER);
            }
            AGGREGATE_TIMER if self.aggregate_rounds_left > 0 => {
                self.aggregate_rounds_left -= 1;
                self.broadcast_aggregate(ctx);
                if self.tree_mode() {
                    // No periodic re-flood of remote aggregates: the
                    // tree syncs carry them batched. Account for what
                    // flooding would have sent right here.
                    self.suppressed +=
                        self.sctc.len().saturating_sub(1) as u64 * self.peers.len() as u64;
                } else {
                    self.reforward_known_aggregates(ctx);
                }
                ctx.set_timer(
                    SimTime::from_ms(self.config.aggregate_period_ms),
                    AGGREGATE_TIMER,
                );
            }
            REFRESH_TIMER => {
                // Anti-entropy: unconditionally re-send everything we
                // know, forever. Any row a lost message left stale is
                // repaired at most one refresh period later — along
                // tree edges in tree mode, by re-flooding otherwise.
                self.refresh_rounds += 1;
                if self.tree_mode() {
                    let silent = ctx.now().as_micros().saturating_sub(self.parent_heard_at);
                    if self.parent.is_some()
                        && silent > (self.config.repair_after_ms * 1_000.0) as u64
                    {
                        // Parent gone: fall back to Section 4 flooding
                        // until it answers again. Peers reply with
                        // their tables, so the orphaned subtree keeps
                        // both teaching and learning.
                        self.repairs += 1;
                        son_telemetry::flight::flight().record(
                            son_telemetry::flight::FlightEvent::new(
                                son_telemetry::flight::FlightKind::TreeRepair,
                            )
                            .tick(ctx.now().as_micros())
                            .proxy(self.id.index() as u32),
                        );
                        let (sctp, sctc) = self.full_payload();
                        for &peer in &self.peers {
                            ctx.send(
                                NodeId::new(peer.index()),
                                StateMsg::Repair {
                                    sctp: sctp.clone(),
                                    sctc: sctc.clone(),
                                },
                            );
                            self.sent_tree += 1;
                        }
                    } else {
                        self.tree_sync_round(ctx);
                    }
                    if !self.border_duties.is_empty() {
                        self.broadcast_aggregate(ctx);
                    }
                    self.suppressed +=
                        self.sctc.len().saturating_sub(1) as u64 * self.peers.len() as u64;
                } else {
                    self.broadcast_local(ctx);
                    if !self.border_duties.is_empty() {
                        self.broadcast_aggregate(ctx);
                    }
                    self.reforward_known_aggregates(ctx);
                }
                ctx.set_timer(
                    SimTime::from_ms(self.config.refresh_period_ms),
                    REFRESH_TIMER,
                );
            }
            _ => {}
        }
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_, StateMsg>) {
        // Volatile state dies with the crash: tables, versions and the
        // round budget reset; the message counters survive because they
        // account for network overhead, not per-incarnation work.
        self.sctp = SctP::new();
        self.sctc = SctC::new();
        self.sctp_versions.clear();
        self.sctc_versions.clear();
        self.local_rounds_left = self.config.rounds;
        self.aggregate_rounds_left = self.config.rounds;
        self.boot(ctx);
    }
}

/// Outcome of a protocol run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateReport {
    /// `true` when every **live** proxy reached full local state and
    /// correct aggregates for all clusters, re-checked against the
    /// ground truth at the end of the run — never inferred from round
    /// counts.
    pub converged: bool,
    /// Stale table rows (missing, spurious or wrong-valued) summed
    /// over all live proxies at the end of the run. Zero iff
    /// `converged`.
    pub stale_entries: usize,
    /// Proxies down when the run ended.
    pub crashed_proxies: usize,
    /// Simulated time when the run went quiescent (or hit the
    /// deadline).
    pub ended_at: SimTime,
    /// Total messages delivered.
    pub messages_delivered: u64,
    /// Messages dropped by injected loss, partitions, or crashed
    /// receivers.
    pub messages_dropped: u64,
    /// Local state messages sent.
    pub local_messages: u64,
    /// Aggregate state messages sent (border exchange + forwards).
    pub aggregate_messages: u64,
    /// Extra deliveries created by injected duplication.
    pub messages_duplicated: u64,
    /// Deliveries ignored by receivers because a fresher version of the
    /// same table row was already applied.
    pub stale_ignored: u64,
    /// Anti-entropy refresh rounds executed across all proxies.
    pub refresh_rounds: u64,
    /// Tree-mode messages sent (syncs, cascades, repairs and replies).
    /// Zero in flooding mode.
    pub tree_messages: u64,
    /// Messages flooding would have sent that tree mode did not.
    pub tree_suppressed: u64,
    /// Tree-mode repair rounds entered (parent silence fallbacks).
    pub tree_repairs: u64,
    /// FNV-1a digest of the full event trace — identical seeds and
    /// fault plans reproduce identical hashes.
    pub trace_hash: u64,
}

impl StateReport {
    /// Everything the protocol put on the wire: local + aggregate +
    /// tree messages. The number the flooding-vs-tree comparison uses.
    pub fn messages_sent(&self) -> u64 {
        self.local_messages + self.aggregate_messages + self.tree_messages
    }
}

/// Drives the protocol for a whole overlay.
///
/// # Example
///
/// ```
/// use son_clustering::Clustering;
/// use son_overlay::{DelayMatrix, HfcTopology, ServiceId, ServiceSet};
/// use son_state::{ProtocolConfig, StateProtocol};
///
/// let clustering = Clustering::from_labels(&[0, 0, 1, 1]);
/// let delays = DelayMatrix::from_values(4, vec![
///     0.0, 1.0, 4.0, 9.0,
///     1.0, 0.0, 6.0, 9.0,
///     4.0, 6.0, 0.0, 1.0,
///     9.0, 9.0, 1.0, 0.0,
/// ]);
/// let hfc = HfcTopology::build(&clustering, &delays);
/// let services: Vec<ServiceSet> = (0..4)
///     .map(|i| ServiceSet::from_iter([ServiceId::new(i)]))
///     .collect();
/// let mut protocol = StateProtocol::new(&hfc, services, &delays, ProtocolConfig::default());
/// let report = protocol.run_to_quiescence();
/// assert!(report.converged);
/// ```
pub struct StateProtocol {
    simulator: Simulator<ProxyActor, Box<dyn FnMut(NodeId, NodeId) -> SimTime>>,
    checker: ConvergenceChecker,
    config: ProtocolConfig,
    /// The broadcast trees rows travel along in [`DissemMode::Tree`];
    /// `None` in flooding mode.
    forest: Option<DissemForest>,
    /// Counter values already folded into the telemetry registry.
    /// Simulator and actor counters are cumulative over the protocol's
    /// lifetime while registry counters only grow, so each report folds
    /// the delta since the previous one.
    folded: FoldedCounters,
}

/// Baseline for delta-folding cumulative protocol counters into the
/// global telemetry registry (see [`StateProtocol::report`]).
#[derive(Debug, Clone, Copy, Default)]
struct FoldedCounters {
    delivered: u64,
    dropped: u64,
    duplicated: u64,
    local: u64,
    aggregate: u64,
    stale: u64,
    refresh: u64,
    tree: u64,
    suppressed: u64,
    repairs: u64,
}

impl std::fmt::Debug for StateProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateProtocol")
            .field("proxies", &self.simulator.actors().len())
            .finish_non_exhaustive()
    }
}

impl StateProtocol {
    /// Builds actors for every proxy in `hfc` with the given installed
    /// `services` (indexed by proxy), delivering messages with delays
    /// from `delays`.
    ///
    /// # Panics
    ///
    /// Panics if `services.len()` differs from the proxy count.
    pub fn new<D>(
        hfc: &HfcTopology,
        services: Vec<ServiceSet>,
        delays: &D,
        config: ProtocolConfig,
    ) -> Self
    where
        D: DelayModel + Clone + 'static,
    {
        assert_eq!(
            services.len(),
            hfc.proxy_count(),
            "one service set per proxy required"
        );
        let n = hfc.proxy_count();
        let forest = (config.mode == DissemMode::Tree)
            .then(|| DissemForest::build(hfc, delays, config.tree_fanout));
        let mut actors = Vec::with_capacity(n);
        for (p, service_set) in services.iter().enumerate() {
            let id = ProxyId::new(p);
            let cluster = hfc.cluster_of(id);
            let peers: Vec<ProxyId> = hfc
                .members(cluster)
                .iter()
                .copied()
                .filter(|&m| m != id)
                .collect();
            let mut border_duties = Vec::new();
            for other in hfc.clusters() {
                if other == cluster {
                    continue;
                }
                let pair = hfc.border(cluster, other);
                if pair.local == id {
                    border_duties.push(pair.remote);
                }
            }
            let (parent, children) = forest.as_ref().map_or((None, Vec::new()), |f| {
                (f.parent_of(id), f.children_of(id).to_vec())
            });
            actors.push(ProxyActor {
                id,
                cluster,
                services: service_set.clone(),
                peers,
                border_duties,
                parent,
                children,
                parent_heard_at: 0,
                config: config.clone(),
                local_rounds_left: config.rounds,
                aggregate_rounds_left: config.rounds,
                sctp: SctP::new(),
                sctc: SctC::new(),
                sctp_versions: BTreeMap::new(),
                sctc_versions: BTreeMap::new(),
                sent_local: 0,
                sent_aggregate: 0,
                ignored_stale: 0,
                refresh_rounds: 0,
                sent_tree: 0,
                suppressed: 0,
                repairs: 0,
            });
        }

        let checker = ConvergenceChecker::new(hfc, &services);

        let delays = delays.clone();
        let delay_fn: Box<dyn FnMut(NodeId, NodeId) -> SimTime> = Box::new(move |a, b| {
            SimTime::from_ms(delays.delay(ProxyId::new(a.index()), ProxyId::new(b.index())))
        });

        StateProtocol {
            simulator: Simulator::new(actors, delay_fn),
            checker,
            config,
            forest,
            folded: FoldedCounters::default(),
        }
    }

    /// The dissemination trees of a [`DissemMode::Tree`] run; `None`
    /// in flooding mode.
    pub fn forest(&self) -> Option<&DissemForest> {
        self.forest.as_ref()
    }

    /// Injects reproducible random message loss: every protocol
    /// message is dropped independently with probability `probability`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= probability <= 1.0`.
    pub fn inject_loss(&mut self, probability: f64, seed: u64) {
        assert!(
            (0.0..=1.0).contains(&probability),
            "loss probability must be in [0, 1], got {probability}"
        );
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        self.simulator
            .set_loss(move |_, _| rng.gen_bool(probability));
    }

    /// Installs a fault plan (seeded loss/duplication/jitter,
    /// partitions, crash/restart events) on the underlying simulator.
    /// Install before the first run call.
    ///
    /// # Panics
    ///
    /// Panics if the plan names a node the overlay doesn't have, or if
    /// a node crashes more than once.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.simulator.install_faults(plan);
    }

    /// Runs until all scheduled protocol rounds complete and the event
    /// queue drains.
    ///
    /// With anti-entropy refresh enabled the queue never drains — use
    /// [`run_until_converged`](Self::run_until_converged) instead.
    pub fn run_to_quiescence(&mut self) -> StateReport {
        self.run_until(SimTime::from_ms(f64::MAX / 1e6))
    }

    /// Runs until `deadline` (or quiescence, whichever comes first).
    pub fn run_until(&mut self, deadline: SimTime) -> StateReport {
        let stats = self.simulator.run_until_quiescent(deadline);
        self.report(stats)
    }

    /// Runs in slices until every live proxy's tables match the ground
    /// truth, the queue drains, or `deadline` passes — whichever comes
    /// first. Convergence is not declared before the fault plan's
    /// [horizon](FaultPlan::horizon): a scheduled crash or partition
    /// can still perturb tables that currently look converged.
    pub fn run_until_converged(&mut self, deadline: SimTime) -> StateReport {
        let horizon = self
            .simulator
            .fault_plan()
            .map_or(SimTime::ZERO, FaultPlan::horizon);
        let slice = SimTime::from_ms(
            self.config
                .local_period_ms
                .max(self.config.aggregate_period_ms)
                .max(self.config.refresh_period_ms)
                .max(1.0),
        );
        let mut target = slice;
        loop {
            let bound = target.min(deadline);
            let stats = self.simulator.run_until_quiescent(bound);
            let settled = !self.simulator.has_pending();
            if self.converged() && (self.simulator.now() >= horizon || settled) {
                return self.report(stats);
            }
            if settled || bound >= deadline {
                return self.report(stats);
            }
            target += slice;
        }
    }

    fn report(&mut self, stats: son_netsim::SimStats) -> StateReport {
        let staleness = self.staleness();
        let actors = self.simulator.actors();
        let report = StateReport {
            converged: staleness.is_converged(),
            stale_entries: staleness.total(),
            crashed_proxies: self.simulator.crashed_nodes().len(),
            ended_at: stats.ended_at,
            messages_delivered: stats.messages_delivered,
            messages_dropped: stats.messages_dropped,
            local_messages: actors.iter().map(|a| a.sent_local).sum(),
            aggregate_messages: actors.iter().map(|a| a.sent_aggregate).sum(),
            messages_duplicated: stats.messages_duplicated,
            stale_ignored: actors.iter().map(|a| a.ignored_stale).sum(),
            refresh_rounds: actors.iter().map(|a| a.refresh_rounds).sum(),
            tree_messages: actors.iter().map(|a| a.sent_tree).sum(),
            tree_suppressed: actors.iter().map(|a| a.suppressed).sum(),
            tree_repairs: actors.iter().map(|a| a.repairs).sum(),
            trace_hash: stats.trace_hash,
        };
        self.fold_into_registry(&report);
        report
    }

    /// Folds the counter deltas since the previous report into the
    /// global telemetry registry, and updates the run-level gauges.
    /// The baseline always advances so a later `enabled()` flip does not
    /// replay history; registry writes happen only while telemetry is
    /// on.
    fn fold_into_registry(&mut self, report: &StateReport) {
        let prev = self.folded;
        self.folded = FoldedCounters {
            delivered: report.messages_delivered,
            dropped: report.messages_dropped,
            duplicated: report.messages_duplicated,
            local: report.local_messages,
            aggregate: report.aggregate_messages,
            stale: report.stale_ignored,
            refresh: report.refresh_rounds,
            tree: report.tree_messages,
            suppressed: report.tree_suppressed,
            repairs: report.tree_repairs,
        };
        if !son_telemetry::enabled() {
            return;
        }
        let registry = son_telemetry::global();
        for (name, now, before) in [
            (
                "state.messages_delivered",
                report.messages_delivered,
                prev.delivered,
            ),
            (
                "state.messages_dropped",
                report.messages_dropped,
                prev.dropped,
            ),
            (
                "state.messages_duplicated",
                report.messages_duplicated,
                prev.duplicated,
            ),
            ("state.local_sent", report.local_messages, prev.local),
            (
                "state.aggregate_sent",
                report.aggregate_messages,
                prev.aggregate,
            ),
            ("state.stale_ignored", report.stale_ignored, prev.stale),
            ("state.refresh_rounds", report.refresh_rounds, prev.refresh),
            ("state.tree.sent", report.tree_messages, prev.tree),
            (
                "state.tree.suppressed",
                report.tree_suppressed,
                prev.suppressed,
            ),
            ("state.tree.repairs", report.tree_repairs, prev.repairs),
        ] {
            registry.counter(name).add(now.saturating_sub(before));
        }
        if let Some(forest) = &self.forest {
            registry
                .gauge("state.tree.depth")
                .set(forest.max_depth() as f64);
        }
        registry
            .gauge("state.convergence_ms")
            .set(report.ended_at.as_micros() as f64 / 1e3);
        registry
            .gauge("state.stale_entries")
            .set(report.stale_entries as f64);
        registry
            .gauge("state.converged")
            .set(if report.converged { 1.0 } else { 0.0 });
        registry
            .gauge("state.crashed_proxies")
            .set(report.crashed_proxies as f64);
    }

    /// Compares every live proxy's tables against the ground truth.
    /// Crashed proxies are skipped; rows *about* them held by live
    /// proxies must still be correct (installed services are static).
    pub fn staleness(&self) -> Staleness {
        self.checker.staleness(
            self.simulator
                .actors()
                .iter()
                .enumerate()
                .filter(|(p, _)| !self.simulator.is_crashed(NodeId::new(*p)))
                .map(|(p, a)| (ProxyId::new(p), &a.sctp, &a.sctc)),
        )
    }

    /// Returns `true` if every live proxy's tables match the expected
    /// converged state.
    pub fn converged(&self) -> bool {
        self.staleness().is_converged()
    }

    /// Per-proxy health as the serving layer should see it right now:
    ///
    /// * **`Down`** — the proxy is crashed in the fault simulation;
    /// * **`Draining`** — alive, but its own tables have drifted from
    ///   the converged state (it missed refreshes, so routing decisions
    ///   it participates in may be stale — take no *new* sessions);
    /// * **`Up`** — alive with converged tables.
    ///
    /// Feed the result into an engine snapshot via
    /// [`StatusMap`](son_overlay::StatusMap) builders; capacities and
    /// utilization are the serving layer's business, not the state
    /// protocol's.
    pub fn health_view(&self) -> son_overlay::StatusMap {
        let healths: Vec<son_overlay::Health> = self
            .simulator
            .actors()
            .iter()
            .enumerate()
            .map(|(p, a)| {
                if self.simulator.is_crashed(NodeId::new(p)) {
                    son_overlay::Health::Down
                } else {
                    let own = self.checker.staleness(std::iter::once((
                        ProxyId::new(p),
                        &a.sctp,
                        &a.sctc,
                    )));
                    if own.total() > 0 {
                        son_overlay::Health::Draining
                    } else {
                        son_overlay::Health::Up
                    }
                }
            })
            .collect();
        son_overlay::StatusMap::from_health(&healths)
    }

    /// Read access to the converged actors (their tables feed the
    /// routing layer).
    pub fn actors(&self) -> &[ProxyActor] {
        self.simulator.actors()
    }

    /// The tables of one proxy.
    ///
    /// # Panics
    ///
    /// Panics if `proxy` is out of range.
    pub fn tables_of(&self, proxy: ProxyId) -> (&SctP, &SctC) {
        let a = &self.simulator.actors()[proxy.index()];
        (&a.sctp, &a.sctc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use son_clustering::Clustering;
    use son_overlay::{DelayMatrix, ServiceId};

    /// 6 proxies, 3 clusters on a line (same fixture as the overlay
    /// crate's HFC tests).
    fn three_cluster_world() -> (HfcTopology, DelayMatrix, Vec<ServiceSet>) {
        let xs: [f64; 6] = [0.0, 1.0, 10.0, 11.0, 30.0, 31.0];
        let n = xs.len();
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                values[i * n + j] = (xs[i] - xs[j]).abs();
            }
        }
        let delays = DelayMatrix::from_values(n, values);
        let clustering = Clustering::from_labels(&[0, 0, 1, 1, 2, 2]);
        let hfc = HfcTopology::build(&clustering, &delays);
        // Proxy i carries service i, plus proxy 0 and 5 share service 9.
        let services: Vec<ServiceSet> = (0..n)
            .map(|i| {
                let mut s = ServiceSet::from_iter([ServiceId::new(i)]);
                if i == 0 || i == 5 {
                    s.insert(ServiceId::new(9));
                }
                s
            })
            .collect();
        (hfc, delays, services)
    }

    #[test]
    fn protocol_converges() {
        let (hfc, delays, services) = three_cluster_world();
        let mut protocol = StateProtocol::new(&hfc, services, &delays, ProtocolConfig::default());
        let report = protocol.run_to_quiescence();
        assert!(report.converged, "{report:?}");
        assert!(report.messages_delivered > 0);
        assert!(report.local_messages > 0);
        assert!(report.aggregate_messages > 0);
    }

    #[test]
    fn tables_reflect_cluster_structure() {
        let (hfc, delays, services) = three_cluster_world();
        let mut protocol = StateProtocol::new(&hfc, services, &delays, ProtocolConfig::default());
        protocol.run_to_quiescence();
        // Proxy 0 (cluster 0) knows proxies 0 and 1 in SCT_P...
        let (sctp, sctc) = protocol.tables_of(ProxyId::new(0));
        assert_eq!(sctp.len(), 2);
        assert!(sctp.services_of(ProxyId::new(1)).is_some());
        assert!(sctp.services_of(ProxyId::new(2)).is_none(), "other cluster");
        // ...and all three clusters in SCT_C.
        assert_eq!(sctc.len(), 3);
        // Service 9 lives in clusters 0 (proxy 0) and 2 (proxy 5).
        assert_eq!(
            sctc.clusters_with(ServiceId::new(9)),
            vec![ClusterId::new(0), ClusterId::new(2)]
        );
    }

    #[test]
    fn health_view_tracks_crashes_and_staleness() {
        let (hfc, delays, services) = three_cluster_world();
        let mut protocol = StateProtocol::new(
            &hfc,
            services,
            &delays,
            ProtocolConfig {
                refresh_period_ms: 40.0,
                ..ProtocolConfig::default()
            },
        );
        // Before any message flows, live proxies are stale: Draining.
        protocol.run_until(SimTime::from_ms(0.5));
        let early = protocol.health_view();
        assert!((0..6).any(|p| early.health(ProxyId::new(p)) == son_overlay::Health::Draining));

        // Crash proxy 4 permanently, then let everyone else converge.
        let mut protocol = {
            let (hfc, delays, services) = three_cluster_world();
            let mut p = StateProtocol::new(
                &hfc,
                services,
                &delays,
                ProtocolConfig {
                    refresh_period_ms: 40.0,
                    ..ProtocolConfig::default()
                },
            );
            // Crash after the first full exchange so live peers keep
            // proxy 4's (static, still correct) rows.
            p.install_faults(FaultPlan::new(9).with_crash(
                NodeId::new(4),
                SimTime::from_ms(100.0),
                None,
            ));
            p
        };
        protocol.run_until(SimTime::from_ms(400.0));
        let view = protocol.health_view();
        assert_eq!(view.health(ProxyId::new(4)), son_overlay::Health::Down);
        assert!(!view.is_routable(ProxyId::new(4)));
        for p in [0, 1, 2, 3, 5] {
            assert_eq!(
                view.health(ProxyId::new(p)),
                son_overlay::Health::Up,
                "proxy {p} converged and alive"
            );
        }
    }

    #[test]
    fn no_convergence_before_messages_arrive() {
        let (hfc, delays, services) = three_cluster_world();
        let mut protocol = StateProtocol::new(&hfc, services, &delays, ProtocolConfig::default());
        let report = protocol.run_until(SimTime::from_ms(0.5));
        assert!(
            !report.converged,
            "nothing can converge in half a millisecond"
        );
        let report = protocol.run_to_quiescence();
        assert!(report.converged);
    }

    #[test]
    fn single_cluster_needs_no_aggregate_messages() {
        let n = 4;
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                values[i * n + j] = if i == j { 0.0 } else { 1.0 };
            }
        }
        let delays = DelayMatrix::from_values(n, values);
        let clustering = Clustering::from_labels(&[0, 0, 0, 0]);
        let hfc = HfcTopology::build(&clustering, &delays);
        let services: Vec<ServiceSet> = (0..n)
            .map(|i| ServiceSet::from_iter([ServiceId::new(i)]))
            .collect();
        let mut protocol = StateProtocol::new(&hfc, services, &delays, ProtocolConfig::default());
        let report = protocol.run_to_quiescence();
        assert!(report.converged);
        assert_eq!(report.aggregate_messages, 0);
    }

    #[test]
    fn message_volume_scales_with_rounds() {
        let (hfc, delays, services) = three_cluster_world();
        let run = |rounds: usize| {
            let config = ProtocolConfig {
                rounds,
                ..ProtocolConfig::default()
            };
            let mut protocol = StateProtocol::new(&hfc, services.clone(), &delays, config);
            protocol.run_to_quiescence()
        };
        let one = run(1);
        let three = run(3);
        // Even a single round converges thanks to the event-driven
        // re-advertisement borders perform when their aggregate
        // changes; more rounds just cost more messages.
        assert!(one.converged);
        assert!(three.converged);
        assert!(three.local_messages > one.local_messages);
    }

    #[test]
    #[should_panic(expected = "one service set per proxy")]
    fn wrong_service_count_panics() {
        let (hfc, delays, _) = three_cluster_world();
        let _ = StateProtocol::new(&hfc, vec![], &delays, ProtocolConfig::default());
    }
}

#[cfg(test)]
mod loss_tests {
    use super::*;
    use son_clustering::Clustering;
    use son_overlay::{DelayMatrix, ServiceId};

    fn world() -> (HfcTopology, DelayMatrix, Vec<ServiceSet>) {
        let n = 12;
        let pos: Vec<f64> = (0..n)
            .map(|i| (i / 4) as f64 * 200.0 + (i % 4) as f64 * 3.0)
            .collect();
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                values[i * n + j] = (pos[i] - pos[j]).abs();
            }
        }
        let delays = DelayMatrix::from_values(n, values);
        let labels: Vec<usize> = (0..n).map(|i| i / 4).collect();
        let hfc = HfcTopology::build(&Clustering::from_labels(&labels), &delays);
        let services: Vec<ServiceSet> = (0..n)
            .map(|i| ServiceSet::from_iter([ServiceId::new(i)]))
            .collect();
        (hfc, delays, services)
    }

    #[test]
    fn protocol_survives_moderate_loss() {
        let (hfc, delays, services) = world();
        // Periodic retransmission is the protocol's loss defence: with
        // enough rounds, a 25% drop rate still converges.
        let config = ProtocolConfig {
            rounds: 8,
            ..ProtocolConfig::default()
        };
        let mut protocol = StateProtocol::new(&hfc, services, &delays, config);
        protocol.inject_loss(0.25, 7);
        let report = protocol.run_to_quiescence();
        assert!(report.converged, "{report:?}");
    }

    #[test]
    fn total_loss_prevents_convergence() {
        let (hfc, delays, services) = world();
        let mut protocol = StateProtocol::new(&hfc, services, &delays, ProtocolConfig::default());
        protocol.inject_loss(1.0, 1);
        let report = protocol.run_to_quiescence();
        assert!(!report.converged);
        assert_eq!(report.messages_delivered, 0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let (hfc, delays, services) = world();
        let mut protocol = StateProtocol::new(&hfc, services, &delays, ProtocolConfig::default());
        protocol.inject_loss(1.5, 0);
    }
}

#[cfg(test)]
mod fault_tolerance_tests {
    use super::*;
    use son_clustering::Clustering;
    use son_overlay::{DelayMatrix, ServiceId};

    fn world() -> (HfcTopology, DelayMatrix, Vec<ServiceSet>) {
        let n = 12;
        let pos: Vec<f64> = (0..n)
            .map(|i| (i / 4) as f64 * 200.0 + (i % 4) as f64 * 3.0)
            .collect();
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                values[i * n + j] = (pos[i] - pos[j]).abs();
            }
        }
        let delays = DelayMatrix::from_values(n, values);
        let labels: Vec<usize> = (0..n).map(|i| i / 4).collect();
        let hfc = HfcTopology::build(&Clustering::from_labels(&labels), &delays);
        let services: Vec<ServiceSet> = (0..n)
            .map(|i| ServiceSet::from_iter([ServiceId::new(i)]))
            .collect();
        (hfc, delays, services)
    }

    #[test]
    fn anti_entropy_converges_through_heavy_loss() {
        let (hfc, delays, services) = world();
        let mut protocol = StateProtocol::new(&hfc, services, &delays, ProtocolConfig::resilient());
        protocol.install_faults(FaultPlan::new(3).with_loss(0.3));
        let report = protocol.run_until_converged(SimTime::from_ms(5_000.0));
        assert!(report.converged, "{report:?}");
        assert_eq!(report.stale_entries, 0);
        assert!(report.messages_dropped > 0, "loss must actually bite");
    }

    #[test]
    fn converges_after_a_partition_heals() {
        let (hfc, delays, services) = world();
        let mut protocol = StateProtocol::new(&hfc, services, &delays, ProtocolConfig::resilient());
        // Cluster 0 (proxies 0-3) is cut off for the first 100ms.
        protocol.install_faults(FaultPlan::new(1).with_partition(
            SimTime::ZERO,
            SimTime::from_ms(100.0),
            (0..4).map(NodeId::new).collect(),
        ));
        let report = protocol.run_until_converged(SimTime::from_ms(5_000.0));
        assert!(report.converged, "{report:?}");
        assert!(
            report.ended_at >= SimTime::from_ms(100.0),
            "cannot converge while the partition still hides cluster 0"
        );
    }

    #[test]
    fn restarted_proxy_relearns_everything() {
        let (hfc, delays, services) = world();
        let mut protocol = StateProtocol::new(&hfc, services, &delays, ProtocolConfig::resilient());
        // Proxy 5 crashes after the initial rounds converged and comes
        // back with empty tables; anti-entropy must re-teach it.
        protocol.install_faults(FaultPlan::new(1).with_crash(
            NodeId::new(5),
            SimTime::from_ms(60.0),
            Some(SimTime::from_ms(90.0)),
        ));
        let report = protocol.run_until_converged(SimTime::from_ms(5_000.0));
        assert!(report.converged, "{report:?}");
        assert_eq!(report.crashed_proxies, 0);
        let (sctp, sctc) = protocol.tables_of(ProxyId::new(5));
        assert_eq!(sctp.len(), 4, "full cluster relearned");
        assert_eq!(sctc.len(), 3, "all aggregates relearned");
    }

    #[test]
    fn permanently_crashed_proxy_is_excluded_from_the_check() {
        let (hfc, delays, services) = world();
        let mut protocol = StateProtocol::new(&hfc, services, &delays, ProtocolConfig::resilient());
        // Proxy 1 is not a border (borders connect nearest pairs of
        // clusters; interior members carry no duties) and never comes
        // back.
        protocol.install_faults(FaultPlan::new(1).with_crash(
            NodeId::new(1),
            SimTime::from_ms(5.0),
            None,
        ));
        let report = protocol.run_until_converged(SimTime::from_ms(5_000.0));
        assert!(report.converged, "{report:?}");
        assert_eq!(report.crashed_proxies, 1);
        let staleness = protocol.staleness();
        assert_eq!(staleness.checked_proxies, 11);
        // Live proxies still hold correct rows about the dead one.
        let (sctp, _) = protocol.tables_of(ProxyId::new(0));
        assert_eq!(
            sctp.services_of(ProxyId::new(1)),
            Some(&ServiceSet::from_iter([ServiceId::new(1)]))
        );
    }

    #[test]
    fn unconverged_report_counts_stale_entries() {
        let (hfc, delays, services) = world();
        let mut protocol = StateProtocol::new(&hfc, services, &delays, ProtocolConfig::default());
        protocol.inject_loss(1.0, 1);
        let report = protocol.run_to_quiescence();
        assert!(!report.converged);
        assert!(report.stale_entries > 0, "{report:?}");
    }

    #[test]
    fn duplication_and_refresh_are_counted() {
        let (hfc, delays, services) = world();
        let mut protocol = StateProtocol::new(&hfc, services, &delays, ProtocolConfig::resilient());
        protocol.install_faults(
            FaultPlan::new(11)
                .with_loss(0.1)
                .with_duplicate(0.2)
                .with_jitter_ms(2.0),
        );
        let report = protocol.run_until_converged(SimTime::from_ms(5_000.0));
        assert!(report.converged, "{report:?}");
        assert!(report.messages_duplicated > 0, "duplication must bite");
        assert!(report.refresh_rounds > 0, "anti-entropy must have run");
        // With duplication and jitter, some deliveries arrive after a
        // fresher version was applied and hit the version guard.
        assert!(report.stale_ignored > 0, "{report:?}");
    }

    #[test]
    fn report_folds_protocol_counters_into_the_registry() {
        let (hfc, delays, services) = world();
        son_telemetry::set_enabled(true);
        let registry = son_telemetry::global();
        let before = registry.counter("state.local_sent").get();
        let mut protocol = StateProtocol::new(&hfc, services, &delays, ProtocolConfig::default());
        let report = protocol.run_to_quiescence();
        // The registry is global and other tests may fold too, so the
        // delta is at least — not exactly — this run's contribution.
        let after = registry.counter("state.local_sent").get();
        assert!(
            after >= before + report.local_messages,
            "local_sent counter moved {before} -> {after}, report says {}",
            report.local_messages
        );
        assert!(registry.counter("state.messages_delivered").get() >= report.messages_delivered);
        assert!(registry.gauge("state.converged").get() == 1.0);
        // Re-reporting must not double-count: a second zero-progress run
        // adds a zero delta, never the cumulative totals again.
        let mid = registry.counter("state.local_sent").get();
        let again = protocol.run_until(report.ended_at);
        assert_eq!(again.local_messages, report.local_messages);
        let end = registry.counter("state.local_sent").get();
        // Other parallel tests may add their own local_sent, but this
        // protocol instance contributed nothing new.
        assert!(end >= mid);
    }

    #[test]
    fn same_plan_same_trace_hash() {
        let (hfc, delays, services) = world();
        let run = |seed: u64| {
            let mut protocol =
                StateProtocol::new(&hfc, services.clone(), &delays, ProtocolConfig::resilient());
            protocol.install_faults(
                FaultPlan::new(seed)
                    .with_loss(0.15)
                    .with_duplicate(0.05)
                    .with_jitter_ms(1.0),
            );
            protocol.run_until_converged(SimTime::from_ms(5_000.0))
        };
        let (a, b) = (run(42), run(42));
        assert_eq!(a, b);
        assert_ne!(a.trace_hash, run(43).trace_hash);
    }
}

#[cfg(test)]
mod tree_tests {
    use super::*;
    use son_clustering::Clustering;
    use son_overlay::{DelayMatrix, ServiceId};

    /// 30 proxies, 3 clusters of 10 — big enough clusters that the
    /// fanout-4 trees grow real interior nodes and flooding's m(m-1)
    /// per-round cost dwarfs the tree's 2(m-1).
    fn world() -> (HfcTopology, DelayMatrix, Vec<ServiceSet>) {
        let n = 30;
        let pos: Vec<f64> = (0..n)
            .map(|i| (i / 10) as f64 * 50.0 + (i % 10) as f64 * 3.0)
            .collect();
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                values[i * n + j] = (pos[i] - pos[j]).abs();
            }
        }
        let delays = DelayMatrix::from_values(n, values);
        let labels: Vec<usize> = (0..n).map(|i| i / 10).collect();
        let hfc = HfcTopology::build(&Clustering::from_labels(&labels), &delays);
        let services: Vec<ServiceSet> = (0..n)
            .map(|i| ServiceSet::from_iter([ServiceId::new(i)]))
            .collect();
        (hfc, delays, services)
    }

    #[test]
    fn tree_mode_converges_with_correct_tables() {
        let (hfc, delays, services) = world();
        let mut protocol = StateProtocol::new(&hfc, services, &delays, ProtocolConfig::tree());
        let report = protocol.run_until_converged(SimTime::from_ms(5_000.0));
        assert!(report.converged, "{report:?}");
        assert_eq!(report.stale_entries, 0);
        assert!(report.tree_messages > 0);
        assert_eq!(report.local_messages, 0, "no intra-cluster flooding");
        // Ground truth, not self-report: every proxy holds the full
        // cluster in SCT_P and all three aggregates in SCT_C.
        for p in 0..30 {
            let (sctp, sctc) = protocol.tables_of(ProxyId::new(p));
            assert_eq!(sctp.len(), 10, "proxy {p}");
            assert_eq!(sctc.len(), 3, "proxy {p}");
        }
        let forest = protocol.forest().expect("tree mode builds a forest");
        assert!(forest.max_depth() >= 2, "fanout 4 over 10 members");
    }

    #[test]
    fn tree_mode_sends_far_fewer_messages_than_flooding() {
        let (hfc, delays, services) = world();
        let run = |config: ProtocolConfig| {
            let mut protocol = StateProtocol::new(&hfc, services.clone(), &delays, config);
            let report = protocol.run_until(SimTime::from_ms(400.0));
            assert!(report.converged, "{report:?}");
            report
        };
        let flooding = run(ProtocolConfig::resilient());
        let tree = run(ProtocolConfig::tree());
        // Same horizon, same timers, same world: the tree must cut
        // total message volume by well over the 3x the bench targets.
        assert!(
            tree.messages_sent() * 3 <= flooding.messages_sent(),
            "tree {} vs flooding {}",
            tree.messages_sent(),
            flooding.messages_sent()
        );
        assert!(tree.tree_suppressed > 0, "suppression must be counted");
    }

    #[test]
    fn orphans_repair_through_a_permanent_parent_crash() {
        let (hfc, delays, services) = world();
        let mut protocol =
            StateProtocol::new(&hfc, services.clone(), &delays, ProtocolConfig::tree());
        // Pick a non-root, non-border tree parent: its children lose
        // their only sync source and must flood a Repair.
        let duties = hfc.border_duty_counts();
        let forest = protocol.forest().unwrap();
        let victim = (0..30)
            .map(ProxyId::new)
            .find(|p| {
                forest.parent_of(*p).is_some()
                    && !forest.children_of(*p).is_empty()
                    && duties[p.index()] == 0
            })
            .expect("a 10-member fanout-4 tree has interior non-border nodes");
        protocol.install_faults(FaultPlan::new(1).with_crash(
            NodeId::new(victim.index()),
            SimTime::from_ms(60.0),
            None,
        ));
        // Repairs also land on the flight recorder so `son flight`
        // timelines show dissemination-tree trouble.
        let recorder = son_telemetry::flight::flight();
        let watermark = recorder.recorded();
        recorder.set_enabled(true);
        let report = protocol.run_until_converged(SimTime::from_ms(5_000.0));
        recorder.set_enabled(false);
        assert!(report.converged, "{report:?}");
        assert_eq!(report.stale_entries, 0);
        assert_eq!(report.crashed_proxies, 1);
        assert!(report.tree_repairs > 0, "orphans must have repaired");
        let repair_events = recorder
            .since(watermark)
            .into_iter()
            .filter(|e| matches!(e.kind, son_telemetry::flight::FlightKind::TreeRepair))
            .count() as u64;
        assert!(
            repair_events > 0 && repair_events <= report.tree_repairs,
            "{repair_events} flight repairs vs {} counted",
            report.tree_repairs
        );
    }

    #[test]
    fn tree_mode_survives_loss_duplication_and_healed_partitions() {
        let (hfc, delays, services) = world();
        let mut protocol = StateProtocol::new(&hfc, services, &delays, ProtocolConfig::tree());
        protocol.install_faults(
            FaultPlan::new(7)
                .with_loss(0.2)
                .with_duplicate(0.05)
                .with_jitter_ms(1.0)
                .with_partition(
                    SimTime::ZERO,
                    SimTime::from_ms(100.0),
                    (0..10).map(NodeId::new).collect(),
                ),
        );
        let report = protocol.run_until_converged(SimTime::from_ms(5_000.0));
        assert!(report.converged, "{report:?}");
        assert_eq!(report.stale_entries, 0);
        assert!(report.messages_dropped > 0, "loss must actually bite");
    }

    #[test]
    fn tree_runs_are_deterministic_and_seed_sensitive() {
        let (hfc, delays, services) = world();
        let run = |seed: u64| {
            let mut protocol =
                StateProtocol::new(&hfc, services.clone(), &delays, ProtocolConfig::tree());
            protocol.install_faults(
                FaultPlan::new(seed)
                    .with_loss(0.15)
                    .with_duplicate(0.05)
                    .with_jitter_ms(1.0),
            );
            protocol.run_until_converged(SimTime::from_ms(5_000.0))
        };
        let (a, b) = (run(42), run(42));
        assert_eq!(a, b);
        assert_ne!(a.trace_hash, run(43).trace_hash);
    }

    #[test]
    fn flooding_trace_is_untouched_by_the_tree_machinery() {
        // The tree code must be invisible when the mode is off: a
        // flooding run reports zero tree activity.
        let (hfc, delays, services) = world();
        let mut protocol = StateProtocol::new(&hfc, services, &delays, ProtocolConfig::resilient());
        let report = protocol.run_until_converged(SimTime::from_ms(5_000.0));
        assert!(report.converged);
        assert_eq!(report.tree_messages, 0);
        assert_eq!(report.tree_suppressed, 0);
        assert_eq!(report.tree_repairs, 0);
        assert!(protocol.forest().is_none());
    }
}
