//! Ground-truth convergence checking for the state protocol.
//!
//! The expected converged state of an overlay is fully determined by
//! the cluster structure and the (static) installed service sets:
//! every proxy's `SCT_P` must equal its cluster's full table and its
//! `SCT_C` must name every cluster's aggregate. The checker computes
//! that ground truth once and then compares any set of live tables
//! against it, counting *stale entries* — missing, spurious, or
//! wrong-valued rows — instead of a bare converged/not-converged bit.
//!
//! Crashed proxies are excluded from the comparison: a node that is
//! down has no tables to be wrong about. Entries *about* a crashed
//! proxy held by live proxies are still required to be correct,
//! because installed services are static and survive restarts.

use crate::tables::{SctC, SctP};
use son_overlay::{HfcTopology, ProxyId, ServiceSet};

/// How far a set of live tables is from the ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Staleness {
    /// `SCT_P` rows that are missing, spurious, or hold the wrong
    /// service set, summed over all checked proxies.
    pub stale_sctp: usize,
    /// `SCT_C` rows in the same condition.
    pub stale_sctc: usize,
    /// Proxies that were compared (live proxies).
    pub checked_proxies: usize,
}

impl Staleness {
    /// Total stale rows across both tables.
    pub fn total(&self) -> usize {
        self.stale_sctp + self.stale_sctc
    }

    /// `true` when every checked table matched the ground truth.
    pub fn is_converged(&self) -> bool {
        self.total() == 0
    }
}

/// Precomputed ground truth for one overlay.
#[derive(Debug, Clone)]
pub struct ConvergenceChecker {
    expected_sctp: Vec<SctP>,
    expected_sctc: SctC,
}

impl ConvergenceChecker {
    /// Builds the expected converged tables from the cluster structure
    /// and installed services.
    ///
    /// # Panics
    ///
    /// Panics if `services.len()` differs from the proxy count.
    pub fn new(hfc: &HfcTopology, services: &[ServiceSet]) -> Self {
        assert_eq!(
            services.len(),
            hfc.proxy_count(),
            "one service set per proxy required"
        );
        let mut expected_sctp = vec![SctP::new(); hfc.proxy_count()];
        let mut expected_sctc = SctC::new();
        for c in hfc.clusters() {
            let mut cluster_table = SctP::new();
            for &m in hfc.members(c) {
                cluster_table.update(m, services[m.index()].clone());
            }
            expected_sctc.update(c, cluster_table.aggregate());
            for &m in hfc.members(c) {
                expected_sctp[m.index()] = cluster_table.clone();
            }
        }
        ConvergenceChecker {
            expected_sctp,
            expected_sctc,
        }
    }

    /// The ground-truth tables of one proxy.
    ///
    /// # Panics
    ///
    /// Panics if `proxy` is out of range.
    pub fn expected_tables_of(&self, proxy: ProxyId) -> (&SctP, &SctC) {
        (&self.expected_sctp[proxy.index()], &self.expected_sctc)
    }

    /// Compares live tables against the ground truth. `tables` yields
    /// `(proxy, sctp, sctc)` for every proxy to check; pass only live
    /// proxies — the caller knows which nodes are down.
    pub fn staleness<'a, I>(&self, tables: I) -> Staleness
    where
        I: IntoIterator<Item = (ProxyId, &'a SctP, &'a SctC)>,
    {
        let mut out = Staleness::default();
        for (proxy, sctp, sctc) in tables {
            out.checked_proxies += 1;
            let expected = &self.expected_sctp[proxy.index()];
            for (q, s) in expected.iter() {
                if sctp.services_of(q) != Some(s) {
                    out.stale_sctp += 1;
                }
            }
            out.stale_sctp += sctp
                .iter()
                .filter(|(q, _)| expected.services_of(*q).is_none())
                .count();
            for (c, s) in self.expected_sctc.iter() {
                if sctc.services_of(c) != Some(s) {
                    out.stale_sctc += 1;
                }
            }
            out.stale_sctc += sctc
                .iter()
                .filter(|(c, _)| self.expected_sctc.services_of(*c).is_none())
                .count();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use son_clustering::Clustering;
    use son_overlay::{ClusterId, DelayMatrix, ServiceId};

    fn world() -> (HfcTopology, Vec<ServiceSet>) {
        let xs: [f64; 4] = [0.0, 1.0, 50.0, 51.0];
        let n = xs.len();
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                values[i * n + j] = (xs[i] - xs[j]).abs();
            }
        }
        let delays = DelayMatrix::from_values(n, values);
        let hfc = HfcTopology::build(&Clustering::from_labels(&[0, 0, 1, 1]), &delays);
        let services: Vec<ServiceSet> = (0..n)
            .map(|i| ServiceSet::from_iter([ServiceId::new(i)]))
            .collect();
        (hfc, services)
    }

    /// Converged tables for the fixture, built by hand.
    fn converged_tables(hfc: &HfcTopology, services: &[ServiceSet]) -> Vec<(SctP, SctC)> {
        let checker = ConvergenceChecker::new(hfc, services);
        (0..services.len())
            .map(|p| {
                let (sctp, sctc) = checker.expected_tables_of(ProxyId::new(p));
                (sctp.clone(), sctc.clone())
            })
            .collect()
    }

    #[test]
    fn ground_truth_is_converged() {
        let (hfc, services) = world();
        let checker = ConvergenceChecker::new(&hfc, &services);
        let tables = converged_tables(&hfc, &services);
        let staleness = checker.staleness(
            tables
                .iter()
                .enumerate()
                .map(|(p, (sctp, sctc))| (ProxyId::new(p), sctp, sctc)),
        );
        assert!(staleness.is_converged());
        assert_eq!(staleness.checked_proxies, 4);
    }

    #[test]
    fn missing_wrong_and_spurious_rows_are_all_stale() {
        let (hfc, services) = world();
        let checker = ConvergenceChecker::new(&hfc, &services);
        let mut tables = converged_tables(&hfc, &services);
        // Proxy 0: wrong-valued SCT_P row about proxy 1.
        tables[0]
            .0
            .update(ProxyId::new(1), ServiceSet::from_iter([ServiceId::new(9)]));
        // Proxy 1: spurious SCT_C row about a cluster that doesn't
        // exist.
        tables[1].1.update(
            ClusterId::new(7),
            ServiceSet::from_iter([ServiceId::new(0)]),
        );
        // Proxy 2: missing SCT_P — fresh table knows nobody.
        tables[2].0 = SctP::new();
        let staleness = checker.staleness(
            tables
                .iter()
                .enumerate()
                .map(|(p, (sctp, sctc))| (ProxyId::new(p), sctp, sctc)),
        );
        assert_eq!(staleness.stale_sctp, 1 + 2, "one wrong + two missing");
        assert_eq!(staleness.stale_sctc, 1, "one spurious");
        assert!(!staleness.is_converged());
    }

    #[test]
    fn crashed_proxies_are_simply_not_passed_in() {
        let (hfc, services) = world();
        let checker = ConvergenceChecker::new(&hfc, &services);
        let mut tables = converged_tables(&hfc, &services);
        tables[3].0 = SctP::new(); // proxy 3 crashed with empty tables
        let staleness = checker.staleness(
            tables
                .iter()
                .enumerate()
                .take(3)
                .map(|(p, (sctp, sctc))| (ProxyId::new(p), sctp, sctc)),
        );
        assert!(staleness.is_converged());
        assert_eq!(staleness.checked_proxies, 3);
    }

    #[test]
    #[should_panic(expected = "one service set per proxy")]
    fn wrong_service_count_panics() {
        let (hfc, _) = world();
        let _ = ConvergenceChecker::new(&hfc, &[]);
    }
}
