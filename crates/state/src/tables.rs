//! Service Capability Tables.

use son_overlay::{ClusterId, ProxyId, ServiceId, ServiceSet};
use std::collections::BTreeMap;

/// The per-proxy Service Capability Table (`SCT_P`): which services
/// each proxy of the *local cluster* carries.
///
/// # Example
///
/// ```
/// use son_state::SctP;
/// use son_overlay::{ProxyId, ServiceId, ServiceSet};
///
/// let mut sct = SctP::new();
/// sct.update(ProxyId::new(3), ServiceSet::from_iter([ServiceId::new(1)]));
/// assert_eq!(sct.providers_of(ServiceId::new(1)), vec![ProxyId::new(3)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SctP {
    entries: BTreeMap<ProxyId, ServiceSet>,
}

impl SctP {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs or refreshes the capability set of `proxy`. Returns
    /// `true` if the stored entry changed.
    pub fn update(&mut self, proxy: ProxyId, services: ServiceSet) -> bool {
        match self.entries.get(&proxy) {
            Some(existing) if *existing == services => false,
            _ => {
                self.entries.insert(proxy, services);
                true
            }
        }
    }

    /// The capability set of `proxy`, if known.
    pub fn services_of(&self, proxy: ProxyId) -> Option<&ServiceSet> {
        self.entries.get(&proxy)
    }

    /// Proxies known to carry `service`, in id order.
    pub fn providers_of(&self, service: ServiceId) -> Vec<ProxyId> {
        self.entries
            .iter()
            .filter(|(_, set)| set.contains(service))
            .map(|(&p, _)| p)
            .collect()
    }

    /// Number of proxies known.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no proxy is known.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(proxy, services)` entries in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ProxyId, &ServiceSet)> {
        self.entries.iter().map(|(&p, s)| (p, s))
    }

    /// The union of every known proxy's services — the aggregate SCI a
    /// border proxy advertises for its cluster (Section 4, footnote 5).
    pub fn aggregate(&self) -> ServiceSet {
        let mut out = ServiceSet::new();
        for set in self.entries.values() {
            out.merge(set);
        }
        out
    }
}

/// The per-cluster Service Capability Table (`SCT_C`): the aggregate
/// service set of every cluster in the system.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SctC {
    entries: BTreeMap<ClusterId, ServiceSet>,
}

impl SctC {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs or refreshes the aggregate set of `cluster`. Returns
    /// `true` if the stored entry changed.
    pub fn update(&mut self, cluster: ClusterId, services: ServiceSet) -> bool {
        match self.entries.get(&cluster) {
            Some(existing) if *existing == services => false,
            _ => {
                self.entries.insert(cluster, services);
                true
            }
        }
    }

    /// Merges `services` into the stored entry of `cluster` (set
    /// union). Returns `true` if the entry grew (or was created).
    ///
    /// With statically installed services, cluster aggregates only ever
    /// grow, so merging makes table updates order-independent: a stale
    /// retransmission can never regress a fresher entry.
    pub fn merge_update(&mut self, cluster: ClusterId, services: &ServiceSet) -> bool {
        match self.entries.get_mut(&cluster) {
            Some(existing) => {
                let before = existing.len();
                existing.merge(services);
                existing.len() > before
            }
            None => {
                self.entries.insert(cluster, services.clone());
                true
            }
        }
    }

    /// The aggregate set of `cluster`, if known.
    pub fn services_of(&self, cluster: ClusterId) -> Option<&ServiceSet> {
        self.entries.get(&cluster)
    }

    /// Clusters known to offer `service`, in id order.
    pub fn clusters_with(&self, service: ServiceId) -> Vec<ClusterId> {
        self.entries
            .iter()
            .filter(|(_, set)| set.contains(service))
            .map(|(&c, _)| c)
            .collect()
    }

    /// Number of clusters known.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no cluster is known.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(cluster, services)` entries in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ClusterId, &ServiceSet)> {
        self.entries.iter().map(|(&c, s)| (c, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[usize]) -> ServiceSet {
        ids.iter().map(|&i| ServiceId::new(i)).collect()
    }

    #[test]
    fn sctp_update_reports_changes() {
        let mut sct = SctP::new();
        assert!(sct.update(ProxyId::new(0), set(&[1, 2])));
        assert!(!sct.update(ProxyId::new(0), set(&[1, 2])), "same content");
        assert!(sct.update(ProxyId::new(0), set(&[1])), "content changed");
        assert_eq!(sct.len(), 1);
    }

    #[test]
    fn sctp_finds_providers_in_order() {
        let mut sct = SctP::new();
        sct.update(ProxyId::new(5), set(&[1]));
        sct.update(ProxyId::new(2), set(&[1, 3]));
        sct.update(ProxyId::new(9), set(&[3]));
        assert_eq!(
            sct.providers_of(ServiceId::new(1)),
            vec![ProxyId::new(2), ProxyId::new(5)]
        );
        assert!(sct.providers_of(ServiceId::new(7)).is_empty());
    }

    #[test]
    fn sctp_aggregate_is_union() {
        let mut sct = SctP::new();
        sct.update(ProxyId::new(0), set(&[1, 2]));
        sct.update(ProxyId::new(1), set(&[2, 3]));
        assert_eq!(sct.aggregate(), set(&[1, 2, 3]));
        assert_eq!(SctP::new().aggregate(), ServiceSet::new());
    }

    #[test]
    fn sctc_tracks_clusters() {
        let mut sct = SctC::new();
        assert!(sct.is_empty());
        sct.update(ClusterId::new(0), set(&[1]));
        sct.update(ClusterId::new(2), set(&[1, 4]));
        assert_eq!(
            sct.clusters_with(ServiceId::new(1)),
            vec![ClusterId::new(0), ClusterId::new(2)]
        );
        assert_eq!(sct.services_of(ClusterId::new(2)), Some(&set(&[1, 4])));
        assert_eq!(sct.services_of(ClusterId::new(1)), None);
        assert_eq!(sct.iter().count(), 2);
    }
}

#[cfg(test)]
mod merge_tests {
    use super::*;

    fn set(ids: &[usize]) -> ServiceSet {
        ids.iter().map(|&i| ServiceId::new(i)).collect()
    }

    #[test]
    fn merge_update_is_monotone() {
        let mut sct = SctC::new();
        assert!(sct.merge_update(ClusterId::new(0), &set(&[1, 2])));
        // A stale retransmission cannot shrink the entry.
        assert!(!sct.merge_update(ClusterId::new(0), &set(&[1])));
        assert_eq!(sct.services_of(ClusterId::new(0)), Some(&set(&[1, 2])));
        // New services grow it.
        assert!(sct.merge_update(ClusterId::new(0), &set(&[3])));
        assert_eq!(sct.services_of(ClusterId::new(0)), Some(&set(&[1, 2, 3])));
    }

    #[test]
    fn merge_update_is_order_independent() {
        let parts = [set(&[1]), set(&[2, 3]), set(&[1, 4])];
        let mut forward = SctC::new();
        for p in &parts {
            forward.merge_update(ClusterId::new(0), p);
        }
        let mut backward = SctC::new();
        for p in parts.iter().rev() {
            backward.merge_update(ClusterId::new(0), p);
        }
        assert_eq!(
            forward.services_of(ClusterId::new(0)),
            backward.services_of(ClusterId::new(0))
        );
    }
}
