//! Per-cluster load/health aggregation — the saturation counterpart of
//! the aggregate capability rows.
//!
//! The `SCT_C` rows tell a destination proxy *which* clusters can serve
//! a stage; [`ClusterLoad`] tells it whether those clusters have any
//! headroom left. One [`ClusterLoadRow`] per cluster summarizes member
//! health counts and mean utilization, exactly as a border proxy would
//! aggregate them alongside its capability advertisements. The
//! hierarchical router consults these rows during cluster-level (CSP)
//! selection: clusters with zero routable members are unmappable, and
//! saturated clusters pay a penalty proportional to their mean load.

use son_overlay::{ClusterId, Health, HfcTopology, StatusMap};

/// Health counts and mean load of one cluster's members.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClusterLoadRow {
    /// Members serving normally.
    pub up: usize,
    /// Members draining (routable at a penalty).
    pub draining: usize,
    /// Members down (never routable).
    pub down: usize,
    /// Mean utilization over the routable members (0 when none).
    pub mean_utilization: f64,
}

impl ClusterLoadRow {
    /// Members new paths may still traverse.
    pub fn routable(&self) -> usize {
        self.up + self.draining
    }
}

/// One [`ClusterLoadRow`] per cluster, plus the penalty weight applied
/// at CSP selection.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClusterLoad {
    rows: Vec<ClusterLoadRow>,
    penalty_scale: f64,
}

impl ClusterLoad {
    /// Aggregates `statuses` over the clusters of `hfc`.
    /// `penalty_scale` weighs mean utilization into CSP edge costs
    /// (use `CostConfig::cluster_load_penalty`).
    pub fn from_statuses(hfc: &HfcTopology, statuses: &StatusMap, penalty_scale: f64) -> Self {
        let rows = hfc
            .clusters()
            .map(|c| {
                let mut row = ClusterLoadRow::default();
                let mut load = 0.0;
                for &m in hfc.members(c) {
                    match statuses.health(m) {
                        Health::Up => row.up += 1,
                        Health::Draining => row.draining += 1,
                        Health::Down => row.down += 1,
                    }
                    if statuses.health(m).is_routable() {
                        load += statuses.utilization(m);
                    }
                }
                if row.routable() > 0 {
                    row.mean_utilization = load / row.routable() as f64;
                }
                row
            })
            .collect();
        ClusterLoad {
            rows,
            penalty_scale,
        }
    }

    /// Number of clusters summarized.
    pub fn cluster_count(&self) -> usize {
        self.rows.len()
    }

    /// The summary row of `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn row(&self, cluster: ClusterId) -> &ClusterLoadRow {
        &self.rows[cluster.index()]
    }

    /// Whether new paths may map stages into `cluster` at all.
    pub fn is_routable(&self, cluster: ClusterId) -> bool {
        self.rows
            .get(cluster.index())
            .is_none_or(|row| row.routable() > 0)
    }

    /// The CSP-selection penalty of entering `cluster`: infinite when
    /// no member is routable, otherwise mean utilization scaled by the
    /// configured weight.
    pub fn penalty(&self, cluster: ClusterId) -> f64 {
        match self.rows.get(cluster.index()) {
            Some(row) if row.routable() == 0 => f64::INFINITY,
            Some(row) => self.penalty_scale * row.mean_utilization,
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use son_clustering::Clustering;
    use son_overlay::{DelayMatrix, ProxyId};

    /// Two clusters of three proxies on a line.
    fn world() -> HfcTopology {
        let n = 6;
        let pos: Vec<f64> = (0..n)
            .map(|i| (i / 3) as f64 * 100.0 + (i % 3) as f64)
            .collect();
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                values[i * n + j] = (pos[i] - pos[j]).abs();
            }
        }
        let delays = DelayMatrix::from_values(n, values);
        HfcTopology::build(&Clustering::from_labels(&[0, 0, 0, 1, 1, 1]), &delays)
    }

    #[test]
    fn rows_count_health_and_average_load() {
        let hfc = world();
        let mut statuses = StatusMap::all_up(6);
        statuses.set_health(ProxyId::new(0), Health::Down);
        statuses.set_health(ProxyId::new(1), Health::Draining);
        statuses.set_utilization(ProxyId::new(1), 0.4);
        statuses.set_utilization(ProxyId::new(2), 0.8);
        let load = ClusterLoad::from_statuses(&hfc, &statuses, 10.0);
        assert_eq!(load.cluster_count(), 2);
        let row = load.row(ClusterId::new(0));
        assert_eq!((row.up, row.draining, row.down), (1, 1, 1));
        assert_eq!(row.routable(), 2);
        assert!((row.mean_utilization - 0.6).abs() < 1e-12);
        assert!((load.penalty(ClusterId::new(0)) - 6.0).abs() < 1e-12);
        assert_eq!(load.penalty(ClusterId::new(1)), 0.0);
    }

    #[test]
    fn dead_cluster_is_unroutable() {
        let hfc = world();
        let statuses =
            StatusMap::from_down(6, &[ProxyId::new(3), ProxyId::new(4), ProxyId::new(5)]);
        let load = ClusterLoad::from_statuses(&hfc, &statuses, 1.0);
        assert!(load.is_routable(ClusterId::new(0)));
        assert!(!load.is_routable(ClusterId::new(1)));
        assert!(load.penalty(ClusterId::new(1)).is_infinite());
    }

    #[test]
    fn empty_statuses_mean_full_headroom() {
        let hfc = world();
        let load = ClusterLoad::from_statuses(&hfc, &StatusMap::new(), 5.0);
        for c in hfc.clusters() {
            assert!(load.is_routable(c));
            assert_eq!(load.penalty(c), 0.0);
        }
    }
}
