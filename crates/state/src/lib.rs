//! # son-state
//!
//! The hierarchical service-routing-information distribution protocol
//! of the paper's Section 4, plus the state-overhead accounting used in
//! Section 6.1.
//!
//! Every proxy maintains two *Service Capability Tables*:
//!
//! * [`SctP`] — full per-proxy capabilities of its **own cluster**,
//!   refreshed by periodic *local state* messages flooded inside the
//!   cluster;
//! * [`SctC`] — aggregate capabilities (set unions) of **every
//!   cluster**, refreshed by *aggregate state* messages that border
//!   proxies exchange with their neighbor borders and forward within
//!   their own cluster.
//!
//! [`protocol::StateProtocol`] runs this over the deterministic
//! [`son_netsim::Simulator`] and reports convergence time and message
//! counts. [`overhead`] computes the per-proxy node-state counts the
//! paper plots in Figure 9.

pub mod checker;
pub mod load;
pub mod overhead;
pub mod protocol;
pub mod tables;

pub use checker::{ConvergenceChecker, Staleness};
pub use load::{ClusterLoad, ClusterLoadRow};
pub use overhead::{flat_overhead, hfc_overhead, OverheadKind, OverheadReport};
pub use protocol::{DissemMode, ProtocolConfig, StateProtocol, StateReport};
pub use tables::{SctC, SctP};
