//! Minimal fork/join helpers over `std::thread::scope`.
//!
//! The workspace is offline (no rayon), but the expensive
//! `OverlayBuilder` stages — per-host embedding solves, MST edge
//! scans, HFC border election, Dijkstra row fills — are all
//! embarrassingly parallel over a contiguous index range. This crate
//! provides exactly that shape and nothing else: split `0..n` into
//! per-thread chunks, run a closure per chunk on scoped threads, and
//! concatenate the results **in range order**, so the output is
//! bit-identical to a sequential left-to-right pass regardless of
//! thread count or scheduling.
//!
//! # Example
//!
//! ```
//! let squares = son_par::par_map_chunks(4, 10, |range| {
//!     range.map(|i| i * i).collect::<Vec<_>>()
//! });
//! assert_eq!(squares, (0..10).map(|i| i * i).collect::<Vec<_>>());
//! ```

use std::ops::Range;

/// Resolves a requested thread count: `0` means "use the machine",
/// anything else is taken literally (minimum 1).
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Splits `0..n` into at most `threads` contiguous chunks of
/// near-equal size (first chunks one longer when `n % threads != 0`).
/// Empty ranges are never produced.
pub fn chunk_ranges(threads: usize, n: usize) -> Vec<Range<usize>> {
    let threads = effective_threads(threads).min(n.max(1));
    let base = n / threads;
    let extra = n % threads;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0;
    for t in 0..threads {
        let len = base + usize::from(t < extra);
        if len == 0 {
            continue;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Maps `f` over contiguous chunks of `0..n` on scoped threads and
/// concatenates the per-chunk results in range order.
///
/// With `threads <= 1` (or `n <= 1`) this is a plain sequential call —
/// no threads are spawned — so callers get one code path whose output
/// is independent of the thread count by construction, provided `f`
/// itself only depends on the indices it is handed.
pub fn par_map_chunks<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> Vec<R> + Sync,
{
    let threads = effective_threads(threads);
    if threads <= 1 || n <= 1 {
        return f(0..n);
    }
    let ranges = chunk_ranges(threads, n);
    if ranges.len() <= 1 {
        return f(0..n);
    }
    let mut parts: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| scope.spawn(|| f(range)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(n);
    for part in parts.iter_mut() {
        out.append(part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_resolves_zero() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
        assert_eq!(effective_threads(1), 1);
    }

    #[test]
    fn chunks_cover_the_range_in_order() {
        for threads in 1..6 {
            for n in 0..20 {
                let ranges = chunk_ranges(threads, n);
                let flat: Vec<usize> = ranges.iter().cloned().flatten().collect();
                assert_eq!(flat, (0..n).collect::<Vec<_>>(), "t={threads} n={n}");
                assert!(ranges.iter().all(|r| !r.is_empty()));
                assert!(ranges.len() <= threads.max(1));
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let work = |range: Range<usize>| range.map(|i| i * 7 + 1).collect::<Vec<_>>();
        let seq = par_map_chunks(1, 100, work);
        for threads in [2, 3, 8, 64] {
            assert_eq!(par_map_chunks(threads, 100, work), seq);
        }
    }

    #[test]
    fn variable_length_chunk_outputs_concatenate() {
        // Each index yields a different number of outputs; order must
        // still match the sequential pass.
        let work = |range: Range<usize>| {
            let mut out = Vec::new();
            for i in range {
                for k in 0..(i % 3) {
                    out.push((i, k));
                }
            }
            out
        };
        assert_eq!(par_map_chunks(4, 50, work), par_map_chunks(1, 50, work));
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let work = |range: Range<usize>| range.collect::<Vec<_>>();
        assert_eq!(par_map_chunks(8, 0, work), Vec::<usize>::new());
        assert_eq!(par_map_chunks(8, 1, work), vec![0]);
    }
}
