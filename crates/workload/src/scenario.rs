//! Flash-crowd and failure scenarios: phased workloads for the
//! overload benchmarks.
//!
//! A [`Scenario`] is an ordered list of [`ScenarioPhase`]s. Each phase
//! carries the requests to serve plus the health events (crashes and
//! restarts) to apply *before* serving it, so a driver replays the
//! scenario as: apply events, serve batch, record, next phase. Three
//! canonical shapes are provided:
//!
//! - [`Scenario::regional_surge`] — a flash crowd: baseline traffic,
//!   then a burst whose sources all sit in one region, then cooldown.
//! - [`Scenario::hot_key_flip`] — a popularity inversion mid-run: the
//!   Zipf head moves to formerly-cold requests, defeating any cache
//!   warmed on the old head.
//! - [`Scenario::rolling_crashes`] — sustained load while proxies
//!   crash one per phase and the previous victim restarts.
//!
//! Everything is seeded and deterministic: the same inputs produce the
//! same phases, so benchmark runs are reproducible.

use crate::zipf::zipf_request_mix;
use son_overlay::{ProxyId, ServiceRequest};

/// One step of a scenario: health events, then a request batch.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioPhase {
    /// Human-readable phase label (e.g. `"surge"`).
    pub name: String,
    /// Proxies that go `Down` at the start of this phase.
    pub crashes: Vec<ProxyId>,
    /// Proxies that come back `Up` at the start of this phase.
    pub restarts: Vec<ProxyId>,
    /// The requests served during this phase.
    pub requests: Vec<ServiceRequest>,
}

impl ScenarioPhase {
    fn quiet(name: impl Into<String>, requests: Vec<ServiceRequest>) -> Self {
        ScenarioPhase {
            name: name.into(),
            crashes: Vec::new(),
            restarts: Vec::new(),
            requests,
        }
    }
}

/// A phased workload with health events. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario label (e.g. `"regional-surge"`).
    pub name: String,
    /// The phases, in replay order.
    pub phases: Vec<ScenarioPhase>,
}

impl Scenario {
    /// Total number of requests across all phases.
    pub fn request_count(&self) -> usize {
        self.phases.iter().map(|p| p.requests.len()).sum()
    }

    /// A flash crowd out of one region: a `baseline`-sized Zipf(`s`)
    /// warm-up, a `surge`-sized burst whose *sources* are rewritten
    /// round-robin onto `surge_sources` (everyone in that region asks
    /// at once), then a `baseline`-sized cooldown.
    ///
    /// # Panics
    ///
    /// Panics if `pool` or `surge_sources` is empty.
    pub fn regional_surge(
        pool: &[ServiceRequest],
        surge_sources: &[ProxyId],
        baseline: usize,
        surge: usize,
        s: f64,
        seed: u64,
    ) -> Scenario {
        assert!(!surge_sources.is_empty(), "surge region has no proxies");
        let warmup = zipf_request_mix(pool, baseline, s, seed);
        let burst: Vec<ServiceRequest> = zipf_request_mix(pool, surge, s, seed ^ 0x5ca1e)
            .into_iter()
            .enumerate()
            .map(|(i, mut r)| {
                r.source = surge_sources[i % surge_sources.len()];
                if r.destination == r.source {
                    // Keep source != destination (as the generator does).
                    r.destination = surge_sources[(i + 1) % surge_sources.len()];
                }
                r
            })
            .collect();
        let cooldown = zipf_request_mix(pool, baseline, s, seed ^ 0xc001);
        Scenario {
            name: "regional-surge".into(),
            phases: vec![
                ScenarioPhase::quiet("warmup", warmup),
                ScenarioPhase::quiet("surge", burst),
                ScenarioPhase::quiet("cooldown", cooldown),
            ],
        }
    }

    /// A mid-run popularity inversion: phase one draws Zipf(`s`) over
    /// `pool` as ranked; phase two re-ranks the pool rotated by half,
    /// so the former tail becomes the new head and a cache warmed on
    /// the old head goes cold at once.
    ///
    /// # Panics
    ///
    /// Panics if `pool` is empty.
    pub fn hot_key_flip(pool: &[ServiceRequest], per_phase: usize, s: f64, seed: u64) -> Scenario {
        assert!(!pool.is_empty(), "request pool is empty");
        let before = zipf_request_mix(pool, per_phase, s, seed);
        let mut flipped = pool.to_vec();
        flipped.rotate_left(pool.len() / 2);
        let after = zipf_request_mix(&flipped, per_phase, s, seed ^ 0xf11b);
        Scenario {
            name: "hot-key-flip".into(),
            phases: vec![
                ScenarioPhase::quiet("head", before),
                ScenarioPhase::quiet("flipped", after),
            ],
        }
    }

    /// Sustained Zipf(`s`) load while `victims` crash one per phase:
    /// phase `k` crashes `victims[k]` and restarts `victims[k - 1]`,
    /// and a final phase restarts the last victim — so at most one
    /// victim is down at a time, under continuous load.
    ///
    /// # Panics
    ///
    /// Panics if `pool` or `victims` is empty.
    pub fn rolling_crashes(
        pool: &[ServiceRequest],
        victims: &[ProxyId],
        per_phase: usize,
        s: f64,
        seed: u64,
    ) -> Scenario {
        assert!(!victims.is_empty(), "no victims to crash");
        let mut phases = Vec::with_capacity(victims.len() + 1);
        for (k, &victim) in victims.iter().enumerate() {
            phases.push(ScenarioPhase {
                name: format!("crash-{victim}"),
                crashes: vec![victim],
                restarts: if k > 0 {
                    vec![victims[k - 1]]
                } else {
                    Vec::new()
                },
                requests: zipf_request_mix(pool, per_phase, s, seed.wrapping_add(k as u64)),
            });
        }
        phases.push(ScenarioPhase {
            name: "recovered".into(),
            crashes: Vec::new(),
            restarts: vec![*victims.last().expect("non-empty")],
            requests: zipf_request_mix(pool, per_phase, s, seed.wrapping_add(victims.len() as u64)),
        });
        Scenario {
            name: "rolling-crashes".into(),
            phases,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_requests, RequestProfile};

    fn pool() -> Vec<ServiceRequest> {
        generate_requests(40, 30, 20, &RequestProfile::default(), 3)
    }

    #[test]
    fn regional_surge_rewrites_burst_sources() {
        let region: Vec<ProxyId> = (0..5).map(ProxyId::new).collect();
        let scenario = Scenario::regional_surge(&pool(), &region, 50, 200, 0.9, 7);
        assert_eq!(scenario.phases.len(), 3);
        assert_eq!(scenario.request_count(), 300);
        let surge = &scenario.phases[1];
        assert_eq!(surge.name, "surge");
        for r in &surge.requests {
            assert!(region.contains(&r.source), "{:?} not in region", r.source);
            assert_ne!(r.source, r.destination);
        }
        // Warm-up traffic is unmodified pool traffic.
        let base = pool();
        for r in &scenario.phases[0].requests {
            assert!(base.contains(r));
        }
    }

    #[test]
    fn hot_key_flip_changes_the_head() {
        let base = pool();
        let scenario = Scenario::hot_key_flip(&base, 300, 1.0, 11);
        assert_eq!(scenario.phases.len(), 2);
        let count = |requests: &[ServiceRequest], key: &ServiceRequest| {
            requests.iter().filter(|r| *r == key).count()
        };
        // The old head dominates phase one and fades in phase two,
        // where the rotated head (old middle) takes over.
        let old_head = &base[0];
        let new_head = &base[base.len() / 2];
        let before = &scenario.phases[0].requests;
        let after = &scenario.phases[1].requests;
        assert!(count(before, old_head) > count(after, old_head));
        assert!(count(after, new_head) > count(before, new_head));
    }

    #[test]
    fn rolling_crashes_keep_one_victim_down() {
        let victims: Vec<ProxyId> = [4, 9, 17].into_iter().map(ProxyId::new).collect();
        let scenario = Scenario::rolling_crashes(&pool(), &victims, 60, 0.9, 5);
        assert_eq!(scenario.phases.len(), 4);
        let mut down: Vec<ProxyId> = Vec::new();
        for phase in &scenario.phases {
            for r in &phase.restarts {
                down.retain(|p| p != r);
            }
            down.extend(&phase.crashes);
            assert!(down.len() <= 1, "{down:?} down at once in {}", phase.name);
            assert_eq!(phase.requests.len(), 60);
        }
        assert!(down.is_empty(), "everyone restarts by the end: {down:?}");
    }

    #[test]
    fn scenarios_are_seeded() {
        let base = pool();
        let region = [ProxyId::new(1)];
        assert_eq!(
            Scenario::regional_surge(&base, &region, 10, 20, 0.9, 1),
            Scenario::regional_surge(&base, &region, 10, 20, 0.9, 1)
        );
        assert_ne!(
            Scenario::hot_key_flip(&base, 50, 0.9, 1),
            Scenario::hot_key_flip(&base, 50, 0.9, 2)
        );
    }
}
