//! Zipf-skewed request popularity.
//!
//! Measured overlay and CDN traffic is never uniform: a few requests
//! dominate (Gürsun's server-ranking work builds on exactly this
//! locality). The serving benchmarks model it the standard way — a
//! Zipf(s) distribution over a pool of distinct requests, so request
//! rank `k` is drawn with probability proportional to `1/k^s`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use son_overlay::ServiceRequest;

/// A Zipf(s) sampler over ranks `0..n` (rank 0 most popular):
/// `P(rank k) ∝ 1/(k+1)^s`. Sampling is a binary search over the
/// precomputed CDF, so draws cost `O(log n)`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution over `n` ranks with exponent `s`.
    /// `s = 0` degenerates to uniform; larger `s` skews harder
    /// (web-style workloads are usually cited near `s ≈ 0.8–1.0`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "a Zipf distribution needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "exponent {s} invalid");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(total);
        }
        for w in &mut cdf {
            *w /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the distribution has no ranks (never: `new`
    /// rejects `n = 0`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..len()`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Draws `count` requests from `pool` with Zipf(`s`) popularity: pool
/// position is popularity rank (position 0 the most requested). This is
/// the serving benchmark's request mix — repeated popular requests are
/// exactly what a route cache is for.
///
/// # Panics
///
/// Panics if `pool` is empty (via [`Zipf::new`]).
pub fn zipf_request_mix(
    pool: &[ServiceRequest],
    count: usize,
    s: f64,
    seed: u64,
) -> Vec<ServiceRequest> {
    let zipf = Zipf::new(pool.len(), s);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| pool[zipf.sample(&mut rng)].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_requests, RequestProfile};

    fn histogram(n: usize, s: f64, draws: usize) -> Vec<usize> {
        let zipf = Zipf::new(n, s);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; n];
        for _ in 0..draws {
            counts[zipf.sample(&mut rng)] += 1;
        }
        counts
    }

    #[test]
    fn samples_stay_in_range_and_skew_toward_low_ranks() {
        let counts = histogram(50, 1.0, 20_000);
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
        // Rank 0 gets ~1/H_50 ≈ 22% of draws; the tail rank gets ~0.4%.
        assert!(counts[0] > counts[49] * 10, "{counts:?}");
        // Monotone-ish: the top rank beats the middle one.
        assert!(counts[0] > counts[25]);
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let counts = histogram(10, 0.0, 20_000);
        for &c in &counts {
            assert!((1_600..=2_400).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn mix_repeats_popular_requests() {
        let profile = RequestProfile::default();
        let pool = generate_requests(40, 30, 60, &profile, 3);
        let mix = zipf_request_mix(&pool, 400, 0.9, 4);
        assert_eq!(mix.len(), 400);
        // Every drawn request is from the pool, and the top-ranked one
        // recurs far above its uniform share of 10.
        let top = mix.iter().filter(|r| **r == pool[0]).count();
        assert!(top > 30, "top request drawn only {top} times");
        for r in &mix {
            assert!(pool.contains(r));
        }
    }

    #[test]
    fn sampling_is_seeded() {
        let profile = RequestProfile::default();
        let pool = generate_requests(10, 10, 20, &profile, 1);
        assert_eq!(
            zipf_request_mix(&pool, 50, 1.0, 5),
            zipf_request_mix(&pool, 50, 1.0, 5)
        );
        assert_ne!(
            zipf_request_mix(&pool, 50, 1.0, 5),
            zipf_request_mix(&pool, 50, 1.0, 6)
        );
    }

    /// Pearson's χ² statistic of an observed histogram against the
    /// sampler's own CDF-derived expected counts.
    fn chi_square(counts: &[usize], n: usize, s: f64, draws: usize) -> f64 {
        let zipf = Zipf::new(n, s);
        let mut chi2 = 0.0;
        let mut prev = 0.0;
        for (k, &observed) in counts.iter().enumerate() {
            let p = zipf.cdf[k] - prev;
            prev = zipf.cdf[k];
            let expected = p * draws as f64;
            chi2 += (observed as f64 - expected).powi(2) / expected;
        }
        chi2
    }

    #[test]
    fn frequency_distribution_matches_the_zipf_pmf() {
        // χ² goodness-of-fit against the exact PMF. With n−1 = 19
        // degrees of freedom the 99.9th percentile is ≈ 43.8; a correct
        // sampler lands far below, a rank-shifted or un-normalized one
        // blows past it (tested below). Bound kept loose so the test is
        // seed-robust, tight enough to catch real bias.
        for s in [0.0, 0.5, 0.9, 1.2] {
            let draws = 200_000;
            let counts = histogram(20, s, draws);
            let chi2 = chi_square(&counts, 20, s, draws);
            assert!(chi2 < 43.8, "s={s}: chi2={chi2:.1}, counts={counts:?}");
        }
    }

    #[test]
    fn chi_square_detects_a_wrong_distribution() {
        // Sanity-check the statistic itself: samples drawn from
        // Zipf(1.2) compared against Zipf(0.0) expectations must fail
        // the same bound by a wide margin.
        let draws = 200_000;
        let counts = histogram(20, 1.2, draws);
        let chi2 = chi_square(&counts, 20, 0.0, draws);
        assert!(chi2 > 1_000.0, "mismatched PMF only scored {chi2:.1}");
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_pool_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
