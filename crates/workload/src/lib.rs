//! # son-workload
//!
//! Workload and environment generation reproducing the paper's
//! simulation settings (Section 6, Table 1):
//!
//! | physical topology | landmarks | proxies | clients | services/proxy | request length |
//! |-------------------|-----------|---------|---------|----------------|----------------|
//! | 300               | 10        | 250     | 40      | 4–10           | 4–10           |
//! | 600               | 10        | 500     | 90      | 4–10           | 4–10           |
//! | 900               | 10        | 750     | 140     | 4–10           | 4–10           |
//! | 1200              | 10        | 1000    | 120     | 4–10           | 4–10           |
//!
//! The paper does not state the size of the service universe; we default
//! to 60 named services, which yields realistic provider densities
//! (each service offered by roughly 10% of proxies).

pub mod env;
pub mod generate;
pub mod scenario;
pub mod unique;
pub mod zipf;

pub use env::{table1_environments, Environment};
pub use generate::{
    assign_qos, assign_services, generate_requests, place_proxies, place_proxies_excluding,
    RequestProfile,
};
pub use scenario::{Scenario, ScenarioPhase};
pub use unique::NonRepeatingWorkload;
pub use zipf::{zipf_request_mix, Zipf};
