//! Random placement of proxies, services and requests.

use crate::env::Environment;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use son_netsim::graph::NodeId;
use son_netsim::topology::PhysicalNetwork;
use son_overlay::{ProxyId, QosProfile, ServiceGraph, ServiceId, ServiceRequest, ServiceSet};

/// Attaches `count` proxies to distinct random stub nodes of `net`.
///
/// # Panics
///
/// Panics if the topology has fewer stub nodes than `count`.
pub fn place_proxies(net: &PhysicalNetwork, count: usize, seed: u64) -> Vec<NodeId> {
    place_proxies_excluding(net, count, &[], seed)
}

/// Like [`place_proxies`], but never selects a node in `exclude` —
/// used to keep landmarks out of the proxy set (the paper's landmarks
/// "will not participate in any other activities").
///
/// # Panics
///
/// Panics if fewer than `count` eligible stub nodes remain.
pub fn place_proxies_excluding(
    net: &PhysicalNetwork,
    count: usize,
    exclude: &[NodeId],
    seed: u64,
) -> Vec<NodeId> {
    let mut stubs: Vec<NodeId> = net
        .stub_nodes()
        .into_iter()
        .filter(|n| !exclude.contains(n))
        .collect();
    assert!(
        stubs.len() >= count,
        "topology has {} eligible stub nodes, cannot host {count} proxies",
        stubs.len()
    );
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..count {
        let j = rng.gen_range(i..stubs.len());
        stubs.swap(i, j);
    }
    stubs.truncate(count);
    stubs
}

/// Installs a random service set on each of `proxies` proxies: a
/// uniform count in `per_proxy` (inclusive), drawn without replacement
/// from a universe of `universe` services.
///
/// # Panics
///
/// Panics if the range is inverted or exceeds the universe.
pub fn assign_services(
    proxies: usize,
    universe: usize,
    per_proxy: (usize, usize),
    seed: u64,
) -> Vec<ServiceSet> {
    let (lo, hi) = per_proxy;
    assert!(lo <= hi, "services-per-proxy range inverted");
    assert!(
        hi <= universe,
        "cannot install {hi} distinct services from a universe of {universe}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool: Vec<usize> = (0..universe).collect();
    (0..proxies)
        .map(|_| {
            let k = rng.gen_range(lo..=hi);
            for i in 0..k {
                let j = rng.gen_range(i..pool.len());
                pool.swap(i, j);
            }
            pool[..k].iter().map(|&s| ServiceId::new(s)).collect()
        })
        .collect()
}

/// Assigns each proxy a random QoS profile: bandwidth log-uniform in
/// 10–1000 Mbit/s, load uniform in `[0, 1)`, volatility uniform in
/// `[0, 0.3)`.
pub fn assign_qos(proxies: usize, seed: u64) -> Vec<QosProfile> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..proxies)
        .map(|_| {
            let bw = 10.0f64 * 100.0f64.powf(rng.gen::<f64>());
            QosProfile::new(bw, rng.gen::<f64>(), rng.gen::<f64>() * 0.3)
        })
        .collect()
}

/// Shape of generated requests.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestProfile {
    /// Inclusive range of chain lengths.
    pub length: (usize, usize),
    /// Fraction of requests given a non-linear service graph (a second
    /// source branch merging into the chain, as in the paper's
    /// Figure 2(b)). The paper's tests use linear graphs; keep 0.0 to
    /// match.
    pub nonlinear_fraction: f64,
}

impl Default for RequestProfile {
    fn default() -> Self {
        RequestProfile {
            length: (4, 10),
            nonlinear_fraction: 0.0,
        }
    }
}

impl RequestProfile {
    /// The profile implied by an [`Environment`].
    pub fn from_environment(env: &Environment) -> Self {
        RequestProfile {
            length: env.request_length,
            nonlinear_fraction: 0.0,
        }
    }
}

/// Generates `count` random service requests over `proxies` proxies and
/// a universe of `universe` services.
///
/// Source and destination proxies are distinct when `proxies > 1`.
/// Service chains may repeat a service (two stages demanding the same
/// name), mirroring e.g. "compress, edit, compress again".
///
/// # Panics
///
/// Panics if `proxies == 0`, `universe == 0`, or the length range is
/// inverted.
pub fn generate_requests(
    count: usize,
    proxies: usize,
    universe: usize,
    profile: &RequestProfile,
    seed: u64,
) -> Vec<ServiceRequest> {
    assert!(proxies > 0, "need at least one proxy");
    assert!(universe > 0, "need at least one service");
    let (lo, hi) = profile.length;
    assert!(lo <= hi, "request length range inverted");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let source = ProxyId::new(rng.gen_range(0..proxies));
            let destination = loop {
                let d = ProxyId::new(rng.gen_range(0..proxies));
                if d != source || proxies == 1 {
                    break d;
                }
            };
            let len = rng.gen_range(lo..=hi);
            let chain: Vec<ServiceId> = (0..len)
                .map(|_| ServiceId::new(rng.gen_range(0..universe)))
                .collect();
            let graph = if len >= 2 && rng.gen_bool(profile.nonlinear_fraction) {
                nonlinear_variant(&chain, &mut rng, universe)
            } else {
                ServiceGraph::linear(chain)
            };
            ServiceRequest::new(source, graph, destination)
        })
        .collect()
}

/// Builds a Figure 2(b)-style graph: the base chain plus one extra
/// source stage that can substitute for the chain's head.
fn nonlinear_variant(chain: &[ServiceId], rng: &mut StdRng, universe: usize) -> ServiceGraph {
    let mut builder = ServiceGraph::builder();
    for &s in chain {
        builder = builder.stage(s);
    }
    for i in 1..chain.len() {
        builder = builder.edge(i - 1, i);
    }
    // Extra alternative head: a fresh stage feeding stage 1.
    let alt = ServiceId::new(rng.gen_range(0..universe));
    builder = builder.stage(alt).edge(chain.len(), 1);
    builder.build().expect("generated graphs are acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use son_netsim::topology::TransitStubConfig;

    #[test]
    fn proxies_are_distinct_stub_nodes() {
        let net = PhysicalNetwork::generate(&TransitStubConfig::default());
        let proxies = place_proxies(&net, 50, 1);
        assert_eq!(proxies.len(), 50);
        let mut sorted = proxies.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 50, "duplicates found");
        for p in &proxies {
            assert!(net.kinds()[p.index()].is_stub());
        }
    }

    #[test]
    fn placement_is_seeded() {
        let net = PhysicalNetwork::generate(&TransitStubConfig::default());
        assert_eq!(place_proxies(&net, 20, 7), place_proxies(&net, 20, 7));
        assert_ne!(place_proxies(&net, 20, 7), place_proxies(&net, 20, 8));
    }

    #[test]
    fn service_counts_respect_range() {
        let sets = assign_services(200, 60, (4, 10), 3);
        assert_eq!(sets.len(), 200);
        for set in &sets {
            assert!((4..=10).contains(&set.len()), "{} services", set.len());
            for s in set.iter() {
                assert!(s.index() < 60);
            }
        }
        // Both extremes appear over 200 draws.
        assert!(sets.iter().any(|s| s.len() == 4));
        assert!(sets.iter().any(|s| s.len() == 10));
    }

    #[test]
    fn requests_are_well_formed() {
        let profile = RequestProfile {
            length: (4, 10),
            nonlinear_fraction: 0.0,
        };
        let requests = generate_requests(100, 50, 60, &profile, 5);
        assert_eq!(requests.len(), 100);
        for r in &requests {
            assert_ne!(r.source, r.destination);
            assert!(r.source.index() < 50 && r.destination.index() < 50);
            let len = r.graph.len();
            assert!((4..=10).contains(&len));
            assert!(r.graph.is_linear());
        }
    }

    #[test]
    fn nonlinear_fraction_produces_branches() {
        let profile = RequestProfile {
            length: (3, 5),
            nonlinear_fraction: 1.0,
        };
        let requests = generate_requests(20, 10, 20, &profile, 9);
        for r in &requests {
            assert!(!r.graph.is_linear());
            assert_eq!(r.graph.sources().len(), 2);
            // Every configuration still ends at the chain's sink.
            let sinks = r.graph.sinks();
            assert_eq!(sinks.len(), 1);
            for config in r.graph.configurations() {
                assert_eq!(config.last(), sinks.first());
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let profile = RequestProfile::default();
        let a = generate_requests(10, 20, 30, &profile, 11);
        let b = generate_requests(10, 20, 30, &profile, 11);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "cannot host")]
    fn too_many_proxies_panics() {
        let net = PhysicalNetwork::generate(&TransitStubConfig::default());
        let _ = place_proxies(&net, net.len() + 1, 0);
    }
}

#[cfg(test)]
mod exclusion_tests {
    use super::*;
    use son_netsim::topology::TransitStubConfig;

    #[test]
    fn exclusions_are_respected() {
        let net = PhysicalNetwork::generate(&TransitStubConfig::default());
        let stubs = net.stub_nodes();
        let exclude = &stubs[..10];
        let proxies = place_proxies_excluding(&net, 40, exclude, 2);
        for p in &proxies {
            assert!(!exclude.contains(p));
        }
    }

    #[test]
    #[should_panic(expected = "eligible stub nodes")]
    fn too_few_eligible_panics() {
        let net = PhysicalNetwork::generate(&TransitStubConfig::default());
        let stubs = net.stub_nodes();
        let _ = place_proxies_excluding(&net, stubs.len(), &stubs[..1], 0);
    }
}

#[cfg(test)]
mod qos_tests {
    use super::*;

    #[test]
    fn qos_profiles_are_in_range() {
        let profiles = assign_qos(200, 4);
        assert_eq!(profiles.len(), 200);
        for p in &profiles {
            assert!((10.0..=1000.0).contains(&p.bandwidth_mbps));
            assert!((0.0..1.0).contains(&p.load));
            assert!((0.0..0.3).contains(&p.volatility));
        }
        // The spread is real: both slow and fast machines exist.
        assert!(profiles.iter().any(|p| p.bandwidth_mbps < 50.0));
        assert!(profiles.iter().any(|p| p.bandwidth_mbps > 500.0));
    }

    #[test]
    fn qos_assignment_is_seeded() {
        assert_eq!(assign_qos(10, 1), assign_qos(10, 1));
        assert_ne!(assign_qos(10, 1), assign_qos(10, 2));
    }
}
