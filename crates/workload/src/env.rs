//! Simulation environments (the paper's Table 1).

/// One simulation environment: the sizes of everything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Environment {
    /// Number of nodes in the physical (transit-stub) topology.
    pub physical_nodes: usize,
    /// Number of landmark nodes for the coordinate embedding.
    pub landmarks: usize,
    /// Number of overlay proxies.
    pub proxies: usize,
    /// Number of clients issuing requests.
    pub clients: usize,
    /// Inclusive range of services installed per proxy.
    pub services_per_proxy: (usize, usize),
    /// Inclusive range of service-request lengths.
    pub request_length: (usize, usize),
    /// Size of the universe of distinct named services (not given in
    /// the paper; see crate docs).
    pub service_universe: usize,
    /// Base RNG seed; every derived generator seeds from this.
    pub seed: u64,
}

impl Environment {
    /// The Table 1 row for a given proxy count (250, 500, 750 or 1000).
    ///
    /// # Panics
    ///
    /// Panics for any other proxy count.
    pub fn table1(proxies: usize, seed: u64) -> Self {
        let (physical_nodes, clients) = match proxies {
            250 => (300, 40),
            500 => (600, 90),
            750 => (900, 140),
            1000 => (1200, 120),
            other => panic!("no Table 1 row for {other} proxies"),
        };
        Environment {
            physical_nodes,
            landmarks: 10,
            proxies,
            clients,
            services_per_proxy: (4, 10),
            request_length: (4, 10),
            service_universe: 60,
            seed,
        }
    }

    /// An environment for an arbitrary proxy count: the Table 1 row
    /// when one exists, otherwise Table 1's proportions extrapolated
    /// (≈1.2 physical nodes and ≈1/6 clients per proxy, 10 landmarks).
    /// This is the canonical shape for scale sweeps beyond 1000
    /// proxies.
    pub fn scaled(proxies: usize, seed: u64) -> Self {
        if matches!(proxies, 250 | 500 | 750 | 1000) {
            return Self::table1(proxies, seed);
        }
        Environment {
            physical_nodes: (proxies * 6 / 5).max(60),
            landmarks: 10.min(proxies / 2).max(3),
            proxies,
            clients: (proxies / 6).max(2),
            services_per_proxy: (4, 10),
            request_length: (4, 10),
            service_universe: 60,
            seed,
        }
    }

    /// A scaled-down environment for quick tests (not from the paper).
    pub fn small(seed: u64) -> Self {
        Environment {
            physical_nodes: 120,
            landmarks: 8,
            proxies: 60,
            clients: 10,
            services_per_proxy: (3, 6),
            request_length: (2, 5),
            service_universe: 20,
            seed,
        }
    }
}

/// All four Table 1 environments, in increasing size.
pub fn table1_environments(seed: u64) -> Vec<Environment> {
    [250, 500, 750, 1000]
        .into_iter()
        .map(|p| Environment::table1(p, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper() {
        let envs = table1_environments(0);
        assert_eq!(envs.len(), 4);
        let rows: Vec<(usize, usize, usize, usize)> = envs
            .iter()
            .map(|e| (e.physical_nodes, e.landmarks, e.proxies, e.clients))
            .collect();
        assert_eq!(
            rows,
            vec![
                (300, 10, 250, 40),
                (600, 10, 500, 90),
                (900, 10, 750, 140),
                (1200, 10, 1000, 120),
            ]
        );
        for e in &envs {
            assert_eq!(e.services_per_proxy, (4, 10));
            assert_eq!(e.request_length, (4, 10));
        }
    }

    #[test]
    #[should_panic(expected = "no Table 1 row")]
    fn unknown_row_panics() {
        let _ = Environment::table1(123, 0);
    }

    #[test]
    fn scaled_extrapolates_table1_proportions() {
        assert_eq!(Environment::scaled(500, 7), Environment::table1(500, 7));
        let e = Environment::scaled(10_000, 7);
        assert_eq!(e.physical_nodes, 12_000);
        assert_eq!(e.landmarks, 10);
        assert_eq!(e.clients, 1_666);
        let tiny = Environment::scaled(8, 7);
        assert_eq!(tiny.landmarks, 4);
        assert!(tiny.physical_nodes >= tiny.proxies);
    }
}
