//! Non-repeating request workloads for honest cache benchmarks.
//!
//! A Zipf mix over a fixed request pool ([`crate::zipf`]) repeats the
//! exact same requests, so an exact-key route cache makes any engine
//! look fast — the benchmark measures the cache, not the router. The
//! [`NonRepeatingWorkload`] keeps the *popularity structure* (a Zipf
//! distribution over cluster-level request **shapes**) while
//! guaranteeing that no two emitted requests share an exact key:
//! every draw of a shape steps a cursor through that shape's
//! never-repeating (source, destination) pairs.
//!
//! A *shape* is `(source cluster, destination cluster, service chain)`
//! with distinct clusters — exactly the granularity at which the
//! engine's CSP frontier tier can reuse work. An exact-key cache sees
//! 0% hits on this workload; a shape-level cache sees the Zipf skew.

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use son_overlay::{ProxyId, ServiceGraph, ServiceId, ServiceRequest};

/// One cluster-level request shape and its pair cursor.
#[derive(Debug, Clone)]
struct Shape {
    sources: Vec<ProxyId>,
    dests: Vec<ProxyId>,
    chain: Vec<ServiceId>,
    /// Next unused (source, destination) pair, encoded as
    /// `i * dests.len() + j`.
    cursor: usize,
}

impl Shape {
    fn capacity(&self) -> usize {
        self.sources.len() * self.dests.len()
    }

    fn remaining(&self) -> usize {
        self.capacity() - self.cursor
    }

    fn emit(&mut self) -> ServiceRequest {
        let i = self.cursor / self.dests.len();
        let j = self.cursor % self.dests.len();
        self.cursor += 1;
        ServiceRequest::new(
            self.sources[i],
            ServiceGraph::linear(self.chain.clone()),
            self.dests[j],
        )
    }
}

/// A Zipf-skewed request stream that never repeats an exact request.
///
/// Built from cluster membership lists and a universe of service
/// chains, it draws `shape_count` distinct shapes (source cluster ≠
/// destination cluster), ranks them by popularity, and answers each
/// [`next_request`](Self::next_request) by Zipf-sampling a shape and
/// emitting its next unused endpoint pair. A shape whose pairs are
/// exhausted is resampled (rejection), which mildly flattens the very
/// top of the distribution only once shapes start running dry — size
/// the workload below capacity when the skew itself is under test.
///
/// # Panics
///
/// `next_request` panics when every shape is exhausted: the stream has
/// emitted all distinct requests it can and continuing would repeat
/// one, which is exactly what this generator exists to never do.
#[derive(Debug, Clone)]
pub struct NonRepeatingWorkload {
    shapes: Vec<Shape>,
    zipf: Zipf,
    rng: StdRng,
    draws: Vec<u64>,
    remaining: usize,
}

impl NonRepeatingWorkload {
    /// Builds a workload over `clusters` (member lists, index =
    /// cluster id) and `chains` (the service-chain universe, each
    /// non-empty), with `shape_count` distinct shapes skewed by
    /// Zipf(`s`).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two non-empty clusters exist, any chain is
    /// empty, or `shape_count` exceeds the number of distinct shapes.
    pub fn new(
        clusters: &[Vec<ProxyId>],
        chains: &[Vec<ServiceId>],
        shape_count: usize,
        s: f64,
        seed: u64,
    ) -> Self {
        let populated: Vec<usize> = (0..clusters.len())
            .filter(|&c| !clusters[c].is_empty())
            .collect();
        assert!(
            populated.len() >= 2,
            "need two non-empty clusters for cross-cluster shapes"
        );
        assert!(
            chains.iter().all(|c| !c.is_empty()),
            "empty service chains have no shape"
        );
        // Shapes are distinct by chain *content*, not universe index —
        // a universe listing the same chain twice must not yield two
        // shapes that would emit identical requests.
        let mut distinct_chains: Vec<&Vec<ServiceId>> = Vec::new();
        for chain in chains {
            if !distinct_chains.contains(&chain) {
                distinct_chains.push(chain);
            }
        }
        let possible = populated.len() * (populated.len() - 1) * distinct_chains.len();
        assert!(
            shape_count <= possible,
            "only {possible} distinct shapes exist, cannot draw {shape_count}"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut chosen: Vec<(usize, usize, usize)> = Vec::with_capacity(shape_count);
        while chosen.len() < shape_count {
            let src = populated[rng.gen_range(0..populated.len())];
            let dst = populated[rng.gen_range(0..populated.len())];
            if src == dst {
                continue;
            }
            let chain = rng.gen_range(0..chains.len());
            let duplicate = chosen
                .iter()
                .any(|&(s2, d2, c2)| s2 == src && d2 == dst && chains[c2] == chains[chain]);
            if !duplicate {
                chosen.push((src, dst, chain));
            }
        }
        let shapes: Vec<Shape> = chosen
            .into_iter()
            .map(|(src, dst, chain)| Shape {
                sources: clusters[src].clone(),
                dests: clusters[dst].clone(),
                chain: chains[chain].clone(),
                cursor: 0,
            })
            .collect();
        let remaining = shapes.iter().map(Shape::capacity).sum();
        NonRepeatingWorkload {
            zipf: Zipf::new(shapes.len(), s),
            draws: vec![0; shapes.len()],
            shapes,
            rng,
            remaining,
        }
    }

    /// Number of shapes (popularity ranks).
    pub fn shape_count(&self) -> usize {
        self.shapes.len()
    }

    /// Distinct requests the stream can still emit.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// How many requests each shape (by popularity rank) has emitted —
    /// the observable for goodness-of-fit checks against the Zipf PMF.
    pub fn draws_per_shape(&self) -> &[u64] {
        &self.draws
    }

    /// Emits the next request: Zipf-sample a shape, step its cursor.
    /// Never returns a request whose (source, chain, destination)
    /// triple was emitted before.
    pub fn next_request(&mut self) -> ServiceRequest {
        assert!(
            self.remaining > 0,
            "non-repeating workload exhausted: every distinct request was emitted"
        );
        loop {
            let rank = self.zipf.sample(&mut self.rng);
            if self.shapes[rank].remaining() == 0 {
                continue;
            }
            self.draws[rank] += 1;
            self.remaining -= 1;
            return self.shapes[rank].emit();
        }
    }

    /// Emits the next `count` requests.
    ///
    /// # Panics
    ///
    /// Panics when `count` exceeds [`remaining`](Self::remaining).
    pub fn take(&mut self, count: usize) -> Vec<ServiceRequest> {
        (0..count).map(|_| self.next_request()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Two synthetic clusters of `per_cluster` proxies each.
    fn clusters(per_cluster: usize) -> Vec<Vec<ProxyId>> {
        vec![
            (0..per_cluster).map(ProxyId::new).collect(),
            (per_cluster..2 * per_cluster).map(ProxyId::new).collect(),
        ]
    }

    fn chains(count: usize) -> Vec<Vec<ServiceId>> {
        (0..count)
            .map(|k| vec![ServiceId::new(k), ServiceId::new(k + 1)])
            .collect()
    }

    fn key(r: &ServiceRequest) -> (usize, Vec<usize>, usize) {
        (
            r.source.index(),
            r.graph
                .configurations()
                .first()
                .expect("linear chains have one configuration")
                .iter()
                .map(|&stage| r.graph.service(stage).index())
                .collect(),
            r.destination.index(),
        )
    }

    #[test]
    fn never_emits_a_duplicate_exact_key() {
        let mut wl = NonRepeatingWorkload::new(&clusters(12), &chains(6), 10, 0.9, 3);
        let total = wl.remaining();
        // Drain the stream completely: every request distinct, sources
        // and destinations always in different clusters.
        let mut seen = HashSet::new();
        for _ in 0..total {
            let r = wl.next_request();
            assert!(r.source.index() < 12 || r.destination.index() < 12);
            assert!(r.source.index() >= 12 || r.destination.index() >= 12);
            assert!(seen.insert(key(&r)), "duplicate request emitted");
        }
        assert_eq!(seen.len(), total);
        assert_eq!(wl.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics_instead_of_repeating() {
        let mut wl = NonRepeatingWorkload::new(&clusters(2), &chains(1), 2, 0.9, 1);
        let total = wl.remaining();
        let _ = wl.take(total + 1);
    }

    #[test]
    fn stream_is_seeded() {
        let mk = |seed| {
            let mut wl = NonRepeatingWorkload::new(&clusters(10), &chains(4), 8, 0.9, seed);
            wl.take(500)
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
    }

    /// Pearson's χ² of the observed per-shape draw counts against the
    /// Zipf PMF the sampler claims to follow.
    fn chi_square(draws: &[u64], s: f64) -> f64 {
        let n = draws.len();
        let total: u64 = draws.iter().sum();
        let weights: Vec<f64> = (0..n).map(|k| 1.0 / ((k + 1) as f64).powf(s)).collect();
        let norm: f64 = weights.iter().sum();
        draws
            .iter()
            .zip(&weights)
            .map(|(&observed, w)| {
                let expected = w / norm * total as f64;
                (observed as f64 - expected).powi(2) / expected
            })
            .sum()
    }

    #[test]
    fn shape_skew_matches_the_zipf_pmf() {
        // 20 shapes over clusters of 400: each shape holds 160k
        // distinct pairs, so 200k draws exhaust nothing and the
        // rejection loop never engages — the draw histogram must match
        // the plain Zipf PMF. χ² 99.9th percentile at 19 degrees of
        // freedom is ≈ 43.8 (same bound as `crate::zipf`'s test).
        for s in [0.9, 1.2] {
            let mut wl = NonRepeatingWorkload::new(&clusters(400), &chains(10), 20, s, 11);
            for _ in 0..200_000 {
                let _ = wl.next_request();
            }
            let chi2 = chi_square(wl.draws_per_shape(), s);
            assert!(
                chi2 < 43.8,
                "s={s}: chi2={chi2:.1}, draws={:?}",
                wl.draws_per_shape()
            );
        }
    }

    #[test]
    fn top_shape_dominates_while_keys_stay_unique() {
        let mut wl = NonRepeatingWorkload::new(&clusters(50), &chains(8), 12, 1.0, 5);
        let batch = wl.take(3_000);
        let mut seen = HashSet::new();
        for r in &batch {
            assert!(seen.insert(key(r)));
        }
        let draws = wl.draws_per_shape();
        // Rank 0 carries ~1/H_12 ≈ 32% of the mix; the tail ~2.7%.
        assert!(draws[0] > draws[11] * 4, "{draws:?}");
    }
}
