//! The GNP landmark embedding itself.
//!
//! [`GnpEmbedding::compute`] performs the paper's three steps
//! (Section 3.1): measure landmark–landmark delays, embed the landmarks
//! into a `k`-dimensional space with minimum relative error, then solve
//! each host's coordinates against the fixed landmark positions. Both
//! minimizations use [`crate::neldermead`] with random restarts.

use crate::neldermead::{minimize, NelderMeadConfig};
use crate::space::Coordinates;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use son_netsim::graph::{DistanceTable, Graph, NodeId};
use son_netsim::measure::{DelayMeasurer, MeasureConfig};

/// Configuration of a GNP embedding run.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingConfig {
    /// Dimensionality `k` of the coordinate space (the paper uses 2).
    pub dims: usize,
    /// Delay measurement model (probes + noise).
    pub measure: MeasureConfig,
    /// Simplex minimizer settings.
    pub nelder_mead: NelderMeadConfig,
    /// Random restarts for the landmark fit (best kept).
    pub landmark_restarts: usize,
    /// Random restarts per host fit.
    pub host_restarts: usize,
    /// RNG seed for restart initialization.
    pub seed: u64,
    /// Worker threads for the per-host solving stage (`0` = all
    /// cores). The thread count never changes the result: every host
    /// draws its noise and restart jitter from its own seed-derived
    /// RNG, so `threads: 8` is bit-identical to `threads: 1`.
    pub threads: usize,
}

impl Default for EmbeddingConfig {
    fn default() -> Self {
        EmbeddingConfig {
            dims: 2,
            measure: MeasureConfig::default(),
            nelder_mead: NelderMeadConfig::default(),
            landmark_restarts: 4,
            host_restarts: 3,
            seed: 0,
            threads: 1,
        }
    }
}

/// Derives a per-host RNG seed from the base seed (splitmix64-style
/// finalizer — consecutive host indices must yield unrelated streams).
fn mix_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Summary statistics of relative prediction error
/// `|predicted − true| / true` over sampled host pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Mean relative error.
    pub mean: f64,
    /// Median relative error.
    pub median: f64,
    /// 90th-percentile relative error.
    pub p90: f64,
    /// Worst observed relative error.
    pub max: f64,
    /// Number of pairs sampled.
    pub samples: usize,
}

/// A computed set of network coordinates for landmarks and hosts.
///
/// Once built, the predicted delay between any two embedded nodes is
/// the Euclidean distance between their coordinates — no further
/// measurements needed, which is the entire point: `O(m² + nm)`
/// measurements yield an `O(n²)` distance map.
#[derive(Debug, Clone)]
pub struct GnpEmbedding {
    dims: usize,
    landmarks: Vec<NodeId>,
    coords: Vec<Option<Coordinates>>,
    landmark_fit_error: f64,
}

impl GnpEmbedding {
    /// Runs the full GNP procedure over `graph`.
    ///
    /// `landmarks` are the reference nodes; `hosts` are the nodes to
    /// embed (overlay proxies). Landmarks are embedded first from their
    /// pairwise measured delays; each host is then solved independently
    /// from its delays to the landmarks.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dims + 1` landmarks are given (the
    /// embedding would be under-constrained) or `dims == 0`.
    pub fn compute(
        graph: &Graph,
        landmarks: &[NodeId],
        hosts: &[NodeId],
        config: &EmbeddingConfig,
    ) -> Self {
        assert!(config.dims > 0, "need at least one dimension");
        assert!(
            landmarks.len() > config.dims,
            "need more than {} landmarks for a {}-D embedding",
            config.dims,
            config.dims
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let table = DistanceTable::new(graph, landmarks);
        let mut measurer = DelayMeasurer::new(table, config.measure.clone());

        // Step 1: landmark-landmark measured delays.
        let m = landmarks.len();
        let mut lm_delay = vec![vec![0.0f64; m]; m];
        let mut max_delay: f64 = 0.0;
        for i in 0..m {
            for j in (i + 1)..m {
                let d = measurer.measure(landmarks[i], landmarks[j]);
                lm_delay[i][j] = d;
                lm_delay[j][i] = d;
                max_delay = max_delay.max(d);
            }
        }

        // Step 2: embed landmarks, minimizing squared relative error.
        let dims = config.dims;
        let objective = |x: &[f64]| -> f64 {
            let mut err = 0.0;
            for i in 0..m {
                for j in (i + 1)..m {
                    let measured = lm_delay[i][j];
                    if measured <= 0.0 {
                        continue;
                    }
                    let mut sq = 0.0;
                    for d in 0..dims {
                        let diff = x[i * dims + d] - x[j * dims + d];
                        sq += diff * diff;
                    }
                    let predicted = sq.sqrt();
                    let rel = (measured - predicted) / measured;
                    err += rel * rel;
                }
            }
            err
        };
        let mut nm = config.nelder_mead.clone();
        nm.initial_step = (max_delay / 4.0).max(1.0);
        let mut best: Option<(Vec<f64>, f64)> = None;
        for _ in 0..config.landmark_restarts.max(1) {
            let x0: Vec<f64> = (0..m * dims)
                .map(|_| (rng.gen::<f64>() - 0.5) * max_delay)
                .collect();
            let (x, v) = minimize(&objective, &x0, &nm);
            if best.as_ref().is_none_or(|(_, bv)| v < *bv) {
                best = Some((x, v));
            }
        }
        let (landmark_flat, landmark_fit_error) = best.expect("at least one restart ran");
        let landmark_coords: Vec<Coordinates> = (0..m)
            .map(|i| Coordinates::new(landmark_flat[i * dims..(i + 1) * dims].to_vec()))
            .collect();

        let mut coords: Vec<Option<Coordinates>> = vec![None; graph.len()];
        for (lm, c) in landmarks.iter().zip(&landmark_coords) {
            coords[lm.index()] = Some(c.clone());
        }

        // Step 3: solve each host against the fixed landmark positions.
        // Hosts are independent given the landmark fit, so this stage
        // fans out across threads; each host's probe noise and restart
        // jitter come from its own seed-derived RNG, making the result
        // independent of both thread count and host visiting order.
        let centroid: Vec<f64> = (0..dims)
            .map(|d| landmark_coords.iter().map(|c| c.as_slice()[d]).sum::<f64>() / m as f64)
            .collect();
        let lm_ref = &landmark_coords;
        let centroid_ref = &centroid;
        let nm_ref = &nm;
        let measurer_ref = &measurer;
        let coords_ref = &coords;
        let solved: Vec<Option<(usize, Coordinates)>> =
            son_par::par_map_chunks(config.threads, hosts.len(), |range| {
                range
                    .map(|hi| {
                        let host = hosts[hi];
                        if coords_ref[host.index()].is_some() {
                            return None; // host doubles as a landmark
                        }
                        let mut host_rng =
                            StdRng::seed_from_u64(mix_seed(config.seed, host.index() as u64));
                        let measured: Vec<f64> = landmarks
                            .iter()
                            .map(|&lm| measurer_ref.measure_with(lm, host, &mut host_rng))
                            .collect();
                        let host_objective = |x: &[f64]| -> f64 {
                            let mut err = 0.0;
                            for (c, &meas) in lm_ref.iter().zip(&measured) {
                                if meas <= 0.0 {
                                    continue;
                                }
                                let mut sq = 0.0;
                                for (d, v) in x.iter().enumerate() {
                                    let diff = v - c.as_slice()[d];
                                    sq += diff * diff;
                                }
                                let rel = (meas - sq.sqrt()) / meas;
                                err += rel * rel;
                            }
                            err
                        };
                        let mut best: Option<(Vec<f64>, f64)> = None;
                        for r in 0..config.host_restarts.max(1) {
                            let x0: Vec<f64> = if r == 0 {
                                centroid_ref.clone()
                            } else {
                                centroid_ref
                                    .iter()
                                    .map(|c| c + (host_rng.gen::<f64>() - 0.5) * max_delay)
                                    .collect()
                            };
                            let (x, v) = minimize(&host_objective, &x0, nm_ref);
                            if best.as_ref().is_none_or(|(_, bv)| v < *bv) {
                                best = Some((x, v));
                            }
                        }
                        let (x, _) = best.expect("at least one restart ran");
                        Some((host.index(), Coordinates::new(x)))
                    })
                    .collect()
            });
        for (index, c) in solved.into_iter().flatten() {
            coords[index] = Some(c);
        }

        GnpEmbedding {
            dims,
            landmarks: landmarks.to_vec(),
            coords,
            landmark_fit_error,
        }
    }

    /// Dimensionality of the space.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The landmark nodes.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// Residual objective value of the landmark fit (sum of squared
    /// relative errors) — a quality indicator.
    pub fn landmark_fit_error(&self) -> f64 {
        self.landmark_fit_error
    }

    /// Coordinates of `node`, if it was embedded.
    pub fn coordinates(&self, node: NodeId) -> Option<&Coordinates> {
        self.coords.get(node.index()).and_then(|c| c.as_ref())
    }

    /// Predicted delay between two embedded nodes.
    ///
    /// # Panics
    ///
    /// Panics if either node was not embedded.
    pub fn predicted_delay(&self, a: NodeId, b: NodeId) -> f64 {
        let ca = self
            .coordinates(a)
            .unwrap_or_else(|| panic!("{a} was not embedded"));
        let cb = self
            .coordinates(b)
            .unwrap_or_else(|| panic!("{b} was not embedded"));
        ca.distance(cb)
    }

    /// Samples host pairs and reports relative prediction error against
    /// true shortest-path delays (up to 30 sources to bound cost).
    pub fn relative_error_stats(&self, graph: &Graph, hosts: &[NodeId]) -> ErrorStats {
        let step = (hosts.len() / 30).max(1);
        let sources: Vec<NodeId> = hosts.iter().copied().step_by(step).collect();
        let mut errors = Vec::new();
        for &src in &sources {
            let true_d = graph.dijkstra(src);
            for &dst in hosts {
                if dst == src {
                    continue;
                }
                let t = true_d[dst.index()];
                if !t.is_finite() || t <= 0.0 {
                    continue;
                }
                let p = self.predicted_delay(src, dst);
                errors.push((p - t).abs() / t);
            }
        }
        errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = errors.len();
        if n == 0 {
            return ErrorStats {
                mean: 0.0,
                median: 0.0,
                p90: 0.0,
                max: 0.0,
                samples: 0,
            };
        }
        ErrorStats {
            mean: errors.iter().sum::<f64>() / n as f64,
            median: errors[n / 2],
            p90: errors[(n as f64 * 0.9) as usize % n],
            max: errors[n - 1],
            samples: n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::landmark::select_landmarks_maxmin;
    use son_netsim::topology::{PhysicalNetwork, TransitStubConfig};

    /// Builds a graph whose delays are exactly Euclidean distances of
    /// planted planar points — a perfectly embeddable instance.
    fn planar_instance(n: usize, seed: u64) -> (Graph, Vec<[f64; 2]>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let points: Vec<[f64; 2]> = (0..n)
            .map(|_| [rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0])
            .collect();
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = ((points[i][0] - points[j][0]).powi(2)
                    + (points[i][1] - points[j][1]).powi(2))
                .sqrt()
                .max(0.01);
                g.add_edge(NodeId::new(i), NodeId::new(j), d);
            }
        }
        (g, points)
    }

    fn noiseless_config() -> EmbeddingConfig {
        EmbeddingConfig {
            measure: MeasureConfig::noiseless(),
            ..EmbeddingConfig::default()
        }
    }

    #[test]
    fn planar_instance_embeds_nearly_isometrically() {
        let (g, _) = planar_instance(25, 1);
        let all: Vec<NodeId> = g.node_ids().collect();
        let landmarks = &all[..6];
        let embedding = GnpEmbedding::compute(&g, landmarks, &all, &noiseless_config());
        let stats = embedding.relative_error_stats(&g, &all);
        assert!(
            stats.median < 0.05,
            "planted planar points should embed with tiny error, got {stats:?}"
        );
    }

    #[test]
    fn landmarks_get_coordinates_too() {
        let (g, _) = planar_instance(10, 2);
        let all: Vec<NodeId> = g.node_ids().collect();
        let embedding = GnpEmbedding::compute(&g, &all[..4], &all, &noiseless_config());
        for n in &all {
            assert!(embedding.coordinates(*n).is_some());
        }
        assert_eq!(embedding.landmarks().len(), 4);
        assert_eq!(embedding.dims(), 2);
    }

    #[test]
    fn embedding_predicts_transit_stub_delays() {
        let net = PhysicalNetwork::generate(&TransitStubConfig {
            seed: 5,
            ..TransitStubConfig::default()
        });
        let stubs = net.stub_nodes();
        let landmarks = select_landmarks_maxmin(net.graph(), &stubs, 8);
        let embedding = GnpEmbedding::compute(net.graph(), &landmarks, &stubs, &noiseless_config());
        let stats = embedding.relative_error_stats(net.graph(), &stubs);
        assert!(
            stats.median < 0.3,
            "transit-stub delays should embed reasonably, got {stats:?}"
        );
    }

    #[test]
    fn predicted_delay_is_symmetric() {
        let (g, _) = planar_instance(12, 3);
        let all: Vec<NodeId> = g.node_ids().collect();
        let embedding = GnpEmbedding::compute(&g, &all[..4], &all, &noiseless_config());
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_eq!(
                    embedding.predicted_delay(all[i], all[j]),
                    embedding.predicted_delay(all[j], all[i])
                );
            }
        }
    }

    #[test]
    fn compute_is_deterministic() {
        let (g, _) = planar_instance(15, 4);
        let all: Vec<NodeId> = g.node_ids().collect();
        let a = GnpEmbedding::compute(&g, &all[..5], &all, &noiseless_config());
        let b = GnpEmbedding::compute(&g, &all[..5], &all, &noiseless_config());
        for n in &all {
            assert_eq!(a.coordinates(*n), b.coordinates(*n));
        }
    }

    #[test]
    fn thread_count_does_not_change_the_embedding() {
        let (g, _) = planar_instance(18, 8);
        let all: Vec<NodeId> = g.node_ids().collect();
        let noisy = |threads| EmbeddingConfig {
            measure: MeasureConfig {
                probes: 3,
                max_noise: 0.2,
                seed: 1,
            },
            threads,
            ..EmbeddingConfig::default()
        };
        let a = GnpEmbedding::compute(&g, &all[..5], &all, &noisy(1));
        let b = GnpEmbedding::compute(&g, &all[..5], &all, &noisy(4));
        let c = GnpEmbedding::compute(&g, &all[..5], &all, &noisy(0));
        for n in &all {
            assert_eq!(a.coordinates(*n), b.coordinates(*n));
            assert_eq!(a.coordinates(*n), c.coordinates(*n));
        }
    }

    #[test]
    fn noise_degrades_but_does_not_break() {
        let (g, _) = planar_instance(20, 6);
        let all: Vec<NodeId> = g.node_ids().collect();
        let noisy = EmbeddingConfig {
            measure: MeasureConfig {
                probes: 3,
                max_noise: 0.2,
                seed: 1,
            },
            ..EmbeddingConfig::default()
        };
        let embedding = GnpEmbedding::compute(&g, &all[..6], &all, &noisy);
        let stats = embedding.relative_error_stats(&g, &all);
        assert!(stats.median < 0.25, "noisy embedding too bad: {stats:?}");
    }

    #[test]
    #[should_panic(expected = "landmarks")]
    fn too_few_landmarks_panics() {
        let (g, _) = planar_instance(5, 0);
        let all: Vec<NodeId> = g.node_ids().collect();
        let _ = GnpEmbedding::compute(&g, &all[..2], &all, &noiseless_config());
    }

    #[test]
    #[should_panic(expected = "not embedded")]
    fn query_of_unembedded_node_panics() {
        let (g, _) = planar_instance(8, 0);
        let all: Vec<NodeId> = g.node_ids().collect();
        let embedding = GnpEmbedding::compute(&g, &all[..4], &all[..6], &noiseless_config());
        let _ = embedding.predicted_delay(all[6], all[7]);
    }
}
