//! # son-coords
//!
//! GNP-style network coordinates (Ng & Zhang, "Predicting Internet
//! Network Distance with Coordinates-Based Approaches", INFOCOM 2002),
//! as used by the paper's Section 3.1 to obtain a complete distance map
//! of `n` overlay proxies from only `O(m² + nm)` measurements:
//!
//! 1. a small set of `m` *landmarks* measure their pairwise delays;
//! 2. the landmark delay matrix is embedded into a `k`-dimensional
//!    Euclidean space by function minimization (Nelder–Mead simplex,
//!    Nelder & Mead 1965 — implemented in [`neldermead`]);
//! 3. every proxy measures its delay to the landmarks and solves for
//!    its own coordinates relative to the landmark positions.
//!
//! After that, the distance between any two proxies is *predicted* as
//! the Euclidean distance between their coordinates.
//!
//! # Example
//!
//! ```
//! use son_netsim::topology::{PhysicalNetwork, TransitStubConfig};
//! use son_coords::{EmbeddingConfig, GnpEmbedding, select_landmarks_maxmin};
//!
//! let net = PhysicalNetwork::generate(&TransitStubConfig::default());
//! let stubs = net.stub_nodes();
//! let landmarks = select_landmarks_maxmin(net.graph(), &stubs, 6);
//! let hosts: Vec<_> = stubs.iter().copied().take(40).collect();
//! let embedding = GnpEmbedding::compute(
//!     net.graph(),
//!     &landmarks,
//!     &hosts,
//!     &EmbeddingConfig::default(),
//! );
//! // Predicted distances roughly track true delays.
//! let err = embedding.relative_error_stats(net.graph(), &hosts);
//! assert!(err.median < 0.5, "median relative error {}", err.median);
//! ```

pub mod embedding;
pub mod landmark;
pub mod neldermead;
pub mod space;

pub use embedding::{EmbeddingConfig, ErrorStats, GnpEmbedding};
pub use landmark::{select_landmarks_maxmin, select_landmarks_random};
pub use neldermead::{minimize, NelderMeadConfig};
pub use space::Coordinates;
