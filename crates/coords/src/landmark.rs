//! Landmark selection strategies.
//!
//! The paper just assumes "a small group of m landmarks" (Section 3.1);
//! where they sit matters for embedding quality, so we provide both the
//! naive random pick and a greedy max-min (k-center) spread that GNP
//! deployments favour.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use son_netsim::graph::{Graph, NodeId};

/// Picks `m` landmarks uniformly at random from `candidates`.
///
/// # Panics
///
/// Panics if `m == 0` or `m > candidates.len()`.
pub fn select_landmarks_random(candidates: &[NodeId], m: usize, seed: u64) -> Vec<NodeId> {
    assert!(m > 0, "need at least one landmark");
    assert!(
        m <= candidates.len(),
        "cannot pick {m} landmarks from {} candidates",
        candidates.len()
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool = candidates.to_vec();
    for i in 0..m {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
    }
    pool.truncate(m);
    pool
}

/// Picks `m` landmarks by greedy max-min delay spread (k-center
/// heuristic): start from the candidate farthest from all others, then
/// repeatedly add the candidate maximizing its minimum delay to the
/// landmarks chosen so far.
///
/// Well-spread landmarks give every host diverse reference distances,
/// which improves coordinate quality.
///
/// # Panics
///
/// Panics if `m == 0` or `m > candidates.len()`.
pub fn select_landmarks_maxmin(graph: &Graph, candidates: &[NodeId], m: usize) -> Vec<NodeId> {
    assert!(m > 0, "need at least one landmark");
    assert!(
        m <= candidates.len(),
        "cannot pick {m} landmarks from {} candidates",
        candidates.len()
    );
    // Seed with the candidate of median index for determinism, then run
    // the standard farthest-point traversal.
    let mut chosen = vec![candidates[candidates.len() / 2]];
    let mut min_delay: Vec<f64> = {
        let d = graph.dijkstra(chosen[0]);
        candidates.iter().map(|c| d[c.index()]).collect()
    };
    while chosen.len() < m {
        let (best_idx, _) = candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| !chosen.contains(c))
            .max_by(|a, b| {
                min_delay[a.0]
                    .partial_cmp(&min_delay[b.0])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("candidates remain");
        let next = candidates[best_idx];
        chosen.push(next);
        let d = graph.dijkstra(next);
        for (slot, c) in min_delay.iter_mut().zip(candidates) {
            *slot = slot.min(d[c.index()]);
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use son_netsim::topology::{PhysicalNetwork, TransitStubConfig};

    #[test]
    fn random_selection_has_no_duplicates() {
        let candidates: Vec<NodeId> = (0..50).map(NodeId::new).collect();
        let picked = select_landmarks_random(&candidates, 10, 1);
        assert_eq!(picked.len(), 10);
        let mut sorted = picked.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    #[test]
    fn random_selection_is_seeded() {
        let candidates: Vec<NodeId> = (0..50).map(NodeId::new).collect();
        assert_eq!(
            select_landmarks_random(&candidates, 5, 7),
            select_landmarks_random(&candidates, 5, 7)
        );
        assert_ne!(
            select_landmarks_random(&candidates, 5, 7),
            select_landmarks_random(&candidates, 5, 8)
        );
    }

    #[test]
    fn maxmin_spreads_better_than_worst_case() {
        let net = PhysicalNetwork::generate(&TransitStubConfig::default());
        let stubs = net.stub_nodes();
        let picked = select_landmarks_maxmin(net.graph(), &stubs, 8);
        assert_eq!(picked.len(), 8);
        // All distinct.
        let mut sorted = picked.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
        // Pairwise delays among chosen landmarks are all strictly
        // positive (no two landmarks at delay ~0 of each other, i.e.
        // not all in one stub domain).
        let mut min_pair = f64::INFINITY;
        for &a in &picked {
            let d = net.graph().dijkstra(a);
            for &b in &picked {
                if a != b {
                    min_pair = min_pair.min(d[b.index()]);
                }
            }
        }
        assert!(min_pair > 1.0, "landmarks collapsed: min pair {min_pair}");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_landmarks_panics() {
        let candidates = [NodeId::new(0)];
        let _ = select_landmarks_random(&candidates, 0, 0);
    }

    #[test]
    #[should_panic(expected = "cannot pick")]
    fn too_many_landmarks_panics() {
        let candidates = [NodeId::new(0)];
        let _ = select_landmarks_random(&candidates, 2, 0);
    }
}
