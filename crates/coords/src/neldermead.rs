//! Nelder–Mead downhill simplex minimization (Nelder & Mead, 1965).
//!
//! A derivative-free minimizer for small-dimensional continuous
//! problems — exactly the method the paper cites (ref.\ 23) for fitting
//! landmark and host coordinates to measured delays. Uses the standard
//! reflection / expansion / contraction / shrink moves with the usual
//! coefficients (α=1, γ=2, ρ=0.5, σ=0.5).

/// Parameters controlling a [`minimize`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct NelderMeadConfig {
    /// Maximum number of iterations (one reflection cycle each).
    pub max_iterations: usize,
    /// Convergence threshold on the objective spread across the simplex.
    pub tolerance: f64,
    /// Size of the initial simplex around the starting point.
    pub initial_step: f64,
}

impl Default for NelderMeadConfig {
    fn default() -> Self {
        NelderMeadConfig {
            max_iterations: 2_000,
            tolerance: 1e-9,
            initial_step: 10.0,
        }
    }
}

/// Minimizes `f` starting from `x0`; returns `(argmin, min_value)`.
///
/// The initial simplex is `x0` plus one vertex per dimension offset by
/// `config.initial_step`. Deterministic: same inputs, same output.
///
/// # Panics
///
/// Panics if `x0` is empty.
///
/// # Example
///
/// ```
/// use son_coords::neldermead::{minimize, NelderMeadConfig};
///
/// // Minimize the 2-D sphere function centred on (3, -2).
/// let f = |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] + 2.0).powi(2);
/// let (x, v) = minimize(&f, &[0.0, 0.0], &NelderMeadConfig::default());
/// assert!(v < 1e-6);
/// assert!((x[0] - 3.0).abs() < 1e-3 && (x[1] + 2.0).abs() < 1e-3);
/// ```
pub fn minimize<F>(f: &F, x0: &[f64], config: &NelderMeadConfig) -> (Vec<f64>, f64)
where
    F: Fn(&[f64]) -> f64,
{
    assert!(
        !x0.is_empty(),
        "cannot minimize a zero-dimensional function"
    );
    let n = x0.len();
    const ALPHA: f64 = 1.0; // reflection
    const GAMMA: f64 = 2.0; // expansion
    const RHO: f64 = 0.5; // contraction
    const SIGMA: f64 = 0.5; // shrink

    // Initial simplex: x0 and x0 + step * e_i.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    simplex.push((x0.to_vec(), f(x0)));
    for i in 0..n {
        let mut v = x0.to_vec();
        v[i] += config.initial_step;
        let fv = f(&v);
        simplex.push((v, fv));
    }

    for _ in 0..config.max_iterations {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let best = simplex[0].1;
        let worst = simplex[n].1;
        if (worst - best).abs() <= config.tolerance * (1.0 + best.abs()) {
            // Guard against a simplex straddling the minimum with equal
            // values at spatially distant vertices: also require the
            // simplex itself to have collapsed.
            let scale = 1.0 + simplex[0].0.iter().map(|v| v.abs()).fold(0.0, f64::max);
            let extent = simplex[1..]
                .iter()
                .flat_map(|(v, _)| v.iter().zip(&simplex[0].0).map(|(a, b)| (a - b).abs()))
                .fold(0.0, f64::max);
            if extent <= config.tolerance.sqrt() * scale {
                break;
            }
        }

        // Centroid of all but the worst vertex.
        let mut centroid = vec![0.0; n];
        for (v, _) in &simplex[..n] {
            for (c, x) in centroid.iter_mut().zip(v) {
                *c += x;
            }
        }
        for c in &mut centroid {
            *c /= n as f64;
        }

        let combine = |a: &[f64], coeff: f64, b: &[f64]| -> Vec<f64> {
            a.iter().zip(b).map(|(c, w)| c + coeff * (c - w)).collect()
        };

        let reflected = combine(&centroid, ALPHA, &simplex[n].0);
        let f_reflected = f(&reflected);

        if f_reflected < simplex[0].1 {
            // Try to expand further in the same direction.
            let expanded = combine(&centroid, GAMMA, &simplex[n].0);
            let f_expanded = f(&expanded);
            simplex[n] = if f_expanded < f_reflected {
                (expanded, f_expanded)
            } else {
                (reflected, f_reflected)
            };
            continue;
        }
        if f_reflected < simplex[n - 1].1 {
            simplex[n] = (reflected, f_reflected);
            continue;
        }

        // Contract toward the centroid.
        let contracted: Vec<f64> = centroid
            .iter()
            .zip(&simplex[n].0)
            .map(|(c, w)| c + RHO * (w - c))
            .collect();
        let f_contracted = f(&contracted);
        if f_contracted < simplex[n].1 {
            simplex[n] = (contracted, f_contracted);
            continue;
        }

        // Shrink everything toward the best vertex.
        let best_vertex = simplex[0].0.clone();
        for entry in simplex.iter_mut().skip(1) {
            let shrunk: Vec<f64> = best_vertex
                .iter()
                .zip(&entry.0)
                .map(|(b, v)| b + SIGMA * (v - b))
                .collect();
            let fv = f(&shrunk);
            *entry = (shrunk, fv);
        }
    }

    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let (x, v) = simplex.swap_remove(0);
    (x, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NelderMeadConfig {
        NelderMeadConfig {
            max_iterations: 5_000,
            tolerance: 1e-12,
            initial_step: 1.0,
        }
    }

    #[test]
    fn minimizes_1d_quadratic() {
        let f = |x: &[f64]| (x[0] - 7.0).powi(2) + 1.0;
        let (x, v) = minimize(&f, &[-100.0], &cfg());
        assert!((x[0] - 7.0).abs() < 1e-4);
        assert!((v - 1.0).abs() < 1e-6);
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        // The classic banana function; minimum 0 at (1, 1).
        let f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let (x, v) = minimize(&f, &[-1.2, 1.0], &cfg());
        assert!(v < 1e-6, "value {v}");
        assert!((x[0] - 1.0).abs() < 1e-2 && (x[1] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn minimizes_higher_dimensional_sphere() {
        let target: Vec<f64> = (0..8).map(|i| i as f64 - 3.5).collect();
        let t = target.clone();
        let f = move |x: &[f64]| -> f64 { x.iter().zip(&t).map(|(a, b)| (a - b).powi(2)).sum() };
        let (x, v) = minimize(&f, &[0.0; 8], &cfg());
        assert!(v < 1e-6, "value {v}");
        for (a, b) in x.iter().zip(&target) {
            assert!((a - b).abs() < 1e-2);
        }
    }

    #[test]
    fn is_deterministic() {
        let f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>().sqrt() + (x[0] - 1.0).abs();
        let a = minimize(&f, &[5.0, 5.0, 5.0], &cfg());
        let b = minimize(&f, &[5.0, 5.0, 5.0], &cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn respects_iteration_budget() {
        // With a budget of zero iterations we get (roughly) the start.
        let f = |x: &[f64]| x[0] * x[0];
        let limited = NelderMeadConfig {
            max_iterations: 0,
            ..cfg()
        };
        let (x, _) = minimize(&f, &[42.0], &limited);
        assert!((x[0] - 42.0).abs() <= limited.initial_step);
    }

    #[test]
    #[should_panic(expected = "zero-dimensional")]
    fn empty_start_panics() {
        let f = |_: &[f64]| 0.0;
        let _ = minimize(&f, &[], &cfg());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The minimizer never does worse than the starting point.
        #[test]
        fn minimize_is_a_descent(
            x0 in proptest::collection::vec(-50.0f64..50.0, 1..6),
            target in proptest::collection::vec(-50.0f64..50.0, 6),
            weights in proptest::collection::vec(0.1f64..5.0, 6),
        ) {
            let dims = x0.len();
            let f = move |x: &[f64]| -> f64 {
                x.iter()
                    .enumerate()
                    .map(|(i, v)| weights[i] * (v - target[i]).powi(2))
                    .sum()
            };
            let f0 = f(&x0);
            let (_, v) = minimize(&f, &x0, &NelderMeadConfig::default());
            prop_assert!(v <= f0 + 1e-12, "minimize went uphill: {v} > {f0}");
            // On a convex quadratic it should actually get close to 0.
            prop_assert!(v < 1e-3 * (1.0 + f0), "poor convergence: {v} from {f0}, dims {dims}");
        }

        /// Weighted-quadratic minimum is found at the planted target.
        #[test]
        fn finds_planted_minimum(
            target in proptest::collection::vec(-20.0f64..20.0, 1..5),
        ) {
            let t = target.clone();
            let f = move |x: &[f64]| -> f64 {
                x.iter().zip(&t).map(|(a, b)| (a - b).powi(2)).sum()
            };
            let start = vec![0.0; target.len()];
            let (x, _) = minimize(&f, &start, &NelderMeadConfig {
                max_iterations: 10_000,
                tolerance: 1e-12,
                initial_step: 5.0,
            });
            for (a, b) in x.iter().zip(&target) {
                prop_assert!((a - b).abs() < 1e-2, "{a} vs {b}");
            }
        }
    }
}
