//! Points in the virtual coordinate space.

use std::fmt;

/// A point in the `k`-dimensional Euclidean coordinate space `S` that
/// delays are embedded into.
///
/// # Example
///
/// ```
/// use son_coords::Coordinates;
///
/// let a = Coordinates::new(vec![0.0, 3.0]);
/// let b = Coordinates::new(vec![4.0, 0.0]);
/// assert_eq!(a.distance(&b), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Coordinates(Vec<f64>);

impl Coordinates {
    /// Wraps a coordinate vector.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains non-finite entries.
    pub fn new(values: Vec<f64>) -> Self {
        assert!(
            !values.is_empty(),
            "coordinates need at least one dimension"
        );
        assert!(
            values.iter().all(|v| v.is_finite()),
            "coordinates must be finite"
        );
        Coordinates(values)
    }

    /// The origin of a `dims`-dimensional space.
    pub fn origin(dims: usize) -> Self {
        Coordinates::new(vec![0.0; dims])
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.0.len()
    }

    /// The raw coordinate values.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Euclidean distance to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn distance(&self, other: &Coordinates) -> f64 {
        assert_eq!(
            self.dims(),
            other.dims(),
            "cannot take distance across dimensions"
        );
        self.0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt()
    }
}

impl fmt::Display for Coordinates {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.2}")?;
        }
        write!(f, ")")
    }
}

impl From<Coordinates> for Vec<f64> {
    fn from(c: Coordinates) -> Vec<f64> {
        c.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Coordinates::new(vec![1.0, 2.0, 3.0]);
        let b = Coordinates::new(vec![-1.0, 0.5, 9.0]);
        assert_eq!(a.distance(&b), b.distance(&a));
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn triangle_inequality_holds() {
        let a = Coordinates::new(vec![0.0, 0.0]);
        let b = Coordinates::new(vec![5.0, 1.0]);
        let c = Coordinates::new(vec![2.0, 8.0]);
        assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-12);
    }

    #[test]
    fn origin_is_all_zero() {
        let o = Coordinates::origin(4);
        assert_eq!(o.dims(), 4);
        assert!(o.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn display_is_compact() {
        let a = Coordinates::new(vec![1.5, -2.25]);
        assert_eq!(a.to_string(), "(1.50, -2.25)");
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn empty_coordinates_panic() {
        let _ = Coordinates::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_coordinates_panic() {
        let _ = Coordinates::new(vec![f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn mismatched_dims_panic() {
        let a = Coordinates::new(vec![0.0]);
        let b = Coordinates::new(vec![0.0, 0.0]);
        let _ = a.distance(&b);
    }
}
