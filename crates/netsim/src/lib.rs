//! # son-netsim
//!
//! A deterministic discrete-event network simulator together with a
//! transit-stub Internet topology generator, standing in for the ns-2 +
//! GT-ITM substrate used by the paper *Large-Scale Service Overlay
//! Networking with Distance-Based Clustering* (Jin & Nahrstedt,
//! Middleware 2003).
//!
//! The crate has three parts:
//!
//! * [`graph`] — a weighted undirected graph with Dijkstra,
//!   Floyd–Warshall, connectivity checks and multi-source distance
//!   tables. This is the "routing layer" of the simulated Internet: the
//!   end-to-end delay between two attachment points is the shortest-path
//!   delay over physical links.
//! * [`topology`] — a generator for transit-stub topologies in the style
//!   of GT-ITM (Zegura, Calvert & Bhattacharjee). Domains are placed in a
//!   plane and link delays are derived from geometric distance, so
//!   end-to-end delays embed well into a low-dimensional coordinate
//!   space — the property GNP observed on the real Internet and that the
//!   paper's distance-based clustering relies on.
//! * [`event`] / [`sim`] — a deterministic event queue and an actor-style
//!   message-passing simulator used to run the hierarchical state
//!   distribution protocol of the paper's Section 4.
//!
//! # Example
//!
//! ```
//! use son_netsim::topology::{TransitStubConfig, PhysicalNetwork};
//!
//! let config = TransitStubConfig::with_target_size(300, 42);
//! let net = PhysicalNetwork::generate(&config);
//! assert!(net.graph().is_connected());
//! // end-to-end delay between the first two stub nodes
//! let stubs = net.stub_nodes();
//! let d = net.graph().dijkstra(stubs[0]);
//! assert!(d[stubs[1].index()].is_finite());
//! ```

pub mod event;
pub mod faults;
pub mod graph;
pub mod measure;
pub mod sim;
pub mod topology;

pub use event::{EventQueue, SimTime};
pub use faults::{CrashEvent, FaultPlan, Partition};
pub use graph::{Graph, NodeId};
pub use measure::{DelayMeasurer, MeasureConfig};
pub use sim::{Actor, Ctx, SimStats, Simulator, TraceEntry, TraceEvent};
pub use topology::{NodeKind, PhysicalNetwork, TransitStubConfig};
