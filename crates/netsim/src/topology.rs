//! Transit-stub Internet topology generation (GT-ITM style).
//!
//! The paper's simulations run on transit-stub topologies produced by
//! the model of Zegura, Calvert & Bhattacharjee ("How to Model an
//! Internetwork", INFOCOM 1996). This module reimplements that model:
//!
//! * a top level of *transit domains* interconnected by a connected
//!   random graph;
//! * each transit node hosts a number of *stub domains*;
//! * each domain is internally a connected random graph.
//!
//! Domains are placed in a Euclidean plane and every link's delay is
//! proportional to the geometric distance between its endpoints plus a
//! small constant. End-to-end (shortest-path) delays therefore behave
//! like real Internet RTTs in the sense that matters to the paper: they
//! embed into a low-dimensional coordinate space with low error, which
//! is the property GNP measured on the real Internet and that the
//! distance-based clustering exploits.

use crate::graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A point in the plane where a topology node lives.
pub type Position = [f64; 2];

/// Classification of a physical node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A backbone router inside transit domain `domain`.
    Transit {
        /// Index of the transit domain.
        domain: usize,
    },
    /// An edge node inside stub domain `domain`, homed under a transit
    /// node.
    Stub {
        /// Global index of the stub domain.
        domain: usize,
        /// The transit node this stub domain hangs off.
        parent: NodeId,
    },
}

impl NodeKind {
    /// Returns `true` for stub nodes.
    pub fn is_stub(self) -> bool {
        matches!(self, NodeKind::Stub { .. })
    }
}

/// Parameters of the transit-stub generator.
///
/// The defaults follow the classic GT-ITM proportions: a handful of
/// transit domains, a few stub domains per transit node, and stub
/// domains several nodes large. Use
/// [`TransitStubConfig::with_target_size`] to hit a total node count
/// like the paper's 300/600/900/1200-node physical topologies.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitStubConfig {
    /// Number of transit domains.
    pub transit_domains: usize,
    /// Transit nodes per transit domain.
    pub transit_nodes_per_domain: usize,
    /// Stub domains attached to each transit node.
    pub stub_domains_per_transit_node: usize,
    /// Nodes per stub domain.
    pub stub_nodes_per_domain: usize,
    /// Probability of an extra (non-spanning-tree) edge between two
    /// nodes of the same domain.
    pub intra_domain_extra_edge_prob: f64,
    /// Probability of an extra edge between two transit domains beyond
    /// the spanning tree that keeps the backbone connected.
    pub inter_transit_extra_edge_prob: f64,
    /// Side length of the square region transit domains are placed in.
    pub world_size: f64,
    /// Radius within which a domain's nodes scatter around its center.
    pub transit_domain_radius: f64,
    /// Distance of a stub domain's center from its parent transit node.
    pub stub_domain_offset: f64,
    /// Radius within which stub nodes scatter around their domain center.
    pub stub_domain_radius: f64,
    /// Milliseconds of delay per unit of geometric distance.
    pub ms_per_unit: f64,
    /// Constant per-link delay floor in milliseconds.
    pub base_link_delay_ms: f64,
    /// RNG seed; equal configs generate identical topologies.
    pub seed: u64,
}

impl Default for TransitStubConfig {
    fn default() -> Self {
        TransitStubConfig {
            transit_domains: 4,
            transit_nodes_per_domain: 4,
            stub_domains_per_transit_node: 3,
            stub_nodes_per_domain: 6,
            intra_domain_extra_edge_prob: 0.25,
            inter_transit_extra_edge_prob: 0.4,
            world_size: 1000.0,
            transit_domain_radius: 60.0,
            stub_domain_offset: 90.0,
            stub_domain_radius: 25.0,
            ms_per_unit: 0.1,
            base_link_delay_ms: 0.5,
            seed: 0,
        }
    }
}

impl TransitStubConfig {
    /// Builds a configuration whose total node count approximates
    /// `target_nodes`, preserving GT-ITM's transit/stub proportions.
    ///
    /// The paper's physical topologies have 300, 600, 900 and 1200
    /// nodes; this constructor reproduces those scales.
    ///
    /// # Panics
    ///
    /// Panics if `target_nodes < 50`.
    pub fn with_target_size(target_nodes: usize, seed: u64) -> Self {
        assert!(
            target_nodes >= 50,
            "transit-stub topologies need >= 50 nodes"
        );
        let mut cfg = TransitStubConfig {
            seed,
            ..TransitStubConfig::default()
        };
        // total = T*NT * (1 + S*NS). Keep S=3, NS=6 (so 1+S*NS=19) and
        // scale the backbone. Choose T and NT close to sqrt(backbone).
        let backbone = (target_nodes as f64 / 19.0).round().max(4.0) as usize;
        let t = (backbone as f64).sqrt().round().max(2.0) as usize;
        let nt = backbone.div_ceil(t);
        cfg.transit_domains = t;
        cfg.transit_nodes_per_domain = nt.max(2);
        cfg
    }

    /// Total number of nodes this configuration generates.
    pub fn total_nodes(&self) -> usize {
        let backbone = self.transit_domains * self.transit_nodes_per_domain;
        backbone + backbone * self.stub_domains_per_transit_node * self.stub_nodes_per_domain
    }
}

/// A generated physical network: graph, node positions and node kinds.
///
/// # Example
///
/// ```
/// use son_netsim::topology::{PhysicalNetwork, TransitStubConfig};
///
/// let net = PhysicalNetwork::generate(&TransitStubConfig::default());
/// assert!(net.graph().is_connected());
/// assert!(net.stub_nodes().len() > net.transit_nodes().len());
/// ```
#[derive(Debug, Clone)]
pub struct PhysicalNetwork {
    graph: Graph,
    positions: Vec<Position>,
    kinds: Vec<NodeKind>,
    config: TransitStubConfig,
}

impl PhysicalNetwork {
    /// Generates a transit-stub network from `config`.
    ///
    /// The result is guaranteed connected: every domain gets a random
    /// spanning tree before extra edges are sprinkled in, stub domains
    /// are wired to their parent transit node, and transit domains are
    /// joined by a backbone spanning tree.
    pub fn generate(config: &TransitStubConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut graph = Graph::new();
        let mut positions: Vec<Position> = Vec::new();
        let mut kinds: Vec<NodeKind> = Vec::new();

        // --- Transit domains -------------------------------------------------
        let mut transit_domain_nodes: Vec<Vec<NodeId>> = Vec::new();
        let mut domain_centers: Vec<Position> = Vec::new();
        for d in 0..config.transit_domains {
            let center = spread_center(d, config.transit_domains, config.world_size, &mut rng);
            domain_centers.push(center);
            let mut members = Vec::new();
            for _ in 0..config.transit_nodes_per_domain {
                let pos = jitter(center, config.transit_domain_radius, &mut rng);
                let id = graph.add_node();
                positions.push(pos);
                kinds.push(NodeKind::Transit { domain: d });
                members.push(id);
            }
            wire_domain(
                &mut graph,
                &positions,
                &members,
                config.intra_domain_extra_edge_prob,
                config,
                &mut rng,
            );
            transit_domain_nodes.push(members);
        }

        // --- Backbone: connect transit domains -------------------------------
        // Random spanning tree over domains, plus extra domain pairs.
        let t = config.transit_domains;
        let mut order: Vec<usize> = (0..t).collect();
        shuffle(&mut order, &mut rng);
        for w in 1..t {
            let a = order[rng.gen_range(0..w)];
            let b = order[w];
            connect_domains(
                &mut graph,
                &positions,
                &transit_domain_nodes[a],
                &transit_domain_nodes[b],
                config,
                &mut rng,
            );
        }
        for a in 0..t {
            for b in (a + 1)..t {
                if rng.gen_bool(config.inter_transit_extra_edge_prob) {
                    connect_domains(
                        &mut graph,
                        &positions,
                        &transit_domain_nodes[a],
                        &transit_domain_nodes[b],
                        config,
                        &mut rng,
                    );
                }
            }
        }

        // --- Stub domains -----------------------------------------------------
        let mut stub_domain_index = 0;
        for members in &transit_domain_nodes {
            for &transit_node in members {
                for _ in 0..config.stub_domains_per_transit_node {
                    let center = jitter(
                        positions[transit_node.index()],
                        config.stub_domain_offset,
                        &mut rng,
                    );
                    let mut stub_members = Vec::new();
                    for _ in 0..config.stub_nodes_per_domain {
                        let pos = jitter(center, config.stub_domain_radius, &mut rng);
                        let id = graph.add_node();
                        positions.push(pos);
                        kinds.push(NodeKind::Stub {
                            domain: stub_domain_index,
                            parent: transit_node,
                        });
                        stub_members.push(id);
                    }
                    wire_domain(
                        &mut graph,
                        &positions,
                        &stub_members,
                        config.intra_domain_extra_edge_prob,
                        config,
                        &mut rng,
                    );
                    // Gateway link: the stub node closest to the parent.
                    let gateway = *stub_members
                        .iter()
                        .min_by(|&&a, &&b| {
                            let da = dist(positions[a.index()], positions[transit_node.index()]);
                            let db = dist(positions[b.index()], positions[transit_node.index()]);
                            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .expect("stub domain has at least one node");
                    add_geo_edge(&mut graph, &positions, gateway, transit_node, config);
                    stub_domain_index += 1;
                }
            }
        }

        PhysicalNetwork {
            graph,
            positions,
            kinds,
            config: config.clone(),
        }
    }

    /// The physical link graph (weights are delays in milliseconds).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Planar position of each node, indexed by [`NodeId::index`].
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }

    /// Kind of each node, indexed by [`NodeId::index`].
    pub fn kinds(&self) -> &[NodeKind] {
        &self.kinds
    }

    /// The configuration this network was generated from.
    pub fn config(&self) -> &TransitStubConfig {
        &self.config
    }

    /// Ids of all stub nodes (overlay proxies attach here).
    pub fn stub_nodes(&self) -> Vec<NodeId> {
        self.kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| k.is_stub())
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }

    /// Ids of all transit (backbone) nodes.
    pub fn transit_nodes(&self) -> Vec<NodeId> {
        self.kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| !k.is_stub())
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Returns `true` if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }
}

fn dist(a: Position, b: Position) -> f64 {
    ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt()
}

/// Places domain centers on a jittered grid so domains spread out
/// instead of piling up (which would defeat distance-based clustering).
fn spread_center(index: usize, total: usize, world: f64, rng: &mut StdRng) -> Position {
    let cols = (total as f64).sqrt().ceil() as usize;
    let rows = total.div_ceil(cols);
    let cell_w = world / cols as f64;
    let cell_h = world / rows as f64;
    let col = index % cols;
    let row = index / cols;
    [
        (col as f64 + 0.25 + 0.5 * rng.gen::<f64>()) * cell_w,
        (row as f64 + 0.25 + 0.5 * rng.gen::<f64>()) * cell_h,
    ]
}

fn jitter(center: Position, radius: f64, rng: &mut StdRng) -> Position {
    let angle = rng.gen::<f64>() * std::f64::consts::TAU;
    let r = radius * rng.gen::<f64>().sqrt();
    [center[0] + r * angle.cos(), center[1] + r * angle.sin()]
}

fn add_geo_edge(
    graph: &mut Graph,
    positions: &[Position],
    a: NodeId,
    b: NodeId,
    config: &TransitStubConfig,
) {
    let d = dist(positions[a.index()], positions[b.index()]);
    let delay = config.base_link_delay_ms + d * config.ms_per_unit;
    graph.add_edge(a, b, delay);
}

/// Wires `members` into a connected random subgraph: random spanning
/// tree plus extra edges with probability `extra_prob`.
fn wire_domain(
    graph: &mut Graph,
    positions: &[Position],
    members: &[NodeId],
    extra_prob: f64,
    config: &TransitStubConfig,
    rng: &mut StdRng,
) {
    if members.len() < 2 {
        return;
    }
    let mut order = members.to_vec();
    shuffle(&mut order, rng);
    for w in 1..order.len() {
        let attach = order[rng.gen_range(0..w)];
        add_geo_edge(graph, positions, attach, order[w], config);
    }
    for i in 0..members.len() {
        for j in (i + 1)..members.len() {
            if rng.gen_bool(extra_prob) {
                add_geo_edge(graph, positions, members[i], members[j], config);
            }
        }
    }
}

/// Adds one backbone edge between random representatives of two transit
/// domains.
fn connect_domains(
    graph: &mut Graph,
    positions: &[Position],
    a: &[NodeId],
    b: &[NodeId],
    config: &TransitStubConfig,
    rng: &mut StdRng,
) {
    let na = a[rng.gen_range(0..a.len())];
    let nb = b[rng.gen_range(0..b.len())];
    add_geo_edge(graph, positions, na, nb, config);
}

fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_topology_is_connected() {
        let net = PhysicalNetwork::generate(&TransitStubConfig::default());
        assert!(net.graph().is_connected());
        assert_eq!(net.len(), TransitStubConfig::default().total_nodes());
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = TransitStubConfig {
            seed: 7,
            ..TransitStubConfig::default()
        };
        let a = PhysicalNetwork::generate(&cfg);
        let b = PhysicalNetwork::generate(&cfg);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.graph().edge_count(), b.graph().edge_count());
        for (pa, pb) in a.positions().iter().zip(b.positions()) {
            assert_eq!(pa, pb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = PhysicalNetwork::generate(&TransitStubConfig {
            seed: 1,
            ..TransitStubConfig::default()
        });
        let b = PhysicalNetwork::generate(&TransitStubConfig {
            seed: 2,
            ..TransitStubConfig::default()
        });
        let same = a.positions().iter().zip(b.positions()).all(|(x, y)| x == y);
        assert!(!same);
    }

    #[test]
    fn target_size_is_close() {
        for &target in &[300usize, 600, 900, 1200] {
            let cfg = TransitStubConfig::with_target_size(target, 0);
            let total = cfg.total_nodes();
            let err = (total as f64 - target as f64).abs() / target as f64;
            assert!(
                err < 0.25,
                "target {target} produced {total} nodes ({err:.2} relative error)"
            );
            let net = PhysicalNetwork::generate(&cfg);
            assert!(net.graph().is_connected(), "size {target} not connected");
        }
    }

    #[test]
    fn stub_and_transit_partition_nodes() {
        let net = PhysicalNetwork::generate(&TransitStubConfig::default());
        let stubs = net.stub_nodes();
        let transits = net.transit_nodes();
        assert_eq!(stubs.len() + transits.len(), net.len());
        for id in &stubs {
            assert!(net.kinds()[id.index()].is_stub());
        }
        for id in &transits {
            assert!(!net.kinds()[id.index()].is_stub());
        }
    }

    #[test]
    fn stub_nodes_parent_is_transit() {
        let net = PhysicalNetwork::generate(&TransitStubConfig::default());
        for kind in net.kinds() {
            if let NodeKind::Stub { parent, .. } = kind {
                assert!(!net.kinds()[parent.index()].is_stub());
            }
        }
    }

    #[test]
    fn delays_reflect_geometry() {
        // End-to-end delay should correlate strongly with straight-line
        // distance: compare rank order on a sample of pairs.
        let net = PhysicalNetwork::generate(&TransitStubConfig {
            seed: 3,
            ..TransitStubConfig::default()
        });
        let stubs = net.stub_nodes();
        let d0 = net.graph().dijkstra(stubs[0]);
        let p0 = net.positions()[stubs[0].index()];
        let mut pairs: Vec<(f64, f64)> = stubs
            .iter()
            .skip(1)
            .map(|s| (dist(p0, net.positions()[s.index()]), d0[s.index()]))
            .collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        // Spearman-ish check: delays of the geometrically closest third
        // should on average be well below the farthest third.
        let third = pairs.len() / 3;
        let near: f64 = pairs[..third].iter().map(|p| p.1).sum::<f64>() / third as f64;
        let far: f64 = pairs[pairs.len() - third..]
            .iter()
            .map(|p| p.1)
            .sum::<f64>()
            / third as f64;
        assert!(
            near * 1.5 < far,
            "near avg {near:.1}ms should be much less than far avg {far:.1}ms"
        );
    }

    #[test]
    #[should_panic(expected = ">= 50")]
    fn tiny_target_panics() {
        let _ = TransitStubConfig::with_target_size(10, 0);
    }
}
