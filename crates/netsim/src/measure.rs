//! End-to-end delay measurement with Internet noise.
//!
//! The paper obtains its distance map from *measured* round-trip times
//! and suppresses noise by taking the minimum of several probes
//! (Section 3.1, steps 1 and 3). This module models that process: a
//! [`DelayMeasurer`] wraps a base delay oracle and perturbs each probe
//! with non-negative multiplicative noise (queueing only ever adds
//! delay), and `measure` returns the minimum over a configurable number
//! of probes.

use crate::graph::{DistanceTable, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for noisy delay measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureConfig {
    /// Number of probes per measurement; the minimum is reported.
    pub probes: usize,
    /// Maximum relative inflation a single probe can suffer
    /// (e.g. `0.3` = up to +30% queueing delay).
    pub max_noise: f64,
    /// RNG seed for reproducible noise.
    pub seed: u64,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            probes: 3,
            max_noise: 0.3,
            seed: 0,
        }
    }
}

impl MeasureConfig {
    /// A noise-free configuration (single exact probe).
    pub fn noiseless() -> Self {
        MeasureConfig {
            probes: 1,
            max_noise: 0.0,
            seed: 0,
        }
    }
}

/// Measures end-to-end delays over a [`DistanceTable`], adding
/// measurement noise per probe.
///
/// # Example
///
/// ```
/// use son_netsim::graph::{DistanceTable, Graph, NodeId};
/// use son_netsim::measure::{DelayMeasurer, MeasureConfig};
///
/// let mut g = Graph::with_nodes(2);
/// g.add_edge(NodeId::new(0), NodeId::new(1), 10.0);
/// let table = DistanceTable::new(&g, &[NodeId::new(0)]);
/// let mut m = DelayMeasurer::new(table, MeasureConfig::default());
/// let rtt = m.measure(NodeId::new(0), NodeId::new(1));
/// assert!(rtt >= 10.0 && rtt <= 13.0);
/// ```
#[derive(Debug)]
pub struct DelayMeasurer {
    table: DistanceTable,
    config: MeasureConfig,
    rng: StdRng,
}

impl DelayMeasurer {
    /// Creates a measurer over precomputed true delays.
    pub fn new(table: DistanceTable, config: MeasureConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        DelayMeasurer { table, config, rng }
    }

    /// Measures the delay from `from` (must be a table source) to `to`:
    /// the minimum over `probes` noisy samples of the true delay.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not a source of the underlying table.
    pub fn measure(&mut self, from: NodeId, to: NodeId) -> f64 {
        let true_delay = self.table.delay(from, to);
        Self::noisy_min(true_delay, &self.config, &mut self.rng)
    }

    /// Like [`DelayMeasurer::measure`], but drawing probe noise from a
    /// caller-supplied RNG instead of the measurer's own stream.
    ///
    /// Consumers that measure independent subjects (e.g. per-host
    /// embedding solves) can give each subject its own seeded RNG, so
    /// the noise a subject sees no longer depends on how many other
    /// subjects were measured before it — the property that makes
    /// parallel measurement deterministic.
    pub fn measure_with(&self, from: NodeId, to: NodeId, rng: &mut StdRng) -> f64 {
        let true_delay = self.table.delay(from, to);
        Self::noisy_min(true_delay, &self.config, rng)
    }

    fn noisy_min(true_delay: f64, config: &MeasureConfig, rng: &mut StdRng) -> f64 {
        if config.max_noise == 0.0 {
            return true_delay;
        }
        let mut best = f64::INFINITY;
        for _ in 0..config.probes.max(1) {
            let noise = 1.0 + rng.gen::<f64>() * config.max_noise;
            best = best.min(true_delay * noise);
        }
        best
    }

    /// The exact (noise-free) delay.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not a source of the underlying table.
    pub fn true_delay(&self, from: NodeId, to: NodeId) -> f64 {
        self.table.delay(from, to)
    }

    /// The underlying distance table.
    pub fn table(&self) -> &DistanceTable {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn line_graph() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::with_nodes(3);
        let ids: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        g.add_edge(ids[0], ids[1], 5.0);
        g.add_edge(ids[1], ids[2], 7.0);
        (g, ids)
    }

    #[test]
    fn noiseless_measure_is_exact() {
        let (g, ids) = line_graph();
        let table = DistanceTable::new(&g, &ids);
        let mut m = DelayMeasurer::new(table, MeasureConfig::noiseless());
        assert_eq!(m.measure(ids[0], ids[2]), 12.0);
        assert_eq!(m.true_delay(ids[0], ids[2]), 12.0);
    }

    #[test]
    fn noise_only_inflates() {
        let (g, ids) = line_graph();
        let table = DistanceTable::new(&g, &ids);
        let cfg = MeasureConfig {
            probes: 1,
            max_noise: 0.5,
            seed: 9,
        };
        let mut m = DelayMeasurer::new(table, cfg);
        for _ in 0..100 {
            let v = m.measure(ids[0], ids[1]);
            assert!((5.0..=7.5).contains(&v));
        }
    }

    #[test]
    fn more_probes_get_closer_to_truth() {
        let (g, ids) = line_graph();
        let table = DistanceTable::new(&g, &ids);
        let avg = |probes: usize| {
            let cfg = MeasureConfig {
                probes,
                max_noise: 0.5,
                seed: 11,
            };
            let mut m = DelayMeasurer::new(DistanceTable::new(&g, &ids), cfg);
            (0..200).map(|_| m.measure(ids[0], ids[1])).sum::<f64>() / 200.0
        };
        drop(table);
        assert!(avg(5) < avg(1));
    }

    #[test]
    fn measure_with_is_call_order_independent() {
        let (g, ids) = line_graph();
        let cfg = MeasureConfig {
            probes: 2,
            max_noise: 0.4,
            seed: 3,
        };
        let m = DelayMeasurer::new(DistanceTable::new(&g, &ids), cfg);
        use rand::SeedableRng;
        // The same subject seed yields the same measurement no matter
        // what was measured before with other RNGs.
        let mut a = StdRng::seed_from_u64(77);
        let first = m.measure_with(ids[0], ids[2], &mut a);
        let mut warmup = StdRng::seed_from_u64(5);
        let _ = m.measure_with(ids[0], ids[1], &mut warmup);
        let mut b = StdRng::seed_from_u64(77);
        assert_eq!(m.measure_with(ids[0], ids[2], &mut b), first);
        assert!(first >= 12.0);
    }

    #[test]
    fn measurement_is_deterministic_per_seed() {
        let (g, ids) = line_graph();
        let cfg = MeasureConfig {
            probes: 2,
            max_noise: 0.4,
            seed: 3,
        };
        let mut a = DelayMeasurer::new(DistanceTable::new(&g, &ids), cfg.clone());
        let mut b = DelayMeasurer::new(DistanceTable::new(&g, &ids), cfg);
        for _ in 0..10 {
            assert_eq!(a.measure(ids[0], ids[2]), b.measure(ids[0], ids[2]));
        }
    }
}
