//! Weighted undirected graphs and shortest-path algorithms.
//!
//! The graph is the model of the physical Internet: nodes are routers /
//! hosts, edges are links annotated with a propagation delay in
//! milliseconds. End-to-end delay between two nodes is the shortest-path
//! distance, mirroring shortest-path IP routing.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Identifier of a node in a [`Graph`].
///
/// `NodeId`s are dense indices assigned in insertion order; they are
/// only meaningful relative to the graph that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    pub fn new(index: usize) -> Self {
        NodeId(index as u32)
    }

    /// Returns the dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId::new(index)
    }
}

/// An undirected graph with `f64` edge weights (delays in milliseconds).
///
/// # Example
///
/// ```
/// use son_netsim::graph::Graph;
///
/// let mut g = Graph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let c = g.add_node();
/// g.add_edge(a, b, 1.0);
/// g.add_edge(b, c, 2.0);
/// let dist = g.dijkstra(a);
/// assert_eq!(dist[c.index()], 3.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Graph {
    adjacency: Vec<Vec<(NodeId, f64)>>,
    edge_count: usize,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            adjacency: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adjacency.push(Vec::new());
        NodeId::new(self.adjacency.len() - 1)
    }

    /// Adds an undirected edge between `a` and `b` with weight `w`.
    ///
    /// Parallel edges are collapsed: if the edge already exists its
    /// weight is lowered to `min(existing, w)` (only the cheaper link
    /// matters for shortest-path routing).
    ///
    /// # Panics
    ///
    /// Panics if `a == b`, if either id is out of range, or if `w` is
    /// not finite and positive.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, w: f64) {
        assert!(a != b, "self-loops are not allowed");
        assert!(
            w.is_finite() && w > 0.0,
            "edge weight must be finite and positive, got {w}"
        );
        assert!(a.index() < self.len() && b.index() < self.len());
        if let Some(slot) = self.adjacency[a.index()].iter_mut().find(|(n, _)| *n == b) {
            if w < slot.1 {
                slot.1 = w;
                for slot in self.adjacency[b.index()].iter_mut() {
                    if slot.0 == a {
                        slot.1 = w;
                    }
                }
            }
            return;
        }
        self.adjacency[a.index()].push((b, w));
        self.adjacency[b.index()].push((a, w));
        self.edge_count += 1;
    }

    /// Returns `true` if an edge between `a` and `b` exists.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.adjacency[a.index()].iter().any(|(n, _)| *n == b)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len()).map(NodeId::new)
    }

    /// Neighbors of `n` with edge weights.
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, f64)] {
        &self.adjacency[n.index()]
    }

    /// Single-source shortest-path distances from `src` (Dijkstra).
    ///
    /// Unreachable nodes get `f64::INFINITY`.
    pub fn dijkstra(&self, src: NodeId) -> Vec<f64> {
        self.dijkstra_with_predecessors(src).0
    }

    /// Dijkstra returning both distances and predecessor nodes.
    ///
    /// `predecessors[v]` is `None` for the source and for unreachable
    /// nodes.
    pub fn dijkstra_with_predecessors(&self, src: NodeId) -> (Vec<f64>, Vec<Option<NodeId>>) {
        let mut dist = vec![f64::INFINITY; self.len()];
        let mut pred: Vec<Option<NodeId>> = vec![None; self.len()];
        let mut heap = BinaryHeap::new();
        dist[src.index()] = 0.0;
        heap.push(HeapEntry {
            dist: 0.0,
            node: src,
        });
        while let Some(HeapEntry { dist: d, node }) = heap.pop() {
            if d > dist[node.index()] {
                continue;
            }
            for &(next, w) in &self.adjacency[node.index()] {
                let nd = d + w;
                if nd < dist[next.index()] {
                    dist[next.index()] = nd;
                    pred[next.index()] = Some(node);
                    heap.push(HeapEntry {
                        dist: nd,
                        node: next,
                    });
                }
            }
        }
        (dist, pred)
    }

    /// Shortest path from `src` to `dst` as `(total_delay, hops)`.
    ///
    /// Returns `None` when `dst` is unreachable. The hop list includes
    /// both endpoints.
    pub fn shortest_path(&self, src: NodeId, dst: NodeId) -> Option<(f64, Vec<NodeId>)> {
        let (dist, pred) = self.dijkstra_with_predecessors(src);
        if !dist[dst.index()].is_finite() {
            return None;
        }
        let mut hops = vec![dst];
        let mut cur = dst;
        while let Some(p) = pred[cur.index()] {
            hops.push(p);
            cur = p;
        }
        hops.reverse();
        Some((dist[dst.index()], hops))
    }

    /// All-pairs shortest paths via Floyd–Warshall.
    ///
    /// Quadratic memory and cubic time — intended for tests and small
    /// graphs; use repeated [`Graph::dijkstra`] for large ones.
    pub fn floyd_warshall(&self) -> Vec<Vec<f64>> {
        let n = self.len();
        let mut d = vec![vec![f64::INFINITY; n]; n];
        for (i, row) in d.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        for (i, neighbors) in self.adjacency.iter().enumerate() {
            for &(j, w) in neighbors {
                if w < d[i][j.index()] {
                    d[i][j.index()] = w;
                }
            }
        }
        for k in 0..n {
            for i in 0..n {
                if !d[i][k].is_finite() {
                    continue;
                }
                for j in 0..n {
                    let via = d[i][k] + d[k][j];
                    if via < d[i][j] {
                        d[i][j] = via;
                    }
                }
            }
        }
        d
    }

    /// Returns `true` if every node is reachable from every other node.
    ///
    /// The empty graph is considered connected.
    pub fn is_connected(&self) -> bool {
        if self.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.len()];
        let mut stack = vec![NodeId::new(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for &(next, _) in &self.adjacency[n.index()] {
                if !seen[next.index()] {
                    seen[next.index()] = true;
                    count += 1;
                    stack.push(next);
                }
            }
        }
        count == self.len()
    }

    /// Labels connected components; returns `(labels, component_count)`.
    pub fn connected_components(&self) -> (Vec<usize>, usize) {
        let mut label = vec![usize::MAX; self.len()];
        let mut next = 0;
        for start in 0..self.len() {
            if label[start] != usize::MAX {
                continue;
            }
            let mut stack = vec![NodeId::new(start)];
            label[start] = next;
            while let Some(n) = stack.pop() {
                for &(nb, _) in &self.adjacency[n.index()] {
                    if label[nb.index()] == usize::MAX {
                        label[nb.index()] = next;
                        stack.push(nb);
                    }
                }
            }
            next += 1;
        }
        (label, next)
    }
}

/// A dense table of shortest-path distances from a chosen set of source
/// nodes to every node in the graph.
///
/// Built with one Dijkstra run per source; used to answer "what is the
/// end-to-end delay between overlay attachment points" queries cheaply.
#[derive(Debug, Clone)]
pub struct DistanceTable {
    sources: Vec<NodeId>,
    source_row: Vec<Option<usize>>,
    rows: Vec<Vec<f64>>,
}

impl DistanceTable {
    /// Computes shortest-path distance rows for each node in `sources`.
    pub fn new(graph: &Graph, sources: &[NodeId]) -> Self {
        let mut source_row = vec![None; graph.len()];
        let mut rows = Vec::with_capacity(sources.len());
        for (i, &s) in sources.iter().enumerate() {
            source_row[s.index()] = Some(i);
            rows.push(graph.dijkstra(s));
        }
        DistanceTable {
            sources: sources.to_vec(),
            source_row,
            rows,
        }
    }

    /// The source nodes this table was built for.
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// Shortest-path delay from source `from` to any node `to`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not one of the table's sources.
    pub fn delay(&self, from: NodeId, to: NodeId) -> f64 {
        let row =
            self.source_row[from.index()].expect("`from` must be one of the DistanceTable sources");
        self.rows[row][to.index()]
    }

    /// Full distance row of source `from`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not one of the table's sources.
    pub fn row(&self, from: NodeId) -> &[f64] {
        let row =
            self.source_row[from.index()].expect("`from` must be one of the DistanceTable sources");
        &self.rows[row]
    }

    /// Returns `true` if `n` is one of the sources.
    pub fn contains_source(&self, n: NodeId) -> bool {
        self.source_row[n.index()].is_some()
    }
}

#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.node == other.node
    }
}
impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance (BinaryHeap is a max-heap), tie-broken on
        // node id for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Graph, Vec<NodeId>) {
        // a - b
        // |   |
        // c - d   with a-b=1, a-c=4, b-d=2, c-d=1
        let mut g = Graph::new();
        let ids: Vec<NodeId> = (0..4).map(|_| g.add_node()).collect();
        g.add_edge(ids[0], ids[1], 1.0);
        g.add_edge(ids[0], ids[2], 4.0);
        g.add_edge(ids[1], ids[3], 2.0);
        g.add_edge(ids[2], ids[3], 1.0);
        (g, ids)
    }

    #[test]
    fn dijkstra_finds_shortest_distances() {
        let (g, ids) = diamond();
        let d = g.dijkstra(ids[0]);
        assert_eq!(d[ids[0].index()], 0.0);
        assert_eq!(d[ids[1].index()], 1.0);
        assert_eq!(d[ids[3].index()], 3.0);
        assert_eq!(d[ids[2].index()], 4.0); // direct edge beats a-b-d-c = 4
    }

    #[test]
    fn shortest_path_returns_hops() {
        let (g, ids) = diamond();
        let (d, hops) = g.shortest_path(ids[0], ids[3]).unwrap();
        assert_eq!(d, 3.0);
        assert_eq!(hops, vec![ids[0], ids[1], ids[3]]);
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = Graph::with_nodes(2);
        assert!(g.shortest_path(NodeId::new(0), NodeId::new(1)).is_none());
        let d = g.dijkstra(NodeId::new(0));
        assert!(d[1].is_infinite());
        g.add_edge(NodeId::new(0), NodeId::new(1), 5.0);
        assert!(g.shortest_path(NodeId::new(0), NodeId::new(1)).is_some());
    }

    #[test]
    fn floyd_warshall_matches_dijkstra() {
        let (g, _) = diamond();
        let fw = g.floyd_warshall();
        for src in g.node_ids() {
            let d = g.dijkstra(src);
            for dst in g.node_ids() {
                assert!((fw[src.index()][dst.index()] - d[dst.index()]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn parallel_edges_keep_minimum() {
        let mut g = Graph::with_nodes(2);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        g.add_edge(a, b, 5.0);
        g.add_edge(a, b, 2.0);
        g.add_edge(a, b, 9.0);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.dijkstra(a)[b.index()], 2.0);
    }

    #[test]
    fn connectivity_and_components() {
        let mut g = Graph::with_nodes(5);
        g.add_edge(NodeId::new(0), NodeId::new(1), 1.0);
        g.add_edge(NodeId::new(2), NodeId::new(3), 1.0);
        assert!(!g.is_connected());
        let (labels, count) = g.connected_components();
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[4], labels[0]);
        g.add_edge(NodeId::new(1), NodeId::new(2), 1.0);
        g.add_edge(NodeId::new(3), NodeId::new(4), 1.0);
        assert!(g.is_connected());
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(Graph::new().is_connected());
    }

    #[test]
    fn distance_table_matches_dijkstra() {
        let (g, ids) = diamond();
        let table = DistanceTable::new(&g, &[ids[0], ids[3]]);
        assert_eq!(table.delay(ids[0], ids[2]), 4.0);
        assert_eq!(table.delay(ids[3], ids[0]), 3.0);
        assert!(table.contains_source(ids[0]));
        assert!(!table.contains_source(ids[1]));
        assert_eq!(table.row(ids[0])[ids[1].index()], 1.0);
    }

    #[test]
    #[should_panic(expected = "sources")]
    fn distance_table_panics_for_unknown_source() {
        let (g, ids) = diamond();
        let table = DistanceTable::new(&g, &[ids[0]]);
        let _ = table.delay(ids[1], ids[0]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut g = Graph::with_nodes(1);
        g.add_edge(NodeId::new(0), NodeId::new(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "edge weight")]
    fn non_positive_weight_panics() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId::new(0), NodeId::new(1), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn graph_strategy() -> impl Strategy<Value = Graph> {
        (2usize..12).prop_flat_map(|n| {
            proptest::collection::vec((0usize..n, 0usize..n, 0.1f64..100.0), 1..30).prop_map(
                move |edges| {
                    let mut g = Graph::with_nodes(n);
                    for (a, b, w) in edges {
                        if a != b {
                            g.add_edge(NodeId::new(a), NodeId::new(b), w);
                        }
                    }
                    g
                },
            )
        })
    }

    proptest! {
        /// Dijkstra from every source agrees with Floyd–Warshall.
        #[test]
        fn dijkstra_matches_floyd_warshall(g in graph_strategy()) {
            let fw = g.floyd_warshall();
            for src in g.node_ids() {
                let d = g.dijkstra(src);
                for dst in g.node_ids() {
                    let (a, b) = (d[dst.index()], fw[src.index()][dst.index()]);
                    if a.is_finite() || b.is_finite() {
                        prop_assert!((a - b).abs() < 1e-9, "{src}->{dst}: {a} vs {b}");
                    }
                }
            }
        }

        /// Shortest-path hop lists are real paths whose edge weights sum
        /// to the reported distance.
        #[test]
        fn shortest_path_hops_are_consistent(g in graph_strategy()) {
            for src in g.node_ids() {
                for dst in g.node_ids() {
                    if let Some((dist, hops)) = g.shortest_path(src, dst) {
                        prop_assert_eq!(*hops.first().unwrap(), src);
                        prop_assert_eq!(*hops.last().unwrap(), dst);
                        let mut total = 0.0;
                        for w in hops.windows(2) {
                            let weight = g
                                .neighbors(w[0])
                                .iter()
                                .find(|(n, _)| *n == w[1])
                                .map(|(_, wt)| *wt);
                            prop_assert!(weight.is_some(), "hop is not an edge");
                            total += weight.unwrap();
                        }
                        prop_assert!((total - dist).abs() < 1e-9);
                    }
                }
            }
        }

        /// Distances are symmetric (undirected graph) and satisfy the
        /// triangle inequality.
        #[test]
        fn distances_are_a_metric(g in graph_strategy()) {
            let fw = g.floyd_warshall();
            let n = g.len();
            for i in 0..n {
                prop_assert_eq!(fw[i][i], 0.0);
                for j in 0..n {
                    if fw[i][j].is_finite() || fw[j][i].is_finite() {
                        prop_assert!((fw[i][j] - fw[j][i]).abs() < 1e-9);
                    }
                    for k in 0..n {
                        if fw[i][k].is_finite() && fw[k][j].is_finite() {
                            prop_assert!(fw[i][j] <= fw[i][k] + fw[k][j] + 1e-9);
                        }
                    }
                }
            }
        }
    }
}
