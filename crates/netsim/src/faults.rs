//! Deterministic fault injection for the [`crate::sim::Simulator`].
//!
//! A [`FaultPlan`] describes everything that can go wrong on the
//! simulated network — seeded per-message loss and duplication (with
//! per-link overrides), delivery jitter, scheduled network partitions,
//! and proxy crash/restart events. The plan is *data*: installing the
//! same plan on the same simulation always produces the same run, so
//! fault scenarios are exactly as reproducible as fault-free ones (the
//! `trace_hash` in [`crate::sim::SimStats`] certifies it).
//!
//! Semantics, in the order they apply to a message:
//!
//! 1. **Partition** — while a partition window is open, any message
//!    crossing between the island and the rest of the network is
//!    dropped (checked at send time).
//! 2. **Loss** — each message is independently dropped with the
//!    link-specific probability if one is configured for the
//!    (unordered) pair, otherwise the uniform `loss` probability.
//! 3. **Duplication** — a surviving message is delivered twice with
//!    probability `duplicate`; the copy draws its own jitter.
//! 4. **Jitter** — each delivery is delayed by an extra uniform draw
//!    from `[0, jitter_ms]` on top of the delay function.
//!
//! Crashes are scheduled events, not random ones: at `at` the node
//! stops receiving messages and its pending timers are cancelled; at
//! `restart` (if any) it comes back empty-handed and the simulator
//! invokes [`crate::sim::Actor::on_restart`] so the protocol can
//! recover. Messages addressed to a crashed node are dropped at
//! delivery time.

use crate::event::SimTime;
use crate::graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A scheduled network partition: during `[start, end)` the `island`
/// nodes cannot exchange messages with the rest of the network
/// (traffic inside the island, and inside the remainder, is
/// unaffected).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// When the partition opens.
    pub start: SimTime,
    /// When connectivity is restored.
    pub end: SimTime,
    /// The nodes cut off from the rest.
    pub island: Vec<NodeId>,
}

impl Partition {
    /// Whether a message from `from` to `to` sent at `now` crosses the
    /// open partition.
    fn severs(&self, now: SimTime, from: NodeId, to: NodeId) -> bool {
        if now < self.start || now >= self.end {
            return false;
        }
        self.island.contains(&from) != self.island.contains(&to)
    }
}

/// A scheduled crash (and optional restart) of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// The node that fails.
    pub node: NodeId,
    /// When it crashes.
    pub at: SimTime,
    /// When it restarts with empty volatile state; `None` means it
    /// stays down for the rest of the run.
    pub restart: Option<SimTime>,
}

/// A complete, seeded description of the faults injected into one run.
///
/// Build one with the fluent `with_*` methods:
///
/// ```
/// use son_netsim::{FaultPlan, NodeId, SimTime};
///
/// let plan = FaultPlan::new(7)
///     .with_loss(0.2)
///     .with_duplicate(0.05)
///     .with_jitter_ms(2.0)
///     .with_partition(
///         SimTime::from_ms(10.0),
///         SimTime::from_ms(30.0),
///         vec![NodeId::new(0), NodeId::new(1)],
///     )
///     .with_crash(NodeId::new(2), SimTime::from_ms(5.0), Some(SimTime::from_ms(40.0)));
/// assert_eq!(plan.crashes.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault RNG (loss, duplication, jitter draws).
    pub seed: u64,
    /// Uniform per-message drop probability.
    pub loss: f64,
    /// Per-message duplication probability.
    pub duplicate: f64,
    /// Maximum extra delivery delay, drawn uniformly per delivery.
    pub jitter_ms: f64,
    /// Per-link loss overrides (unordered pairs), taking precedence
    /// over the uniform `loss`.
    pub link_loss: Vec<(NodeId, NodeId, f64)>,
    /// Scheduled partitions.
    pub partitions: Vec<Partition>,
    /// Scheduled crash/restart events.
    pub crashes: Vec<CrashEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            loss: 0.0,
            duplicate: 0.0,
            jitter_ms: 0.0,
            link_loss: Vec::new(),
            partitions: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// Replaces the RNG seed, keeping every other fault the same —
    /// handy for checking that the digest of a run actually depends on
    /// the draws.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the uniform per-message drop probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= loss <= 1.0`.
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss),
            "loss probability must be in [0, 1], got {loss}"
        );
        self.loss = loss;
        self
    }

    /// Sets the per-message duplication probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= duplicate <= 1.0`.
    pub fn with_duplicate(mut self, duplicate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&duplicate),
            "duplication probability must be in [0, 1], got {duplicate}"
        );
        self.duplicate = duplicate;
        self
    }

    /// Sets the maximum per-delivery jitter in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `jitter_ms` is negative or not finite.
    pub fn with_jitter_ms(mut self, jitter_ms: f64) -> Self {
        assert!(
            jitter_ms.is_finite() && jitter_ms >= 0.0,
            "jitter must be finite and >= 0, got {jitter_ms}"
        );
        self.jitter_ms = jitter_ms;
        self
    }

    /// Overrides the drop probability of the unordered link `(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= loss <= 1.0`.
    pub fn with_link_loss(mut self, a: NodeId, b: NodeId, loss: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss),
            "loss probability must be in [0, 1], got {loss}"
        );
        self.link_loss.push((a, b, loss));
        self
    }

    /// Schedules a partition of `island` from the rest during
    /// `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    pub fn with_partition(mut self, start: SimTime, end: SimTime, island: Vec<NodeId>) -> Self {
        assert!(start < end, "partition window must not be empty");
        self.partitions.push(Partition { start, end, island });
        self
    }

    /// Schedules a crash of `node` at `at`, restarting at `restart`
    /// (or never).
    ///
    /// # Panics
    ///
    /// Panics if `restart` precedes (or equals) `at`.
    pub fn with_crash(mut self, node: NodeId, at: SimTime, restart: Option<SimTime>) -> Self {
        if let Some(r) = restart {
            assert!(at < r, "restart must come after the crash");
        }
        self.crashes.push(CrashEvent { node, at, restart });
        self
    }

    /// Returns `true` if the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.loss == 0.0
            && self.duplicate == 0.0
            && self.jitter_ms == 0.0
            && self.link_loss.is_empty()
            && self.partitions.is_empty()
            && self.crashes.is_empty()
    }

    /// The time by which every scheduled (non-random) fault has played
    /// out: after this instant no partition window is open and no crash
    /// or restart is still pending. Random loss/duplication/jitter
    /// continue for the whole run. Convergence harnesses use this to
    /// avoid declaring victory before a scheduled fault has fired.
    pub fn horizon(&self) -> SimTime {
        let mut horizon = SimTime::ZERO;
        for p in &self.partitions {
            horizon = horizon.max(p.end);
        }
        for c in &self.crashes {
            horizon = horizon.max(c.restart.unwrap_or(c.at));
        }
        horizon
    }
}

/// The live fault state a running simulator keeps: the plan, its RNG,
/// and per-node crash bookkeeping.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: StdRng,
    link_loss: HashMap<(NodeId, NodeId), f64>,
    crashed: Vec<bool>,
    /// Bumped on every crash; timers armed under an older incarnation
    /// are dead on arrival.
    incarnation: Vec<u64>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, nodes: usize) -> Self {
        let link_loss = plan
            .link_loss
            .iter()
            .flat_map(|&(a, b, p)| [((a, b), p), ((b, a), p)])
            .collect();
        FaultState {
            rng: StdRng::seed_from_u64(plan.seed),
            link_loss,
            crashed: vec![false; nodes],
            incarnation: vec![0; nodes],
            plan,
        }
    }

    /// Whether a message sent now from `from` to `to` is dropped by a
    /// partition or random loss. Consumes one RNG draw for the loss
    /// decision (when a loss probability is configured).
    pub(crate) fn drops(&mut self, now: SimTime, from: NodeId, to: NodeId) -> bool {
        if self.plan.partitions.iter().any(|p| p.severs(now, from, to)) {
            return true;
        }
        let p = self
            .link_loss
            .get(&(from, to))
            .copied()
            .unwrap_or(self.plan.loss);
        p > 0.0 && self.rng.gen_bool(p)
    }

    /// Whether a surviving message gets a duplicate delivery.
    pub(crate) fn duplicates(&mut self) -> bool {
        self.plan.duplicate > 0.0 && self.rng.gen_bool(self.plan.duplicate)
    }

    /// One jitter draw, as extra delivery delay.
    pub(crate) fn jitter(&mut self) -> SimTime {
        if self.plan.jitter_ms > 0.0 {
            SimTime::from_ms(self.rng.gen_range(0.0..self.plan.jitter_ms))
        } else {
            SimTime::ZERO
        }
    }

    pub(crate) fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed[node.index()]
    }

    pub(crate) fn incarnation(&self, node: NodeId) -> u64 {
        self.incarnation[node.index()]
    }

    pub(crate) fn crash(&mut self, node: NodeId) {
        self.crashed[node.index()] = true;
        self.incarnation[node.index()] += 1;
    }

    pub(crate) fn restart(&mut self, node: NodeId) {
        self.crashed[node.index()] = false;
    }

    pub(crate) fn crashed_nodes(&self) -> Vec<NodeId> {
        self.crashed
            .iter()
            .enumerate()
            .filter(|(_, &c)| c)
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_severs_only_across_the_cut_inside_the_window() {
        let p = Partition {
            start: SimTime::from_ms(10.0),
            end: SimTime::from_ms(20.0),
            island: vec![NodeId::new(0), NodeId::new(1)],
        };
        let mid = SimTime::from_ms(15.0);
        assert!(p.severs(mid, NodeId::new(0), NodeId::new(2)));
        assert!(p.severs(mid, NodeId::new(2), NodeId::new(1)));
        assert!(
            !p.severs(mid, NodeId::new(0), NodeId::new(1)),
            "inside island"
        );
        assert!(
            !p.severs(mid, NodeId::new(2), NodeId::new(3)),
            "outside island"
        );
        // Window is half-open.
        assert!(!p.severs(SimTime::from_ms(9.9), NodeId::new(0), NodeId::new(2)));
        assert!(!p.severs(SimTime::from_ms(20.0), NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn horizon_covers_partitions_and_crashes() {
        assert_eq!(FaultPlan::new(0).horizon(), SimTime::ZERO);
        let plan = FaultPlan::new(0)
            .with_partition(SimTime::from_ms(5.0), SimTime::from_ms(25.0), vec![])
            .with_crash(
                NodeId::new(1),
                SimTime::from_ms(10.0),
                Some(SimTime::from_ms(60.0)),
            )
            .with_crash(NodeId::new(2), SimTime::from_ms(30.0), None);
        assert_eq!(plan.horizon(), SimTime::from_ms(60.0));
    }

    #[test]
    fn link_overrides_beat_uniform_loss() {
        let plan =
            FaultPlan::new(1)
                .with_loss(0.0)
                .with_link_loss(NodeId::new(0), NodeId::new(1), 1.0);
        let mut state = FaultState::new(plan, 3);
        // The overridden link always drops, in both directions.
        assert!(state.drops(SimTime::ZERO, NodeId::new(0), NodeId::new(1)));
        assert!(state.drops(SimTime::ZERO, NodeId::new(1), NodeId::new(0)));
        // Every other link never does.
        assert!(!state.drops(SimTime::ZERO, NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn crash_bumps_incarnation_and_restart_clears() {
        let mut state = FaultState::new(FaultPlan::new(0), 2);
        assert!(!state.is_crashed(NodeId::new(1)));
        assert_eq!(state.incarnation(NodeId::new(1)), 0);
        state.crash(NodeId::new(1));
        assert!(state.is_crashed(NodeId::new(1)));
        assert_eq!(state.incarnation(NodeId::new(1)), 1);
        assert_eq!(state.crashed_nodes(), vec![NodeId::new(1)]);
        state.restart(NodeId::new(1));
        assert!(!state.is_crashed(NodeId::new(1)));
        assert_eq!(state.incarnation(NodeId::new(1)), 1, "incarnation survives");
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_panics() {
        let _ = FaultPlan::new(0).with_loss(1.5);
    }

    #[test]
    #[should_panic(expected = "restart must come after")]
    fn restart_before_crash_panics() {
        let _ = FaultPlan::new(0).with_crash(
            NodeId::new(0),
            SimTime::from_ms(10.0),
            Some(SimTime::from_ms(5.0)),
        );
    }
}
