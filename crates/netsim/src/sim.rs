//! An actor-style message-passing simulator.
//!
//! Stand-in for ns-2: each overlay node is an [`Actor`]; the
//! [`Simulator`] delivers messages between actors after a delay given
//! by a caller-supplied delay function (typically the end-to-end
//! shortest-path delay between the actors' attachment points) and fires
//! timers actors set for themselves. Execution is single-threaded and
//! fully deterministic.
//!
//! # Example
//!
//! A two-node ping-pong:
//!
//! ```
//! use son_netsim::sim::{Actor, Ctx, Simulator};
//! use son_netsim::{NodeId, SimTime};
//!
//! struct Pinger { got: usize }
//!
//! impl Actor for Pinger {
//!     type Msg = &'static str;
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
//!         if ctx.me() == NodeId::new(0) {
//!             ctx.send(NodeId::new(1), "ping");
//!         }
//!     }
//!     fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: NodeId, msg: Self::Msg) {
//!         self.got += 1;
//!         if msg == "ping" {
//!             ctx.send(from, "pong");
//!         }
//!     }
//! }
//!
//! let actors = vec![Pinger { got: 0 }, Pinger { got: 0 }];
//! let mut sim = Simulator::new(actors, |_, _| SimTime::from_ms(1.0));
//! let stats = sim.run_until_quiescent(SimTime::from_ms(100.0));
//! assert_eq!(stats.messages_delivered, 2);
//! assert_eq!(sim.actors()[0].got, 1); // the pong
//! assert_eq!(sim.actors()[1].got, 1); // the ping
//! ```

use crate::event::{EventQueue, SimTime};
use crate::graph::NodeId;

/// Behaviour of a simulated node.
///
/// Implementations receive a [`Ctx`] through which they can send
/// messages and schedule timers; all effects are deferred through the
/// event queue, keeping the run deterministic.
pub trait Actor {
    /// Message type exchanged between actors.
    type Msg;

    /// Called once at time zero, before any message is delivered.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called when a message from `from` arrives.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when a timer previously set via [`Ctx::set_timer`] fires;
    /// `token` is the value passed when the timer was armed.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg>, token: u64) {
        let _ = (ctx, token);
    }
}

/// Handle through which an actor interacts with the simulation.
#[derive(Debug)]
pub struct Ctx<'a, M> {
    me: NodeId,
    now: SimTime,
    outbox: &'a mut Vec<Effect<M>>,
}

impl<M> Ctx<'_, M> {
    /// The id of the actor this context belongs to.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends `msg` to actor `to`; it arrives after the simulator's
    /// delay function's delay for `(me, to)`.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push(Effect::Send { to, msg });
    }

    /// Arms a timer that fires on this actor after `delay`, carrying
    /// `token` back to [`Actor::on_timer`].
    pub fn set_timer(&mut self, delay: SimTime, token: u64) {
        self.outbox.push(Effect::Timer { delay, token });
    }
}

#[derive(Debug)]
enum Effect<M> {
    Send { to: NodeId, msg: M },
    Timer { delay: SimTime, token: u64 },
}

#[derive(Debug)]
enum Event<M> {
    Deliver { from: NodeId, to: NodeId, msg: M },
    Fire { on: NodeId, token: u64 },
}

/// One recorded simulation event (when tracing is enabled) — the
/// ns-2-style trace for debugging protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message was delivered.
    Delivered {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
    },
    /// A message was dropped by injected loss.
    Dropped {
        /// Sender.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
    },
    /// A timer fired.
    TimerFired {
        /// The actor whose timer fired.
        on: NodeId,
        /// The token the timer was armed with.
        token: u64,
    },
}

/// A timestamped trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the event happened.
    pub at: SimTime,
    /// What happened.
    pub event: TraceEvent,
}

/// Counters describing a finished simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Messages handed to [`Actor::on_message`].
    pub messages_delivered: u64,
    /// Messages dropped by injected loss.
    pub messages_dropped: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Simulation time at which the run stopped.
    pub ended_at: SimTime,
}

/// The discrete-event simulator driving a set of actors.
pub struct Simulator<A: Actor, D> {
    actors: Vec<A>,
    delay_fn: D,
    /// When set, invoked per message; returning `true` silently drops
    /// it (lossy-network failure injection).
    loss_fn: Option<Box<dyn FnMut(NodeId, NodeId) -> bool>>,
    trace: Option<Vec<TraceEntry>>,
    queue: EventQueue<Event<A::Msg>>,
    now: SimTime,
    started: bool,
    stats: SimStats,
}

impl<A: Actor + std::fmt::Debug, D> std::fmt::Debug for Simulator<A, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("actors", &self.actors)
            .field("now", &self.now)
            .field("lossy", &self.loss_fn.is_some())
            .finish_non_exhaustive()
    }
}

impl<A, D> Simulator<A, D>
where
    A: Actor,
    D: FnMut(NodeId, NodeId) -> SimTime,
{
    /// Creates a simulator over `actors`; actor `i` has id
    /// `NodeId::new(i)`. `delay_fn(from, to)` gives the one-way message
    /// latency between two actors.
    pub fn new(actors: Vec<A>, delay_fn: D) -> Self {
        Simulator {
            actors,
            delay_fn,
            loss_fn: None,
            trace: None,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            started: false,
            stats: SimStats::default(),
        }
    }

    /// Injects message loss: `loss(from, to)` is consulted for every
    /// sent message and dropping it when `true`. Timers are never
    /// lost. Use a seeded closure for reproducible lossy runs.
    pub fn set_loss<L>(&mut self, loss: L)
    where
        L: FnMut(NodeId, NodeId) -> bool + 'static,
    {
        self.loss_fn = Some(Box::new(loss));
    }

    /// Starts recording a trace of deliveries, drops and timer firings.
    /// Call before running; entries accumulate across runs.
    pub fn enable_trace(&mut self) {
        self.trace.get_or_insert_with(Vec::new);
    }

    /// The recorded trace (empty slice when tracing was never enabled).
    pub fn trace(&self) -> &[TraceEntry] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Read access to the actors (e.g. to inspect converged state).
    pub fn actors(&self) -> &[A] {
        &self.actors
    }

    /// Mutable access to the actors.
    pub fn actors_mut(&mut self) -> &mut [A] {
        &mut self.actors
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Runs until no events remain or simulated time exceeds
    /// `deadline`, whichever comes first. Returns the run statistics.
    ///
    /// Calling it again resumes the same simulation (e.g. with a later
    /// deadline); `on_start` hooks run only once.
    pub fn run_until_quiescent(&mut self, deadline: SimTime) -> SimStats {
        let mut outbox: Vec<Effect<A::Msg>> = Vec::new();
        if !self.started {
            self.started = true;
            for i in 0..self.actors.len() {
                let me = NodeId::new(i);
                let mut ctx = Ctx {
                    me,
                    now: self.now,
                    outbox: &mut outbox,
                };
                self.actors[i].on_start(&mut ctx);
                self.flush(me, &mut outbox);
            }
        }
        while let Some(at) = self.queue.peek_time() {
            if at > deadline {
                break;
            }
            let (at, event) = self.queue.pop().expect("peeked event exists");
            self.now = at;
            match event {
                Event::Deliver { from, to, msg } => {
                    self.stats.messages_delivered += 1;
                    if let Some(trace) = &mut self.trace {
                        trace.push(TraceEntry {
                            at: self.now,
                            event: TraceEvent::Delivered { from, to },
                        });
                    }
                    let mut ctx = Ctx {
                        me: to,
                        now: self.now,
                        outbox: &mut outbox,
                    };
                    self.actors[to.index()].on_message(&mut ctx, from, msg);
                    self.flush(to, &mut outbox);
                }
                Event::Fire { on, token } => {
                    self.stats.timers_fired += 1;
                    if let Some(trace) = &mut self.trace {
                        trace.push(TraceEntry {
                            at: self.now,
                            event: TraceEvent::TimerFired { on, token },
                        });
                    }
                    let mut ctx = Ctx {
                        me: on,
                        now: self.now,
                        outbox: &mut outbox,
                    };
                    self.actors[on.index()].on_timer(&mut ctx, token);
                    self.flush(on, &mut outbox);
                }
            }
        }
        self.stats.ended_at = self.now;
        self.stats
    }

    fn flush(&mut self, source: NodeId, outbox: &mut Vec<Effect<A::Msg>>) {
        for effect in outbox.drain(..) {
            match effect {
                Effect::Send { to, msg } => {
                    if let Some(loss) = &mut self.loss_fn {
                        if loss(source, to) {
                            self.stats.messages_dropped += 1;
                            if let Some(trace) = &mut self.trace {
                                trace.push(TraceEntry {
                                    at: self.now,
                                    event: TraceEvent::Dropped { from: source, to },
                                });
                            }
                            continue;
                        }
                    }
                    let delay = (self.delay_fn)(source, to);
                    self.queue.push(
                        self.now + delay,
                        Event::Deliver {
                            from: source,
                            to,
                            msg,
                        },
                    );
                }
                Effect::Timer { delay, token } => {
                    self.queue
                        .push(self.now + delay, Event::Fire { on: source, token });
                }
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// Actor that floods a counter to all peers once and re-broadcasts
    /// on first receipt (a tiny gossip protocol).
    pub(crate) struct Gossip {
        peers: Vec<NodeId>,
        seen: bool,
        received_at: Option<SimTime>,
    }

    impl Actor for Gossip {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            if ctx.me() == NodeId::new(0) {
                self.seen = true;
                self.received_at = Some(ctx.now());
                for &p in &self.peers {
                    if p != ctx.me() {
                        ctx.send(p, ());
                    }
                }
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, ()>, _from: NodeId, _msg: ()) {
            if !self.seen {
                self.seen = true;
                self.received_at = Some(ctx.now());
                for &p in &self.peers.clone() {
                    if p != ctx.me() {
                        ctx.send(p, ());
                    }
                }
            }
        }
    }

    pub(crate) fn gossip_net(n: usize) -> Vec<Gossip> {
        let peers: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        (0..n)
            .map(|_| Gossip {
                peers: peers.clone(),
                seen: false,
                received_at: None,
            })
            .collect()
    }

    #[test]
    fn gossip_reaches_everyone() {
        let mut sim = Simulator::new(gossip_net(10), |_, _| SimTime::from_ms(1.0));
        sim.run_until_quiescent(SimTime::from_ms(1_000.0));
        assert!(sim.actors().iter().all(|a| a.seen));
    }

    #[test]
    fn delivery_respects_delay_function() {
        // Node 0 broadcasts at t=0; node k's delay from 0 is k ms.
        let mut sim = Simulator::new(gossip_net(5), |from, to| {
            SimTime::from_ms((from.index() as f64 - to.index() as f64).abs())
        });
        sim.run_until_quiescent(SimTime::from_ms(1_000.0));
        for (k, a) in sim.actors().iter().enumerate().skip(1) {
            // Direct delivery from node 0 is k ms; relayed copies can
            // only arrive later, so first receipt is exactly k ms.
            assert_eq!(a.received_at, Some(SimTime::from_ms(k as f64)), "node {k}");
        }
    }

    #[test]
    fn deadline_stops_the_run() {
        let mut sim = Simulator::new(gossip_net(4), |_, _| SimTime::from_ms(10.0));
        let stats = sim.run_until_quiescent(SimTime::from_ms(5.0));
        // Broadcast is in flight but nothing delivered before 5ms.
        assert_eq!(stats.messages_delivered, 0);
        let stats = sim.run_until_quiescent(SimTime::from_ms(1_000.0));
        assert!(stats.messages_delivered > 0);
        assert!(sim.actors().iter().all(|a| a.seen));
    }

    struct TimerBox {
        fired: Vec<(u64, SimTime)>,
    }

    impl Actor for TimerBox {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.set_timer(SimTime::from_ms(5.0), 5);
            ctx.set_timer(SimTime::from_ms(1.0), 1);
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _from: NodeId, _msg: ()) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, token: u64) {
            self.fired.push((token, ctx.now()));
            if token == 1 {
                ctx.set_timer(SimTime::from_ms(1.0), 2);
            }
        }
    }

    #[test]
    fn timers_fire_in_order_and_can_rearm() {
        let mut sim = Simulator::new(vec![TimerBox { fired: vec![] }], |_, _| SimTime::ZERO);
        let stats = sim.run_until_quiescent(SimTime::from_ms(100.0));
        assert_eq!(stats.timers_fired, 3);
        assert_eq!(
            sim.actors()[0].fired,
            vec![
                (1, SimTime::from_ms(1.0)),
                (2, SimTime::from_ms(2.0)),
                (5, SimTime::from_ms(5.0)),
            ]
        );
    }

    #[test]
    fn injected_loss_drops_messages() {
        // Drop everything: the gossip never spreads.
        let mut sim = Simulator::new(gossip_net(6), |_, _| SimTime::from_ms(1.0));
        sim.set_loss(|_, _| true);
        let stats = sim.run_until_quiescent(SimTime::from_ms(1_000.0));
        assert_eq!(stats.messages_delivered, 0);
        assert_eq!(stats.messages_dropped, 5);
        assert_eq!(sim.actors().iter().filter(|a| a.seen).count(), 1);

        // Drop every second message: some spread still happens.
        let mut sim = Simulator::new(gossip_net(6), |_, _| SimTime::from_ms(1.0));
        let mut flip = false;
        sim.set_loss(move |_, _| {
            flip = !flip;
            flip
        });
        let stats = sim.run_until_quiescent(SimTime::from_ms(1_000.0));
        assert!(stats.messages_dropped > 0);
        assert!(stats.messages_delivered > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut sim = Simulator::new(gossip_net(8), |f, t| {
                SimTime::from_ms(((f.index() * 7 + t.index() * 3) % 5 + 1) as f64)
            });
            sim.run_until_quiescent(SimTime::from_ms(1_000.0))
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::sim::tests::gossip_net;

    #[test]
    fn trace_records_deliveries_in_time_order() {
        let mut sim = Simulator::new(gossip_net(5), |_, _| SimTime::from_ms(2.0));
        sim.enable_trace();
        let stats = sim.run_until_quiescent(SimTime::from_ms(1_000.0));
        let deliveries = sim
            .trace()
            .iter()
            .filter(|e| matches!(e.event, TraceEvent::Delivered { .. }))
            .count();
        assert_eq!(deliveries as u64, stats.messages_delivered);
        for w in sim.trace().windows(2) {
            assert!(w[0].at <= w[1].at, "trace out of order");
        }
    }

    #[test]
    fn trace_records_drops() {
        let mut sim = Simulator::new(gossip_net(4), |_, _| SimTime::from_ms(1.0));
        sim.enable_trace();
        sim.set_loss(|_, _| true);
        let stats = sim.run_until_quiescent(SimTime::from_ms(100.0));
        let drops = sim
            .trace()
            .iter()
            .filter(|e| matches!(e.event, TraceEvent::Dropped { .. }))
            .count();
        assert_eq!(drops as u64, stats.messages_dropped);
        assert!(drops > 0);
    }

    #[test]
    fn disabled_trace_is_empty() {
        let mut sim = Simulator::new(gossip_net(4), |_, _| SimTime::from_ms(1.0));
        sim.run_until_quiescent(SimTime::from_ms(100.0));
        assert!(sim.trace().is_empty());
    }
}
