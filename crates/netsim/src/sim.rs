//! An actor-style message-passing simulator.
//!
//! Stand-in for ns-2: each overlay node is an [`Actor`]; the
//! [`Simulator`] delivers messages between actors after a delay given
//! by a caller-supplied delay function (typically the end-to-end
//! shortest-path delay between the actors' attachment points) and fires
//! timers actors set for themselves. Execution is single-threaded and
//! fully deterministic.
//!
//! # Example
//!
//! A two-node ping-pong:
//!
//! ```
//! use son_netsim::sim::{Actor, Ctx, Simulator};
//! use son_netsim::{NodeId, SimTime};
//!
//! struct Pinger { got: usize }
//!
//! impl Actor for Pinger {
//!     type Msg = &'static str;
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
//!         if ctx.me() == NodeId::new(0) {
//!             ctx.send(NodeId::new(1), "ping");
//!         }
//!     }
//!     fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: NodeId, msg: Self::Msg) {
//!         self.got += 1;
//!         if msg == "ping" {
//!             ctx.send(from, "pong");
//!         }
//!     }
//! }
//!
//! let actors = vec![Pinger { got: 0 }, Pinger { got: 0 }];
//! let mut sim = Simulator::new(actors, |_, _| SimTime::from_ms(1.0));
//! let stats = sim.run_until_quiescent(SimTime::from_ms(100.0));
//! assert_eq!(stats.messages_delivered, 2);
//! assert_eq!(sim.actors()[0].got, 1); // the pong
//! assert_eq!(sim.actors()[1].got, 1); // the ping
//! ```

use crate::event::{EventQueue, SimTime};
use crate::faults::{FaultPlan, FaultState};
use crate::graph::NodeId;

/// Behaviour of a simulated node.
///
/// Implementations receive a [`Ctx`] through which they can send
/// messages and schedule timers; all effects are deferred through the
/// event queue, keeping the run deterministic.
pub trait Actor {
    /// Message type exchanged between actors. `Clone` lets the fault
    /// layer duplicate an in-flight message without help from actors.
    type Msg: Clone;

    /// Called once at time zero, before any message is delivered.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called when a message from `from` arrives.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when a timer previously set via [`Ctx::set_timer`] fires;
    /// `token` is the value passed when the timer was armed.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg>, token: u64) {
        let _ = (ctx, token);
    }

    /// Called when this node restarts after an injected crash (see
    /// [`FaultPlan::with_crash`]). The actor is expected to model a
    /// loss of volatile state here — reset soft state, re-arm timers.
    /// Timers armed before the crash never fire again.
    fn on_restart(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }
}

/// Handle through which an actor interacts with the simulation.
#[derive(Debug)]
pub struct Ctx<'a, M> {
    me: NodeId,
    now: SimTime,
    outbox: &'a mut Vec<Effect<M>>,
}

impl<M> Ctx<'_, M> {
    /// The id of the actor this context belongs to.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends `msg` to actor `to`; it arrives after the simulator's
    /// delay function's delay for `(me, to)`.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push(Effect::Send { to, msg });
    }

    /// Arms a timer that fires on this actor after `delay`, carrying
    /// `token` back to [`Actor::on_timer`].
    pub fn set_timer(&mut self, delay: SimTime, token: u64) {
        self.outbox.push(Effect::Timer { delay, token });
    }
}

#[derive(Debug)]
enum Effect<M> {
    Send { to: NodeId, msg: M },
    Timer { delay: SimTime, token: u64 },
}

#[derive(Debug)]
enum Event<M> {
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: M,
    },
    Fire {
        on: NodeId,
        token: u64,
        /// The node's crash incarnation when the timer was armed; a
        /// fire whose incarnation is stale is suppressed.
        incarnation: u64,
    },
    Crash {
        node: NodeId,
    },
    Restart {
        node: NodeId,
    },
}

/// One recorded simulation event (when tracing is enabled) — the
/// ns-2-style trace for debugging protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message was delivered.
    Delivered {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
    },
    /// A message was dropped by injected loss.
    Dropped {
        /// Sender.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
    },
    /// A timer fired.
    TimerFired {
        /// The actor whose timer fired.
        on: NodeId,
        /// The token the timer was armed with.
        token: u64,
    },
    /// A node crashed (injected fault).
    Crashed {
        /// The node that went down.
        node: NodeId,
    },
    /// A crashed node came back up with empty volatile state.
    Restarted {
        /// The node that restarted.
        node: NodeId,
    },
}

/// A timestamped trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the event happened.
    pub at: SimTime,
    /// What happened.
    pub event: TraceEvent,
}

/// Counters describing a finished simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Messages handed to [`Actor::on_message`].
    pub messages_delivered: u64,
    /// Messages dropped by injected loss, partitions, or delivery to a
    /// crashed node.
    pub messages_dropped: u64,
    /// Extra deliveries created by injected duplication.
    pub messages_duplicated: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Timer firings suppressed because the node was down or had
    /// crashed since arming.
    pub timers_suppressed: u64,
    /// Injected crash events executed.
    pub crashes: u64,
    /// Injected restart events executed.
    pub restarts: u64,
    /// FNV-1a digest over every processed event (kind, time, nodes).
    /// Two runs of the same simulation with the same fault plan have
    /// identical digests — the cheap always-on determinism witness.
    pub trace_hash: u64,
    /// Simulation time at which the run stopped.
    pub ended_at: SimTime,
}

/// FNV-1a offset basis; the trace hash starts here.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

impl SimStats {
    /// Folds one event into the trace digest.
    fn mix(&mut self, kind: u8, at: SimTime, a: usize, b: usize) {
        let mut h = self.trace_hash;
        for byte in std::iter::once(kind)
            .chain(at.as_micros().to_le_bytes())
            .chain((a as u64).to_le_bytes())
            .chain((b as u64).to_le_bytes())
        {
            h ^= byte as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.trace_hash = h;
    }
}

// Trace-hash event tags.
const TAG_DELIVER: u8 = 1;
const TAG_DROP: u8 = 2;
const TAG_FIRE: u8 = 3;
const TAG_SUPPRESS: u8 = 4;
const TAG_CRASH: u8 = 5;
const TAG_RESTART: u8 = 6;

/// The discrete-event simulator driving a set of actors.
pub struct Simulator<A: Actor, D> {
    actors: Vec<A>,
    delay_fn: D,
    /// When set, invoked per message; returning `true` silently drops
    /// it (lossy-network failure injection).
    loss_fn: Option<Box<dyn FnMut(NodeId, NodeId) -> bool>>,
    /// Installed fault plan state (loss, duplication, jitter,
    /// partitions, crashes), applied inside delivery.
    faults: Option<FaultState>,
    trace: Option<Vec<TraceEntry>>,
    queue: EventQueue<Event<A::Msg>>,
    now: SimTime,
    started: bool,
    stats: SimStats,
    /// Stats already folded into the telemetry registry. `stats` is
    /// cumulative across run calls while registry counters only grow,
    /// so each run folds the delta since the previous one.
    folded: SimStats,
}

impl<A: Actor + std::fmt::Debug, D> std::fmt::Debug for Simulator<A, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("actors", &self.actors)
            .field("now", &self.now)
            .field("lossy", &self.loss_fn.is_some())
            .finish_non_exhaustive()
    }
}

impl<A, D> Simulator<A, D>
where
    A: Actor,
    D: FnMut(NodeId, NodeId) -> SimTime,
{
    /// Creates a simulator over `actors`; actor `i` has id
    /// `NodeId::new(i)`. `delay_fn(from, to)` gives the one-way message
    /// latency between two actors.
    pub fn new(actors: Vec<A>, delay_fn: D) -> Self {
        Simulator {
            actors,
            delay_fn,
            loss_fn: None,
            faults: None,
            trace: None,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            started: false,
            stats: SimStats {
                trace_hash: FNV_OFFSET,
                ..SimStats::default()
            },
            folded: SimStats::default(),
        }
    }

    /// Injects message loss: `loss(from, to)` is consulted for every
    /// sent message and dropping it when `true`. Timers are never
    /// lost. Use a seeded closure for reproducible lossy runs.
    pub fn set_loss<L>(&mut self, loss: L)
    where
        L: FnMut(NodeId, NodeId) -> bool + 'static,
    {
        self.loss_fn = Some(Box::new(loss));
    }

    /// Installs a [`FaultPlan`]: seeded loss/duplication/jitter plus
    /// scheduled partitions and crash/restart events, all applied
    /// deterministically inside delivery. Call before running.
    ///
    /// # Panics
    ///
    /// Panics if a crash or partition names a node outside the actor
    /// set, or if the same node carries more than one crash event
    /// (one crash/restart cycle per node keeps incarnations simple).
    pub fn install_faults(&mut self, plan: FaultPlan) {
        let n = self.actors.len();
        for c in &plan.crashes {
            assert!(c.node.index() < n, "crash names unknown node {}", c.node);
        }
        for p in &plan.partitions {
            for node in &p.island {
                assert!(node.index() < n, "partition names unknown node {node}");
            }
        }
        for (i, c) in plan.crashes.iter().enumerate() {
            assert!(
                plan.crashes[..i].iter().all(|prev| prev.node != c.node),
                "node {} has more than one crash event",
                c.node
            );
        }
        for c in &plan.crashes {
            self.queue.push(c.at, Event::Crash { node: c.node });
            if let Some(restart) = c.restart {
                self.queue.push(restart, Event::Restart { node: c.node });
            }
        }
        self.faults = Some(FaultState::new(plan, n));
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| f.plan())
    }

    /// Whether `node` is currently down under the installed fault plan.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.faults.as_ref().is_some_and(|f| f.is_crashed(node))
    }

    /// The nodes currently down, in id order.
    pub fn crashed_nodes(&self) -> Vec<NodeId> {
        self.faults
            .as_ref()
            .map(|f| f.crashed_nodes())
            .unwrap_or_default()
    }

    /// Starts recording a trace of deliveries, drops and timer firings.
    /// Call before running; entries accumulate across runs.
    pub fn enable_trace(&mut self) {
        self.trace.get_or_insert_with(Vec::new);
    }

    /// The recorded trace (empty slice when tracing was never enabled).
    pub fn trace(&self) -> &[TraceEntry] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Read access to the actors (e.g. to inspect converged state).
    pub fn actors(&self) -> &[A] {
        &self.actors
    }

    /// Mutable access to the actors.
    pub fn actors_mut(&mut self) -> &mut [A] {
        &mut self.actors
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// `true` while undelivered events remain in the queue — i.e. a
    /// deadline (not quiescence) ended the last run.
    pub fn has_pending(&self) -> bool {
        self.queue.peek_time().is_some()
    }

    /// Runs until no events remain or simulated time exceeds
    /// `deadline`, whichever comes first. Returns the run statistics.
    ///
    /// Calling it again resumes the same simulation (e.g. with a later
    /// deadline); `on_start` hooks run only once.
    pub fn run_until_quiescent(&mut self, deadline: SimTime) -> SimStats {
        let mut outbox: Vec<Effect<A::Msg>> = Vec::new();
        if !self.started {
            self.started = true;
            for i in 0..self.actors.len() {
                let me = NodeId::new(i);
                let mut ctx = Ctx {
                    me,
                    now: self.now,
                    outbox: &mut outbox,
                };
                self.actors[i].on_start(&mut ctx);
                self.flush(me, &mut outbox);
            }
        }
        while let Some(at) = self.queue.peek_time() {
            if at > deadline {
                break;
            }
            let (at, event) = self.queue.pop().expect("peeked event exists");
            self.now = at;
            match event {
                Event::Deliver { from, to, msg } => {
                    // A message addressed to a node that crashed while
                    // it was in flight is lost.
                    if self.faults.as_ref().is_some_and(|f| f.is_crashed(to)) {
                        self.stats.messages_dropped += 1;
                        self.stats.mix(TAG_DROP, self.now, from.index(), to.index());
                        if let Some(trace) = &mut self.trace {
                            trace.push(TraceEntry {
                                at: self.now,
                                event: TraceEvent::Dropped { from, to },
                            });
                        }
                        continue;
                    }
                    self.stats.messages_delivered += 1;
                    self.stats
                        .mix(TAG_DELIVER, self.now, from.index(), to.index());
                    if let Some(trace) = &mut self.trace {
                        trace.push(TraceEntry {
                            at: self.now,
                            event: TraceEvent::Delivered { from, to },
                        });
                    }
                    let mut ctx = Ctx {
                        me: to,
                        now: self.now,
                        outbox: &mut outbox,
                    };
                    self.actors[to.index()].on_message(&mut ctx, from, msg);
                    self.flush(to, &mut outbox);
                }
                Event::Fire {
                    on,
                    token,
                    incarnation,
                } => {
                    // Timers die with their incarnation: a fire on a
                    // down node, or one armed before a crash, is void.
                    if self
                        .faults
                        .as_ref()
                        .is_some_and(|f| f.is_crashed(on) || f.incarnation(on) != incarnation)
                    {
                        self.stats.timers_suppressed += 1;
                        self.stats
                            .mix(TAG_SUPPRESS, self.now, on.index(), token as usize);
                        continue;
                    }
                    self.stats.timers_fired += 1;
                    self.stats
                        .mix(TAG_FIRE, self.now, on.index(), token as usize);
                    if let Some(trace) = &mut self.trace {
                        trace.push(TraceEntry {
                            at: self.now,
                            event: TraceEvent::TimerFired { on, token },
                        });
                    }
                    let mut ctx = Ctx {
                        me: on,
                        now: self.now,
                        outbox: &mut outbox,
                    };
                    self.actors[on.index()].on_timer(&mut ctx, token);
                    self.flush(on, &mut outbox);
                }
                Event::Crash { node } => {
                    self.stats.crashes += 1;
                    self.stats.mix(TAG_CRASH, self.now, node.index(), 0);
                    if let Some(trace) = &mut self.trace {
                        trace.push(TraceEntry {
                            at: self.now,
                            event: TraceEvent::Crashed { node },
                        });
                    }
                    self.faults
                        .as_mut()
                        .expect("crash events exist only with faults installed")
                        .crash(node);
                }
                Event::Restart { node } => {
                    self.stats.restarts += 1;
                    self.stats.mix(TAG_RESTART, self.now, node.index(), 0);
                    if let Some(trace) = &mut self.trace {
                        trace.push(TraceEntry {
                            at: self.now,
                            event: TraceEvent::Restarted { node },
                        });
                    }
                    self.faults
                        .as_mut()
                        .expect("restart events exist only with faults installed")
                        .restart(node);
                    let mut ctx = Ctx {
                        me: node,
                        now: self.now,
                        outbox: &mut outbox,
                    };
                    self.actors[node.index()].on_restart(&mut ctx);
                    self.flush(node, &mut outbox);
                }
            }
        }
        self.stats.ended_at = self.now;
        self.fold_into_registry();
        self.stats
    }

    /// Folds the event-counter deltas since the previous run into the
    /// global telemetry registry (the trace hash and timestamps are not
    /// counters and stay out). The baseline always advances so a later
    /// `enabled()` flip does not replay history.
    fn fold_into_registry(&mut self) {
        let prev = self.folded;
        self.folded = self.stats;
        if !son_telemetry::enabled() {
            return;
        }
        let registry = son_telemetry::global();
        for (name, now, before) in [
            (
                "netsim.messages_delivered",
                self.stats.messages_delivered,
                prev.messages_delivered,
            ),
            (
                "netsim.messages_dropped",
                self.stats.messages_dropped,
                prev.messages_dropped,
            ),
            (
                "netsim.messages_duplicated",
                self.stats.messages_duplicated,
                prev.messages_duplicated,
            ),
            (
                "netsim.timers_fired",
                self.stats.timers_fired,
                prev.timers_fired,
            ),
            (
                "netsim.timers_suppressed",
                self.stats.timers_suppressed,
                prev.timers_suppressed,
            ),
            ("netsim.crashes", self.stats.crashes, prev.crashes),
            ("netsim.restarts", self.stats.restarts, prev.restarts),
        ] {
            registry.counter(name).add(now.saturating_sub(before));
        }
    }

    fn flush(&mut self, source: NodeId, outbox: &mut Vec<Effect<A::Msg>>) {
        for effect in outbox.drain(..) {
            match effect {
                Effect::Send { to, msg } => {
                    if let Some(loss) = &mut self.loss_fn {
                        if loss(source, to) {
                            self.stats.messages_dropped += 1;
                            self.stats
                                .mix(TAG_DROP, self.now, source.index(), to.index());
                            if let Some(trace) = &mut self.trace {
                                trace.push(TraceEntry {
                                    at: self.now,
                                    event: TraceEvent::Dropped { from: source, to },
                                });
                            }
                            continue;
                        }
                    }
                    // Partitions and seeded loss are decided at send
                    // time; jitter and duplication perturb delivery.
                    let mut jitter = SimTime::ZERO;
                    let mut duplicate = false;
                    if let Some(faults) = &mut self.faults {
                        if faults.drops(self.now, source, to) {
                            self.stats.messages_dropped += 1;
                            self.stats
                                .mix(TAG_DROP, self.now, source.index(), to.index());
                            if let Some(trace) = &mut self.trace {
                                trace.push(TraceEntry {
                                    at: self.now,
                                    event: TraceEvent::Dropped { from: source, to },
                                });
                            }
                            continue;
                        }
                        jitter = faults.jitter();
                        duplicate = faults.duplicates();
                    }
                    let delay = (self.delay_fn)(source, to);
                    if duplicate {
                        let echo_jitter = self
                            .faults
                            .as_mut()
                            .expect("duplicate implies faults")
                            .jitter();
                        self.stats.messages_duplicated += 1;
                        self.queue.push(
                            self.now + delay + echo_jitter,
                            Event::Deliver {
                                from: source,
                                to,
                                msg: msg.clone(),
                            },
                        );
                    }
                    self.queue.push(
                        self.now + delay + jitter,
                        Event::Deliver {
                            from: source,
                            to,
                            msg,
                        },
                    );
                }
                Effect::Timer { delay, token } => {
                    let incarnation = self
                        .faults
                        .as_ref()
                        .map_or(0, |faults| faults.incarnation(source));
                    self.queue.push(
                        self.now + delay,
                        Event::Fire {
                            on: source,
                            token,
                            incarnation,
                        },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// Actor that floods a counter to all peers once and re-broadcasts
    /// on first receipt (a tiny gossip protocol).
    pub(crate) struct Gossip {
        peers: Vec<NodeId>,
        pub(crate) seen: bool,
        received_at: Option<SimTime>,
    }

    impl Actor for Gossip {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            if ctx.me() == NodeId::new(0) {
                self.seen = true;
                self.received_at = Some(ctx.now());
                for &p in &self.peers {
                    if p != ctx.me() {
                        ctx.send(p, ());
                    }
                }
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, ()>, _from: NodeId, _msg: ()) {
            if !self.seen {
                self.seen = true;
                self.received_at = Some(ctx.now());
                for &p in &self.peers.clone() {
                    if p != ctx.me() {
                        ctx.send(p, ());
                    }
                }
            }
        }
    }

    pub(crate) fn gossip_net(n: usize) -> Vec<Gossip> {
        let peers: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        (0..n)
            .map(|_| Gossip {
                peers: peers.clone(),
                seen: false,
                received_at: None,
            })
            .collect()
    }

    #[test]
    fn gossip_reaches_everyone() {
        let mut sim = Simulator::new(gossip_net(10), |_, _| SimTime::from_ms(1.0));
        sim.run_until_quiescent(SimTime::from_ms(1_000.0));
        assert!(sim.actors().iter().all(|a| a.seen));
    }

    #[test]
    fn delivery_respects_delay_function() {
        // Node 0 broadcasts at t=0; node k's delay from 0 is k ms.
        let mut sim = Simulator::new(gossip_net(5), |from, to| {
            SimTime::from_ms((from.index() as f64 - to.index() as f64).abs())
        });
        sim.run_until_quiescent(SimTime::from_ms(1_000.0));
        for (k, a) in sim.actors().iter().enumerate().skip(1) {
            // Direct delivery from node 0 is k ms; relayed copies can
            // only arrive later, so first receipt is exactly k ms.
            assert_eq!(a.received_at, Some(SimTime::from_ms(k as f64)), "node {k}");
        }
    }

    #[test]
    fn deadline_stops_the_run() {
        let mut sim = Simulator::new(gossip_net(4), |_, _| SimTime::from_ms(10.0));
        let stats = sim.run_until_quiescent(SimTime::from_ms(5.0));
        // Broadcast is in flight but nothing delivered before 5ms.
        assert_eq!(stats.messages_delivered, 0);
        let stats = sim.run_until_quiescent(SimTime::from_ms(1_000.0));
        assert!(stats.messages_delivered > 0);
        assert!(sim.actors().iter().all(|a| a.seen));
    }

    struct TimerBox {
        fired: Vec<(u64, SimTime)>,
    }

    impl Actor for TimerBox {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.set_timer(SimTime::from_ms(5.0), 5);
            ctx.set_timer(SimTime::from_ms(1.0), 1);
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _from: NodeId, _msg: ()) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, token: u64) {
            self.fired.push((token, ctx.now()));
            if token == 1 {
                ctx.set_timer(SimTime::from_ms(1.0), 2);
            }
        }
    }

    #[test]
    fn timers_fire_in_order_and_can_rearm() {
        let mut sim = Simulator::new(vec![TimerBox { fired: vec![] }], |_, _| SimTime::ZERO);
        let stats = sim.run_until_quiescent(SimTime::from_ms(100.0));
        assert_eq!(stats.timers_fired, 3);
        assert_eq!(
            sim.actors()[0].fired,
            vec![
                (1, SimTime::from_ms(1.0)),
                (2, SimTime::from_ms(2.0)),
                (5, SimTime::from_ms(5.0)),
            ]
        );
    }

    #[test]
    fn injected_loss_drops_messages() {
        // Drop everything: the gossip never spreads.
        let mut sim = Simulator::new(gossip_net(6), |_, _| SimTime::from_ms(1.0));
        sim.set_loss(|_, _| true);
        let stats = sim.run_until_quiescent(SimTime::from_ms(1_000.0));
        assert_eq!(stats.messages_delivered, 0);
        assert_eq!(stats.messages_dropped, 5);
        assert_eq!(sim.actors().iter().filter(|a| a.seen).count(), 1);

        // Drop every second message: some spread still happens.
        let mut sim = Simulator::new(gossip_net(6), |_, _| SimTime::from_ms(1.0));
        let mut flip = false;
        sim.set_loss(move |_, _| {
            flip = !flip;
            flip
        });
        let stats = sim.run_until_quiescent(SimTime::from_ms(1_000.0));
        assert!(stats.messages_dropped > 0);
        assert!(stats.messages_delivered > 0);
    }

    #[test]
    fn run_folds_event_counters_into_the_registry() {
        son_telemetry::set_enabled(true);
        let registry = son_telemetry::global();
        let before = registry.counter("netsim.messages_delivered").get();
        let mut sim = Simulator::new(gossip_net(5), |_, _| SimTime::from_ms(1.0));
        let stats = sim.run_until_quiescent(SimTime::from_ms(1_000.0));
        // The registry is global and parallel tests may fold too, so
        // the delta is at least — not exactly — this run's count.
        let after = registry.counter("netsim.messages_delivered").get();
        assert!(
            after >= before + stats.messages_delivered,
            "counter moved {before} -> {after}, run delivered {}",
            stats.messages_delivered
        );
        // Resuming a quiescent run delivers nothing new, and the fold
        // is a delta — cumulative stats are never re-added.
        let again = sim.run_until_quiescent(SimTime::from_ms(2_000.0));
        assert_eq!(again.messages_delivered, stats.messages_delivered);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut sim = Simulator::new(gossip_net(8), |f, t| {
                SimTime::from_ms(((f.index() * 7 + t.index() * 3) % 5 + 1) as f64)
            });
            sim.run_until_quiescent(SimTime::from_ms(1_000.0))
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::sim::tests::gossip_net;

    #[test]
    fn trace_records_deliveries_in_time_order() {
        let mut sim = Simulator::new(gossip_net(5), |_, _| SimTime::from_ms(2.0));
        sim.enable_trace();
        let stats = sim.run_until_quiescent(SimTime::from_ms(1_000.0));
        let deliveries = sim
            .trace()
            .iter()
            .filter(|e| matches!(e.event, TraceEvent::Delivered { .. }))
            .count();
        assert_eq!(deliveries as u64, stats.messages_delivered);
        for w in sim.trace().windows(2) {
            assert!(w[0].at <= w[1].at, "trace out of order");
        }
    }

    #[test]
    fn trace_records_drops() {
        let mut sim = Simulator::new(gossip_net(4), |_, _| SimTime::from_ms(1.0));
        sim.enable_trace();
        sim.set_loss(|_, _| true);
        let stats = sim.run_until_quiescent(SimTime::from_ms(100.0));
        let drops = sim
            .trace()
            .iter()
            .filter(|e| matches!(e.event, TraceEvent::Dropped { .. }))
            .count();
        assert_eq!(drops as u64, stats.messages_dropped);
        assert!(drops > 0);
    }

    #[test]
    fn disabled_trace_is_empty() {
        let mut sim = Simulator::new(gossip_net(4), |_, _| SimTime::from_ms(1.0));
        sim.run_until_quiescent(SimTime::from_ms(100.0));
        assert!(sim.trace().is_empty());
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::sim::tests::gossip_net;

    #[test]
    fn certain_loss_stops_the_gossip() {
        let mut sim = Simulator::new(gossip_net(6), |_, _| SimTime::from_ms(1.0));
        sim.install_faults(FaultPlan::new(7).with_loss(1.0));
        let stats = sim.run_until_quiescent(SimTime::from_ms(1_000.0));
        assert_eq!(stats.messages_delivered, 0);
        assert_eq!(stats.messages_dropped, 5);
        assert_eq!(sim.actors().iter().filter(|a| a.seen).count(), 1);
    }

    #[test]
    fn certain_duplication_doubles_deliveries() {
        let baseline = {
            let mut sim = Simulator::new(gossip_net(5), |_, _| SimTime::from_ms(1.0));
            sim.run_until_quiescent(SimTime::from_ms(1_000.0))
        };
        let mut sim = Simulator::new(gossip_net(5), |_, _| SimTime::from_ms(1.0));
        sim.install_faults(FaultPlan::new(7).with_duplicate(1.0));
        let stats = sim.run_until_quiescent(SimTime::from_ms(1_000.0));
        assert_eq!(stats.messages_duplicated, stats.messages_delivered / 2);
        assert!(stats.messages_delivered >= 2 * baseline.messages_delivered);
        assert!(sim.actors().iter().all(|a| a.seen));
    }

    #[test]
    fn partition_blocks_cross_island_traffic() {
        // Island {0,1,2} is cut off for the whole run: the gossip
        // started by node 0 must stay inside the island.
        let island: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        let mut sim = Simulator::new(gossip_net(6), |_, _| SimTime::from_ms(1.0));
        sim.install_faults(FaultPlan::new(1).with_partition(
            SimTime::ZERO,
            SimTime::from_ms(10_000.0),
            island,
        ));
        sim.run_until_quiescent(SimTime::from_ms(1_000.0));
        for (i, a) in sim.actors().iter().enumerate() {
            assert_eq!(a.seen, i < 3, "node {i}");
        }
    }

    #[test]
    fn healed_partition_lets_later_traffic_through() {
        // The cut ends at 0.5ms, before any 1ms-delayed send fires a
        // retransmission — but gossip only sends once, so instead start
        // the partition after the initial flood has been delivered.
        let island: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        let mut sim = Simulator::new(gossip_net(6), |_, _| SimTime::from_ms(1.0));
        sim.install_faults(FaultPlan::new(1).with_partition(
            SimTime::from_ms(100.0),
            SimTime::from_ms(200.0),
            island,
        ));
        sim.run_until_quiescent(SimTime::from_ms(1_000.0));
        assert!(sim.actors().iter().all(|a| a.seen));
    }

    #[test]
    fn messages_to_a_crashed_node_are_lost() {
        // Node 1 dies before the initial flood (sent at t=0, delivered
        // at t=1ms) reaches it.
        let mut sim = Simulator::new(gossip_net(4), |_, _| SimTime::from_ms(1.0));
        sim.install_faults(FaultPlan::new(1).with_crash(
            NodeId::new(1),
            SimTime::from_ms(0.5),
            None,
        ));
        let stats = sim.run_until_quiescent(SimTime::from_ms(1_000.0));
        assert_eq!(stats.crashes, 1);
        assert!(stats.messages_dropped > 0);
        assert!(!sim.actors()[1].seen);
        assert!(sim.is_crashed(NodeId::new(1)));
        assert_eq!(sim.crashed_nodes(), vec![NodeId::new(1)]);
    }

    /// Arms one timer at start, re-arms from `on_restart`.
    struct Phoenix {
        fired: u64,
        restarted: u64,
    }

    impl Actor for Phoenix {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.set_timer(SimTime::from_ms(1.0), 1);
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _from: NodeId, _msg: ()) {}
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, ()>, _token: u64) {
            self.fired += 1;
        }
        fn on_restart(&mut self, ctx: &mut Ctx<'_, ()>) {
            self.restarted += 1;
            ctx.set_timer(SimTime::from_ms(1.0), 1);
        }
    }

    #[test]
    fn crash_suppresses_armed_timers_and_restart_rearms() {
        let actors = vec![
            Phoenix {
                fired: 0,
                restarted: 0,
            },
            Phoenix {
                fired: 0,
                restarted: 0,
            },
        ];
        let mut sim = Simulator::new(actors, |_, _| SimTime::ZERO);
        // Node 0 crashes before its 1ms timer and comes back at 5ms;
        // node 1 is untouched.
        sim.install_faults(FaultPlan::new(1).with_crash(
            NodeId::new(0),
            SimTime::from_ms(0.5),
            Some(SimTime::from_ms(5.0)),
        ));
        let stats = sim.run_until_quiescent(SimTime::from_ms(100.0));
        assert_eq!(stats.timers_suppressed, 1, "pre-crash timer must die");
        assert_eq!(stats.restarts, 1);
        assert!(!sim.is_crashed(NodeId::new(0)));
        assert_eq!(sim.actors()[0].restarted, 1);
        assert_eq!(sim.actors()[0].fired, 1, "only the re-armed timer fires");
        assert_eq!(sim.actors()[1].fired, 1);
        assert_eq!(sim.actors()[1].restarted, 0);
    }

    #[test]
    fn same_seed_same_trace_hash() {
        let run = |seed: u64| {
            let mut sim = Simulator::new(gossip_net(8), |f, t| {
                SimTime::from_ms(((f.index() * 7 + t.index() * 3) % 5 + 1) as f64)
            });
            sim.install_faults(
                FaultPlan::new(seed)
                    .with_loss(0.2)
                    .with_duplicate(0.1)
                    .with_jitter_ms(0.5),
            );
            sim.run_until_quiescent(SimTime::from_ms(1_000.0))
        };
        let (a, b) = (run(11), run(11));
        assert_eq!(a, b);
        assert_ne!(a.trace_hash, 0);
        // A different seed perturbs loss/jitter draws and the digest.
        assert_ne!(run(12).trace_hash, a.trace_hash);
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn crash_on_unknown_node_is_rejected() {
        let mut sim = Simulator::new(gossip_net(2), |_, _| SimTime::from_ms(1.0));
        sim.install_faults(FaultPlan::new(1).with_crash(
            NodeId::new(9),
            SimTime::from_ms(1.0),
            None,
        ));
    }
}
