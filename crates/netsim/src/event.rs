//! Simulation time and a deterministic event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time.
///
/// Time is kept as an integer number of microseconds so that event
/// ordering is exact and runs are bit-for-bit reproducible; the public
/// constructors and accessors speak milliseconds, the unit used for link
/// delays throughout the workspace.
///
/// # Example
///
/// ```
/// use son_netsim::SimTime;
///
/// let t = SimTime::from_ms(1.5) + SimTime::from_ms(0.25);
/// assert_eq!(t.as_ms(), 1.75);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant (simulation start).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from milliseconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn from_ms(ms: f64) -> Self {
        assert!(
            ms.is_finite() && ms >= 0.0,
            "time must be finite and >= 0, got {ms}"
        );
        SimTime((ms * 1000.0).round() as u64)
    }

    /// Creates a time from an exact number of microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// This time in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// This time in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_ms())
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

/// A deterministic priority queue of timestamped events.
///
/// Events that share a timestamp are delivered in insertion order
/// (FIFO), which makes simulation runs reproducible regardless of heap
/// internals.
///
/// # Example
///
/// ```
/// use son_netsim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ms(2.0), "later");
/// q.push(SimTime::from_ms(1.0), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_ms(1.0), "sooner")));
/// assert_eq!(q.pop(), Some((SimTime::from_ms(2.0), "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<QueuedEvent<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueuedEvent { at, seq, event });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|q| (q.at, q.event))
    }

    /// Timestamp of the earliest event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|q| q.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[derive(Debug)]
struct QueuedEvent<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for QueuedEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for QueuedEvent<E> {}

impl<E> Ord for QueuedEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behaviour; FIFO within a timestamp.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for QueuedEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_time_round_trips_ms() {
        let t = SimTime::from_ms(12.345);
        assert!((t.as_ms() - 12.345).abs() < 1e-9);
        assert_eq!(t.as_micros(), 12_345);
    }

    #[test]
    fn sim_time_arithmetic() {
        let a = SimTime::from_ms(1.0);
        let b = SimTime::from_ms(2.5);
        assert_eq!((a + b).as_ms(), 3.5);
        assert_eq!((b - a).as_ms(), 1.5);
        // Subtraction saturates at zero rather than wrapping.
        assert_eq!((a - b), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c.as_ms(), 3.5);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_time_panics() {
        let _ = SimTime::from_ms(-1.0);
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ms(3.0), 3);
        q.push(SimTime::from_ms(1.0), 1);
        q.push(SimTime::from_ms(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ms(1.0);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::from_ms(5.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(5.0)));
        assert_eq!(q.len(), 1);
    }
}
