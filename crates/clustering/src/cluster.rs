//! The result of a clustering pass.

/// A partition of the points `0..len` into clusters.
///
/// Cluster ids are dense (`0..cluster_count`) and assigned in order of
/// each cluster's smallest member, so results are stable across runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    assignment: Vec<usize>,
    members: Vec<Vec<usize>>,
}

impl Clustering {
    /// Builds a clustering from a raw per-point label vector. Labels
    /// may be arbitrary; they are renumbered densely.
    pub fn from_labels(labels: &[usize]) -> Self {
        let mut remap: Vec<Option<usize>> = Vec::new();
        let mut assignment = Vec::with_capacity(labels.len());
        let mut members: Vec<Vec<usize>> = Vec::new();
        for (point, &raw) in labels.iter().enumerate() {
            if raw >= remap.len() {
                remap.resize(raw + 1, None);
            }
            let dense = match remap[raw] {
                Some(d) => d,
                None => {
                    let d = members.len();
                    remap[raw] = Some(d);
                    members.push(Vec::new());
                    d
                }
            };
            assignment.push(dense);
            members[dense].push(point);
        }
        Clustering {
            assignment,
            members,
        }
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if there are no points at all.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Number of points.
    pub fn point_count(&self) -> usize {
        self.assignment.len()
    }

    /// The cluster id of `point`.
    ///
    /// # Panics
    ///
    /// Panics if `point` is out of range.
    pub fn cluster_of(&self, point: usize) -> usize {
        self.assignment[point]
    }

    /// Members of cluster `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= len()`.
    pub fn members(&self, id: usize) -> &[usize] {
        &self.members[id]
    }

    /// Iterates over clusters as `(id, members)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[usize])> {
        self.members
            .iter()
            .enumerate()
            .map(|(i, m)| (i, m.as_slice()))
    }

    /// Sizes of all clusters.
    pub fn sizes(&self) -> Vec<usize> {
        self.members.iter().map(|m| m.len()).collect()
    }

    /// Size of the largest cluster.
    pub fn max_cluster_size(&self) -> usize {
        self.members.iter().map(|m| m.len()).max().unwrap_or(0)
    }

    /// Mean intra-cluster distance divided by mean inter-cluster
    /// distance under `dist` — a quality score where lower is better
    /// (well-separated clusters score well below 1).
    ///
    /// Returns `None` if either side has no pairs (e.g. a single
    /// cluster, or all singletons).
    pub fn separation_score<D>(&self, dist: D) -> Option<f64>
    where
        D: Fn(usize, usize) -> f64,
    {
        let mut intra_sum = 0.0;
        let mut intra_n = 0u64;
        let mut inter_sum = 0.0;
        let mut inter_n = 0u64;
        let n = self.assignment.len();
        for a in 0..n {
            for b in (a + 1)..n {
                let d = dist(a, b);
                if self.assignment[a] == self.assignment[b] {
                    intra_sum += d;
                    intra_n += 1;
                } else {
                    inter_sum += d;
                    inter_n += 1;
                }
            }
        }
        if intra_n == 0 || inter_n == 0 {
            return None;
        }
        Some((intra_sum / intra_n as f64) / (inter_sum / inter_n as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_renumbered_densely() {
        let c = Clustering::from_labels(&[7, 7, 3, 9, 3]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.cluster_of(0), c.cluster_of(1));
        assert_eq!(c.cluster_of(2), c.cluster_of(4));
        assert_ne!(c.cluster_of(0), c.cluster_of(3));
        // Dense ids in order of first appearance.
        assert_eq!(c.cluster_of(0), 0);
        assert_eq!(c.cluster_of(2), 1);
        assert_eq!(c.cluster_of(3), 2);
    }

    #[test]
    fn members_partition_points() {
        let c = Clustering::from_labels(&[0, 1, 0, 2, 1, 0]);
        let mut all: Vec<usize> = c.iter().flat_map(|(_, m)| m.iter().copied()).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(c.sizes(), vec![3, 2, 1]);
        assert_eq!(c.max_cluster_size(), 3);
        assert_eq!(c.point_count(), 6);
    }

    #[test]
    fn separation_score_prefers_tight_clusters() {
        // points 0,1 near zero; 2,3 near 100
        let xs: &[f64] = &[0.0, 1.0, 100.0, 101.0];
        let dist = |a: usize, b: usize| (xs[a] - xs[b]).abs();
        let good = Clustering::from_labels(&[0, 0, 1, 1]);
        let bad = Clustering::from_labels(&[0, 1, 0, 1]);
        let sg = good.separation_score(dist).unwrap();
        let sb = bad.separation_score(dist).unwrap();
        assert!(sg < 0.1, "good clustering score {sg}");
        assert!(sb > 1.0, "bad clustering score {sb}");
    }

    #[test]
    fn separation_score_edge_cases() {
        let xs: &[f64] = &[0.0, 1.0];
        let dist = |a: usize, b: usize| (xs[a] - xs[b]).abs();
        // Single cluster: no inter pairs.
        assert!(Clustering::from_labels(&[0, 0])
            .separation_score(dist)
            .is_none());
        // All singletons: no intra pairs.
        assert!(Clustering::from_labels(&[0, 1])
            .separation_score(dist)
            .is_none());
    }

    #[test]
    fn empty_clustering() {
        let c = Clustering::from_labels(&[]);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.max_cluster_size(), 0);
    }
}
