//! # son-clustering
//!
//! Distance-based clustering by Zahn's minimum-spanning-tree method
//! (C. T. Zahn, "Graph-Theoretical Methods for Detecting and Describing
//! Gestalt Clusters", IEEE Trans. Computers, 1971) — the clustering
//! algorithm the paper uses in Section 3.2 to detect proxy clusters in
//! the virtual coordinate space:
//!
//! 1. build the MST of the complete distance graph over the `n` points;
//! 2. mark edges *inconsistent* when their length is significantly
//!    larger than the average length of nearby edges;
//! 3. remove inconsistent edges — the surviving connected components
//!    are the clusters.
//!
//! The crate is self-contained: callers supply a distance function over
//! point indices, so it clusters anything with a metric (the overlay
//! crate feeds it Euclidean distances between proxy coordinates).
//!
//! # Example
//!
//! ```
//! use son_clustering::{mst_complete, ZahnClusterer, ZahnConfig};
//!
//! // Two obvious groups on a line: {0,1,2} near 0 and {3,4,5} near 100.
//! let xs: &[f64] = &[0.0, 1.0, 2.0, 100.0, 101.0, 102.0];
//! let dist = |a: usize, b: usize| (xs[a] - xs[b]).abs();
//! let mst = mst_complete(xs.len(), dist);
//! let clustering = ZahnClusterer::new(ZahnConfig::default()).cluster(&mst);
//! assert_eq!(clustering.len(), 2);
//! assert_eq!(clustering.cluster_of(0), clustering.cluster_of(2));
//! assert_ne!(clustering.cluster_of(0), clustering.cluster_of(3));
//! ```

pub mod cluster;
pub mod mst;
pub mod unionfind;
pub mod zahn;

pub use cluster::Clustering;
pub use mst::{mst_complete, mst_complete_threads, mst_kruskal, Mst, MstEdge};
pub use unionfind::UnionFind;
pub use zahn::{InconsistencyRule, ZahnClusterer, ZahnConfig};
