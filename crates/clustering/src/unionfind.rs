//! Disjoint-set forest (union-find) with path compression and union by
//! rank.

/// A union-find structure over the indices `0..n`.
///
/// # Example
///
/// ```
/// use son_clustering::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// assert_eq!(uf.set_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure has no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently present.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Finds the representative of `x`'s set (with path compression).
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were
    /// previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.sets -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_with_singletons() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.set_count(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert_eq!(uf.set_count(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn transitive_chains_collapse() {
        let n = 100;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.set_count(), 1);
        let root = uf.find(0);
        for i in 0..n {
            assert_eq!(uf.find(i), root);
        }
    }

    #[test]
    fn empty_is_fine() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.set_count(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Union-find agrees with a naive label-propagation model.
        #[test]
        fn matches_naive_model(unions in proptest::collection::vec((0usize..20, 0usize..20), 0..40)) {
            let n = 20;
            let mut uf = UnionFind::new(n);
            let mut labels: Vec<usize> = (0..n).collect();
            for &(a, b) in &unions {
                uf.union(a, b);
                let (la, lb) = (labels[a], labels[b]);
                if la != lb {
                    for l in labels.iter_mut() {
                        if *l == lb {
                            *l = la;
                        }
                    }
                }
            }
            let mut distinct = labels.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assert_eq!(uf.set_count(), distinct.len());
            for a in 0..n {
                for b in 0..n {
                    prop_assert_eq!(uf.connected(a, b), labels[a] == labels[b]);
                }
            }
        }
    }
}
