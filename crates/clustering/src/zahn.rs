//! Zahn's inconsistent-edge clustering over an MST.
//!
//! An MST edge is *inconsistent* when its length is significantly
//! larger than the average length of nearby edges (Zahn 1971; the
//! paper's Section 3.2 uses the ratio test `a / b > k`). Removing all
//! inconsistent edges splits the tree into connected components — the
//! clusters.

use crate::cluster::Clustering;
use crate::mst::Mst;
use crate::unionfind::UnionFind;

/// How the neighborhood averages on the two sides of an edge are
/// combined into the inconsistency test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InconsistencyRule {
    /// Compare the edge against the mean of nearby edges on *both*
    /// sides pooled together (the formulation in the paper's
    /// Section 3.2).
    #[default]
    CombinedMean,
    /// Require the edge to exceed `k ×` the mean on *each* side that
    /// has nearby edges (Zahn's stricter original test; produces fewer
    /// cuts).
    BothSides,
}

/// Parameters of the Zahn clusterer.
#[derive(Debug, Clone, PartialEq)]
pub struct ZahnConfig {
    /// Inconsistency ratio `k`: an edge of length `a` is inconsistent
    /// when `a / b > k` for neighborhood mean `b`. The paper suggests
    /// `k = 2, 3, …`.
    pub ratio: f64,
    /// Neighborhood depth `d`: edges within `d` hops of an endpoint
    /// count as "nearby".
    pub depth: usize,
    /// Side-combination rule.
    pub rule: InconsistencyRule,
    /// Clusters smaller than this are merged back into the neighboring
    /// cluster reachable over the cheapest removed edge. `1` (default)
    /// disables absorption.
    pub min_cluster_size: usize,
}

impl Default for ZahnConfig {
    fn default() -> Self {
        ZahnConfig {
            ratio: 2.0,
            depth: 2,
            rule: InconsistencyRule::CombinedMean,
            min_cluster_size: 1,
        }
    }
}

/// Detects clusters by removing inconsistent MST edges.
///
/// # Example
///
/// ```
/// use son_clustering::{mst_complete, ZahnClusterer, ZahnConfig};
///
/// let xs: &[f64] = &[0.0, 1.0, 2.0, 50.0, 51.0, 52.0, 100.0, 101.0];
/// let mst = mst_complete(xs.len(), |a, b| (xs[a] - xs[b]).abs());
/// let clustering = ZahnClusterer::new(ZahnConfig::default()).cluster(&mst);
/// assert_eq!(clustering.len(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ZahnClusterer {
    config: ZahnConfig,
}

impl ZahnClusterer {
    /// Creates a clusterer with the given configuration.
    pub fn new(config: ZahnConfig) -> Self {
        assert!(config.ratio > 0.0, "inconsistency ratio must be positive");
        ZahnClusterer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ZahnConfig {
        &self.config
    }

    /// Returns the indices (into `mst.edges()`) of inconsistent edges.
    pub fn inconsistent_edges(&self, mst: &Mst) -> Vec<usize> {
        (0..mst.edges().len())
            .filter(|&ei| self.is_inconsistent(mst, ei))
            .collect()
    }

    /// Clusters the MST's points by removing inconsistent edges (and
    /// optionally absorbing undersized clusters).
    pub fn cluster(&self, mst: &Mst) -> Clustering {
        let n = mst.len();
        if n == 0 {
            return Clustering::from_labels(&[]);
        }
        let inconsistent = self.inconsistent_edges(mst);
        let mut removed = vec![false; mst.edges().len()];
        for &ei in &inconsistent {
            removed[ei] = true;
        }
        let mut uf = UnionFind::new(n);
        for (ei, e) in mst.edges().iter().enumerate() {
            if !removed[ei] {
                uf.union(e.a, e.b);
            }
        }

        if self.config.min_cluster_size > 1 {
            self.absorb_small_components(mst, &mut uf, &mut removed);
        }

        let labels: Vec<usize> = (0..n).map(|p| uf.find(p)).collect();
        Clustering::from_labels(&labels)
    }

    /// Repeatedly re-adds the cheapest removed edge that touches an
    /// undersized component until every component reaches the minimum
    /// size (or no removed edges remain).
    fn absorb_small_components(&self, mst: &Mst, uf: &mut UnionFind, removed: &mut [bool]) {
        loop {
            // Component sizes.
            let n = mst.len();
            let mut size = vec![0usize; n];
            for p in 0..n {
                size[uf.find(p)] += 1;
            }
            // Cheapest removed edge incident to an undersized component.
            let mut best: Option<(usize, f64)> = None;
            for (ei, e) in mst.edges().iter().enumerate() {
                if !removed[ei] {
                    continue;
                }
                let (ra, rb) = (uf.find(e.a), uf.find(e.b));
                if ra == rb {
                    continue;
                }
                let undersized = size[ra] < self.config.min_cluster_size
                    || size[rb] < self.config.min_cluster_size;
                if undersized && best.is_none_or(|(_, w)| e.weight < w) {
                    best = Some((ei, e.weight));
                }
            }
            match best {
                Some((ei, _)) => {
                    removed[ei] = false;
                    let e = mst.edges()[ei];
                    uf.union(e.a, e.b);
                }
                None => break,
            }
        }
    }

    fn is_inconsistent(&self, mst: &Mst, edge_index: usize) -> bool {
        let e = mst.edges()[edge_index];
        let side_a = self.nearby_weights(mst, e.a, edge_index);
        let side_b = self.nearby_weights(mst, e.b, edge_index);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        match self.config.rule {
            InconsistencyRule::CombinedMean => {
                let total = side_a.len() + side_b.len();
                if total == 0 {
                    return false; // nothing to compare against
                }
                let b = (side_a.iter().sum::<f64>() + side_b.iter().sum::<f64>()) / total as f64;
                b > 0.0 && e.weight / b > self.config.ratio
            }
            InconsistencyRule::BothSides => {
                if side_a.is_empty() && side_b.is_empty() {
                    return false;
                }
                let pass_a = side_a.is_empty() || {
                    let m = mean(&side_a);
                    m > 0.0 && e.weight / m > self.config.ratio
                };
                let pass_b = side_b.is_empty() || {
                    let m = mean(&side_b);
                    m > 0.0 && e.weight / m > self.config.ratio
                };
                pass_a && pass_b
            }
        }
    }

    /// Weights of MST edges within `depth` hops of `start`, walking
    /// away from (never across) `excluded_edge`.
    fn nearby_weights(&self, mst: &Mst, start: usize, excluded_edge: usize) -> Vec<f64> {
        let mut weights = Vec::new();
        let mut visited_edges = vec![false; mst.edges().len()];
        visited_edges[excluded_edge] = true;
        let mut frontier = vec![start];
        for _ in 0..self.config.depth {
            let mut next = Vec::new();
            for &node in &frontier {
                for &ei in mst.incident_edges(node) {
                    if visited_edges[ei] {
                        continue;
                    }
                    visited_edges[ei] = true;
                    let e = mst.edges()[ei];
                    weights.push(e.weight);
                    next.push(if e.a == node { e.b } else { e.a });
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst::mst_complete;

    fn line_mst(xs: &[f64]) -> Mst {
        mst_complete(xs.len(), |a, b| (xs[a] - xs[b]).abs())
    }

    #[test]
    fn uniform_points_form_one_cluster() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let clustering = ZahnClusterer::default().cluster(&line_mst(&xs));
        assert_eq!(clustering.len(), 1);
    }

    #[test]
    fn well_separated_groups_are_split() {
        let mut xs = Vec::new();
        for g in 0..4 {
            for i in 0..5 {
                xs.push(g as f64 * 1000.0 + i as f64);
            }
        }
        let clustering = ZahnClusterer::default().cluster(&line_mst(&xs));
        assert_eq!(clustering.len(), 4);
        for g in 0..4 {
            let c = clustering.cluster_of(g * 5);
            for i in 1..5 {
                assert_eq!(clustering.cluster_of(g * 5 + i), c);
            }
        }
    }

    #[test]
    fn ratio_controls_sensitivity() {
        // Mild gap: 3x the local spacing.
        let xs: &[f64] = &[0.0, 1.0, 2.0, 3.0, 6.5, 7.5, 8.5, 9.5];
        let mst = line_mst(xs);
        let loose = ZahnClusterer::new(ZahnConfig {
            ratio: 5.0,
            ..ZahnConfig::default()
        })
        .cluster(&mst);
        let tight = ZahnClusterer::new(ZahnConfig {
            ratio: 2.0,
            ..ZahnConfig::default()
        })
        .cluster(&mst);
        assert_eq!(loose.len(), 1, "k=5 should tolerate the gap");
        assert_eq!(tight.len(), 2, "k=2 should cut the gap");
    }

    #[test]
    fn both_sides_rule_cuts_no_more_than_combined() {
        let xs: &[f64] = &[0.0, 1.0, 2.0, 10.0, 11.0, 30.0, 31.0, 32.0];
        let mst = line_mst(xs);
        let combined = ZahnClusterer::new(ZahnConfig {
            rule: InconsistencyRule::CombinedMean,
            ..ZahnConfig::default()
        })
        .inconsistent_edges(&mst);
        let both = ZahnClusterer::new(ZahnConfig {
            rule: InconsistencyRule::BothSides,
            ..ZahnConfig::default()
        })
        .inconsistent_edges(&mst);
        for ei in &both {
            assert!(
                combined.contains(ei),
                "BothSides cut an edge CombinedMean kept"
            );
        }
    }

    #[test]
    fn absorption_removes_tiny_clusters() {
        // A lone outlier between two groups.
        let xs: &[f64] = &[0.0, 1.0, 2.0, 50.0, 100.0, 101.0, 102.0];
        let mst = line_mst(xs);
        let raw = ZahnClusterer::new(ZahnConfig {
            ratio: 2.0,
            ..ZahnConfig::default()
        })
        .cluster(&mst);
        assert!(
            raw.sizes().contains(&1),
            "outlier should be a singleton: {:?}",
            raw.sizes()
        );
        let absorbed = ZahnClusterer::new(ZahnConfig {
            ratio: 2.0,
            min_cluster_size: 2,
            ..ZahnConfig::default()
        })
        .cluster(&mst);
        assert!(
            absorbed.sizes().iter().all(|&s| s >= 2),
            "sizes after absorption: {:?}",
            absorbed.sizes()
        );
    }

    #[test]
    fn two_points_never_split() {
        // A single edge has no nearby edges, so it can never be judged
        // inconsistent.
        let xs: &[f64] = &[0.0, 1_000_000.0];
        let clustering = ZahnClusterer::default().cluster(&line_mst(xs));
        assert_eq!(clustering.len(), 1);
    }

    #[test]
    fn empty_input_is_empty_output() {
        let clustering = ZahnClusterer::default().cluster(&line_mst(&[]));
        assert!(clustering.is_empty());
    }

    #[test]
    fn depth_widens_the_neighborhood() {
        // Geometric spacing: every edge is 2x its left neighbor. With
        // depth 1 and k=2 the ratio test sees only the adjacent edges.
        let mut xs = vec![0.0];
        let mut step = 1.0;
        for _ in 0..10 {
            let last = *xs.last().expect("non-empty");
            xs.push(last + step);
            step *= 2.0;
        }
        let mst = line_mst(&xs);
        let shallow = ZahnClusterer::new(ZahnConfig {
            depth: 1,
            ..ZahnConfig::default()
        })
        .inconsistent_edges(&mst);
        let deep = ZahnClusterer::new(ZahnConfig {
            depth: 4,
            ..ZahnConfig::default()
        })
        .inconsistent_edges(&mst);
        // Deeper neighborhoods include smaller far-away edges, lowering
        // the mean and flagging more edges.
        assert!(deep.len() >= shallow.len());
    }

    #[test]
    fn clusters_in_2d() {
        let mut pts: Vec<(f64, f64)> = Vec::new();
        for &(cx, cy) in &[(0.0, 0.0), (100.0, 0.0), (50.0, 90.0)] {
            for i in 0..6 {
                pts.push((cx + (i % 3) as f64, cy + (i / 3) as f64));
            }
        }
        let dist = |a: usize, b: usize| {
            ((pts[a].0 - pts[b].0).powi(2) + (pts[a].1 - pts[b].1).powi(2)).sqrt()
        };
        let mst = mst_complete(pts.len(), dist);
        let clustering = ZahnClusterer::default().cluster(&mst);
        assert_eq!(clustering.len(), 3);
        assert_eq!(clustering.sizes(), vec![6, 6, 6]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_ratio_panics() {
        let _ = ZahnClusterer::new(ZahnConfig {
            ratio: 0.0,
            ..ZahnConfig::default()
        });
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::mst::mst_complete;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Clustering is always a partition of the input points.
        #[test]
        fn clustering_partitions_points(
            points in proptest::collection::vec((0.0f64..1000.0, 0.0f64..1000.0), 1..60)
        ) {
            let dist = |a: usize, b: usize| {
                ((points[a].0 - points[b].0).powi(2) + (points[a].1 - points[b].1).powi(2)).sqrt()
            };
            let mst = mst_complete(points.len(), dist);
            let clustering = ZahnClusterer::default().cluster(&mst);
            prop_assert_eq!(clustering.point_count(), points.len());
            let total: usize = clustering.sizes().iter().sum();
            prop_assert_eq!(total, points.len());
            for (id, members) in clustering.iter() {
                for &m in members {
                    prop_assert_eq!(clustering.cluster_of(m), id);
                }
            }
        }

        /// Raising the ratio can only merge clusters, never split them
        /// further (monotonicity of the cut set).
        #[test]
        fn higher_ratio_means_fewer_clusters(
            points in proptest::collection::vec((0.0f64..1000.0, 0.0f64..1000.0), 2..40)
        ) {
            let dist = |a: usize, b: usize| {
                ((points[a].0 - points[b].0).powi(2) + (points[a].1 - points[b].1).powi(2)).sqrt()
            };
            let mst = mst_complete(points.len(), dist);
            let low = ZahnClusterer::new(ZahnConfig { ratio: 1.5, ..ZahnConfig::default() })
                .cluster(&mst);
            let high = ZahnClusterer::new(ZahnConfig { ratio: 3.0, ..ZahnConfig::default() })
                .cluster(&mst);
            prop_assert!(high.len() <= low.len());
        }
    }
}
