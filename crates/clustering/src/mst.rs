//! Minimum spanning trees over point sets and explicit edge lists.

use crate::unionfind::UnionFind;

/// One edge of a minimum spanning tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MstEdge {
    /// First endpoint (point index).
    pub a: usize,
    /// Second endpoint (point index).
    pub b: usize,
    /// Edge length.
    pub weight: f64,
}

/// A minimum spanning tree over points `0..len`.
///
/// Stores the `len - 1` tree edges and an adjacency index for
/// neighborhood walks (used by Zahn's inconsistency test).
#[derive(Debug, Clone)]
pub struct Mst {
    len: usize,
    edges: Vec<MstEdge>,
    /// For each node, indices into `edges` of its incident tree edges.
    incidence: Vec<Vec<usize>>,
}

impl Mst {
    fn from_edges(len: usize, edges: Vec<MstEdge>) -> Self {
        let mut incidence = vec![Vec::new(); len];
        for (i, e) in edges.iter().enumerate() {
            incidence[e.a].push(i);
            incidence[e.b].push(i);
        }
        Mst {
            len,
            edges,
            incidence,
        }
    }

    /// Number of points spanned.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tree spans no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The tree edges (`len - 1` of them for a non-empty tree).
    pub fn edges(&self) -> &[MstEdge] {
        &self.edges
    }

    /// Indices (into [`Mst::edges`]) of the edges incident to `node`.
    pub fn incident_edges(&self, node: usize) -> &[usize] {
        &self.incidence[node]
    }

    /// Total weight of the tree.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }
}

/// Builds the MST of the *complete* graph over `n` points using Prim's
/// algorithm in `O(n²)` time — the right shape for a dense metric,
/// where Kruskal would have to materialize `n(n-1)/2` edges.
///
/// `dist(a, b)` must be symmetric and non-negative.
///
/// # Panics
///
/// Panics if a queried distance is negative or NaN.
///
/// # Example
///
/// ```
/// use son_clustering::mst_complete;
///
/// let xs: &[f64] = &[0.0, 1.0, 10.0];
/// let mst = mst_complete(3, |a, b| (xs[a] - xs[b]).abs());
/// assert_eq!(mst.edges().len(), 2);
/// assert_eq!(mst.total_weight(), 10.0); // 0-1 (1.0) + 1-2 (9.0)
/// ```
pub fn mst_complete<D>(n: usize, dist: D) -> Mst
where
    D: Fn(usize, usize) -> f64,
{
    if n == 0 {
        return Mst::from_edges(0, Vec::new());
    }
    let mut in_tree = vec![false; n];
    let mut best_dist = vec![f64::INFINITY; n];
    let mut best_link = vec![0usize; n];
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    in_tree[0] = true;
    for v in 1..n {
        let d = dist(0, v);
        assert!(d >= 0.0, "distances must be non-negative, got {d}");
        best_dist[v] = d;
        best_link[v] = 0;
    }
    for _ in 1..n {
        let (next, _) = best_dist
            .iter()
            .enumerate()
            .filter(|(v, _)| !in_tree[*v])
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("some node remains outside the tree");
        in_tree[next] = true;
        edges.push(MstEdge {
            a: best_link[next],
            b: next,
            weight: best_dist[next],
        });
        for v in 0..n {
            if !in_tree[v] {
                let d = dist(next, v);
                assert!(d >= 0.0, "distances must be non-negative, got {d}");
                if d < best_dist[v] {
                    best_dist[v] = d;
                    best_link[v] = next;
                }
            }
        }
    }
    Mst::from_edges(n, edges)
}

/// Like [`mst_complete`], but sharding the per-round edge scans across
/// `threads` scoped worker threads (`0` = all cores).
///
/// Prim's algorithm is inherently sequential across rounds, but both
/// per-round scans — "which frontier node is closest to the tree" and
/// "relax every frontier node against the new tree node" — are
/// independent per node. Each worker owns a contiguous index range and
/// its slice of the `best_dist`/`best_link` frontier; two barriers per
/// round synchronize candidate election. Worker 0 reduces the
/// per-worker candidates **in range order with strict improvement**,
/// which reproduces the sequential first-minimum tie-break exactly, so
/// the returned tree is bit-identical to [`mst_complete`] for any
/// thread count.
///
/// # Panics
///
/// Panics if a queried distance is negative or NaN (detected at the
/// end of the build, unlike [`mst_complete`] which panics mid-scan).
pub fn mst_complete_threads<D>(n: usize, dist: D, threads: usize) -> Mst
where
    D: Fn(usize, usize) -> f64 + Sync,
{
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Barrier, Mutex};

    let threads = son_par::effective_threads(threads);
    if threads <= 1 || n <= 2 {
        return mst_complete(n, dist);
    }
    let ranges = son_par::chunk_ranges(threads, n);
    if ranges.len() <= 1 {
        return mst_complete(n, dist);
    }
    const NONE: usize = usize::MAX;
    let barrier = Barrier::new(ranges.len());
    // Per-worker candidate (weight, node, link); workers write their
    // own slot before the first barrier, worker 0 reads them all after.
    let slots: Vec<Mutex<(f64, usize, usize)>> = ranges
        .iter()
        .map(|_| Mutex::new((f64::INFINITY, NONE, 0)))
        .collect();
    let next_cell = AtomicUsize::new(0);
    let invalid = AtomicBool::new(false);
    let dist = &dist;
    let edges = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .cloned()
            .enumerate()
            .map(|(w, range)| {
                let barrier = &barrier;
                let slots = &slots;
                let next_cell = &next_cell;
                let invalid = &invalid;
                scope.spawn(move || {
                    let lo = range.start;
                    let mut in_tree = vec![false; range.len()];
                    let mut best_dist = vec![f64::INFINITY; range.len()];
                    let mut best_link = vec![0usize; range.len()];
                    // Invalid distances are flagged and neutralized so
                    // no worker panics while peers wait on a barrier.
                    let measure = |a: usize, b: usize| {
                        let d = dist(a, b);
                        if d >= 0.0 {
                            d
                        } else {
                            invalid.store(true, Ordering::Relaxed);
                            f64::INFINITY
                        }
                    };
                    for v in range.clone() {
                        if v == 0 {
                            in_tree[0] = true;
                        } else {
                            best_dist[v - lo] = measure(0, v);
                        }
                    }
                    let mut edges: Vec<MstEdge> = Vec::new();
                    for _ in 1..n {
                        // First local minimum (matching `min_by`, which
                        // keeps the earliest of equal elements — even
                        // when every candidate is infinite).
                        let mut cand = (f64::INFINITY, NONE, 0usize);
                        for v in range.clone() {
                            let i = v - lo;
                            if !in_tree[i] && (cand.1 == NONE || best_dist[i] < cand.0) {
                                cand = (best_dist[i], v, best_link[i]);
                            }
                        }
                        *slots[w].lock().expect("slot lock poisoned") = cand;
                        barrier.wait();
                        if w == 0 {
                            let mut best = (f64::INFINITY, NONE, 0usize);
                            for slot in slots.iter() {
                                let c = *slot.lock().expect("slot lock poisoned");
                                if c.1 != NONE && (best.1 == NONE || c.0 < best.0) {
                                    best = c;
                                }
                            }
                            let (weight, next, link) = best;
                            debug_assert_ne!(next, NONE, "some node remains outside the tree");
                            edges.push(MstEdge {
                                a: link,
                                b: next,
                                weight,
                            });
                            next_cell.store(next, Ordering::Release);
                        }
                        barrier.wait();
                        let next = next_cell.load(Ordering::Acquire);
                        if range.contains(&next) {
                            in_tree[next - lo] = true;
                        }
                        for v in range.clone() {
                            let i = v - lo;
                            if !in_tree[i] {
                                let d = measure(next, v);
                                if d < best_dist[i] {
                                    best_dist[i] = d;
                                    best_link[i] = next;
                                }
                            }
                        }
                    }
                    edges
                })
            })
            .collect();
        let mut out = Vec::with_capacity(n - 1);
        for h in handles {
            out.append(&mut h.join().expect("mst worker panicked"));
        }
        out
    });
    assert!(
        !invalid.load(Ordering::Relaxed),
        "distances must be non-negative"
    );
    Mst::from_edges(n, edges)
}

/// Builds an MST (minimum spanning forest if disconnected) from an
/// explicit edge list using Kruskal's algorithm.
///
/// # Panics
///
/// Panics if an edge references a node `>= n` or has a negative/NaN
/// weight.
pub fn mst_kruskal(n: usize, edges: &[MstEdge]) -> Mst {
    let mut sorted: Vec<&MstEdge> = edges.iter().collect();
    for e in &sorted {
        assert!(e.a < n && e.b < n, "edge endpoint out of range");
        assert!(e.weight >= 0.0, "edge weights must be non-negative");
    }
    sorted.sort_by(|x, y| {
        x.weight
            .partial_cmp(&y.weight)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut uf = UnionFind::new(n);
    let mut tree = Vec::new();
    for e in sorted {
        if uf.union(e.a, e.b) {
            tree.push(*e);
            if tree.len() + 1 == n {
                break;
            }
        }
    }
    Mst::from_edges(n, tree)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prim_on_a_square() {
        // Unit square; MST weight = 3 sides = 3.
        let pts: [[f64; 2]; 4] = [[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]];
        let dist = |a: usize, b: usize| {
            ((pts[a][0] - pts[b][0]).powi(2) + (pts[a][1] - pts[b][1]).powi(2)).sqrt()
        };
        let mst = mst_complete(4, dist);
        assert_eq!(mst.edges().len(), 3);
        assert!((mst.total_weight() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn kruskal_matches_prim_on_complete_graphs() {
        let xs: [f64; 6] = [3.0, -1.0, 7.5, 0.25, 12.0, 5.5];
        let n = xs.len();
        let dist = |a: usize, b: usize| (xs[a] - xs[b]).abs();
        let prim = mst_complete(n, dist);
        let mut all_edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                all_edges.push(MstEdge {
                    a,
                    b,
                    weight: dist(a, b),
                });
            }
        }
        let kruskal = mst_kruskal(n, &all_edges);
        assert!((prim.total_weight() - kruskal.total_weight()).abs() < 1e-12);
    }

    #[test]
    fn kruskal_builds_forest_when_disconnected() {
        let edges = [
            MstEdge {
                a: 0,
                b: 1,
                weight: 1.0,
            },
            MstEdge {
                a: 2,
                b: 3,
                weight: 2.0,
            },
        ];
        let mst = mst_kruskal(4, &edges);
        assert_eq!(mst.edges().len(), 2);
    }

    #[test]
    fn incidence_index_is_consistent() {
        let xs: &[f64] = &[0.0, 1.0, 2.0, 3.0];
        let mst = mst_complete(4, |a, b| (xs[a] - xs[b]).abs());
        for node in 0..4 {
            for &ei in mst.incident_edges(node) {
                let e = mst.edges()[ei];
                assert!(e.a == node || e.b == node);
            }
        }
        // A path graph: endpoints have degree 1, middles degree 2.
        let degrees: Vec<usize> = (0..4).map(|v| mst.incident_edges(v).len()).collect();
        let mut sorted = degrees.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 1, 2, 2]);
    }

    #[test]
    fn empty_and_singleton() {
        let mst = mst_complete(0, |_, _| 0.0);
        assert!(mst.is_empty());
        let mst = mst_complete(1, |_, _| 0.0);
        assert_eq!(mst.len(), 1);
        assert!(mst.edges().is_empty());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_distance_panics() {
        let _ = mst_complete(2, |_, _| -1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_distance_panics_threaded() {
        let _ = mst_complete_threads(8, |_, _| -1.0, 2);
    }

    #[test]
    fn threaded_prim_matches_sequential_exactly() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        // Quantized coordinates force plenty of distance ties, the
        // case where tie-breaking order could diverge.
        let pts: Vec<(f64, f64)> = (0..157)
            .map(|_| {
                (
                    (rng.gen::<f64>() * 10.0).round(),
                    (rng.gen::<f64>() * 10.0).round(),
                )
            })
            .collect();
        let dist = |a: usize, b: usize| {
            ((pts[a].0 - pts[b].0).powi(2) + (pts[a].1 - pts[b].1).powi(2)).sqrt()
        };
        let seq = mst_complete(pts.len(), dist);
        for threads in [2, 3, 5, 16] {
            let par = mst_complete_threads(pts.len(), dist, threads);
            assert_eq!(par.edges(), seq.edges(), "threads={threads}");
        }
    }

    #[test]
    fn threaded_prim_handles_tiny_inputs() {
        let xs: &[f64] = &[4.0, 0.0, 9.0];
        let dist = |a: usize, b: usize| (xs[a] - xs[b]).abs();
        let seq = mst_complete(3, dist);
        let par = mst_complete_threads(3, dist, 8);
        assert_eq!(par.edges(), seq.edges());
        assert!(mst_complete_threads(0, dist, 4).is_empty());
        assert_eq!(mst_complete_threads(1, dist, 4).len(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Exhaustively enumerates spanning trees of small complete graphs
    /// to confirm Prim's result is minimal.
    fn brute_force_mst_weight(points: &[(f64, f64)]) -> f64 {
        let n = points.len();
        let dist = |a: usize, b: usize| {
            ((points[a].0 - points[b].0).powi(2) + (points[a].1 - points[b].1).powi(2)).sqrt()
        };
        // Enumerate all edge subsets of size n-1 (n is small).
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((a, b, dist(a, b)));
            }
        }
        let m = edges.len();
        let mut best = f64::INFINITY;
        // Bitmask over edges; keep subsets with exactly n-1 edges that connect.
        for mask in 0u32..(1 << m) {
            if mask.count_ones() as usize != n - 1 {
                continue;
            }
            let mut uf = UnionFind::new(n);
            let mut w = 0.0;
            for (i, e) in edges.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    uf.union(e.0, e.1);
                    w += e.2;
                }
            }
            if uf.set_count() == 1 && w < best {
                best = w;
            }
        }
        best
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prim_is_minimal_on_small_instances(
            points in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 2..6)
        ) {
            let n = points.len();
            let dist = |a: usize, b: usize| {
                ((points[a].0 - points[b].0).powi(2) + (points[a].1 - points[b].1).powi(2)).sqrt()
            };
            let mst = mst_complete(n, dist);
            let brute = brute_force_mst_weight(&points);
            prop_assert!((mst.total_weight() - brute).abs() < 1e-9,
                "prim {} vs brute {}", mst.total_weight(), brute);
        }

        #[test]
        fn mst_spans_all_points(
            points in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..40)
        ) {
            let n = points.len();
            let dist = |a: usize, b: usize| {
                ((points[a].0 - points[b].0).powi(2) + (points[a].1 - points[b].1).powi(2)).sqrt()
            };
            let mst = mst_complete(n, dist);
            prop_assert_eq!(mst.edges().len(), n - 1);
            let mut uf = UnionFind::new(n);
            for e in mst.edges() {
                uf.union(e.a, e.b);
            }
            prop_assert_eq!(uf.set_count(), 1);
        }
    }
}
