//! The sharded, epoch-invalidated route cache.
//!
//! CDN server-ranking studies (Gürsun) observe that request locality
//! makes route decisions highly cacheable *per ingress partition*: the
//! same (ingress cluster, request) pair recurs far more often than raw
//! proxy-pair traffic would suggest. The cache therefore keys entries
//! by **(ingress cluster, request signature)** — the signature is a
//! canonical encoding of the full request (source, destination, and
//! service-graph shape), so a hit is *exact*: the cached path is the
//! one a fresh router would return for that request.
//!
//! **Epoch invalidation.** Every entry is stamped with the epoch of the
//! snapshot it was computed under. A lookup passes the epoch of the
//! snapshot currently being served; an entry from any other epoch is
//! treated as a miss and dropped on sight. Membership events and
//! state-protocol updates install a new snapshot under a bumped epoch,
//! so cached paths are never served stale — without any scan-the-cache
//! flush on the churn path.
//!
//! **Sharding.** Entries hash-partition across [`Mutex`]ed shards so
//! concurrent workers rarely contend; counters are atomics outside the
//! locks.

use son_overlay::{ClusterId, ServiceRequest};
use son_routing::{CspFrontier, RouteError, ServicePath};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Canonical cache key: the ingress cluster plus a lossless encoding
/// of the request (source, destination, stage services, stage edges).
///
/// Keys compare by value — two requests collide only if they are the
/// same request entering at the same cluster, so cache hits can never
/// return a path for a different request.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RouteKey {
    ingress: u32,
    words: Vec<u32>,
}

impl RouteKey {
    /// Encodes `request` as seen from `ingress`.
    pub fn encode(ingress: ClusterId, request: &ServiceRequest) -> Self {
        let graph = &request.graph;
        let mut words = Vec::with_capacity(3 + 2 * graph.len());
        words.push(request.source.index() as u32);
        words.push(request.destination.index() as u32);
        words.push(graph.len() as u32);
        for stage in graph.stage_ids() {
            words.push(graph.service(stage).index() as u32);
        }
        for stage in graph.stage_ids() {
            let preds = graph.predecessors(stage);
            words.push(preds.len() as u32);
            words.extend(preds.iter().map(|p| p.index() as u32));
        }
        RouteKey {
            ingress: ingress.index() as u32,
            words,
        }
    }

    /// The ingress cluster component.
    pub fn ingress(&self) -> ClusterId {
        ClusterId::new(self.ingress as usize)
    }

    /// FNV-1a over the key, used for shard selection.
    fn shard_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |w: u32| {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        mix(self.ingress);
        for &w in &self.words {
            mix(w);
        }
        h
    }
}

/// How the cache participated in one lookup (see
/// [`RouteCache::lookup_explain`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupOutcome {
    /// Entry present at the serving epoch.
    Hit,
    /// No entry for the key.
    Miss,
    /// Entry present but stamped with another epoch; dropped.
    StaleDrop,
}

#[derive(Debug)]
struct Entry {
    epoch: u64,
    path: ServicePath,
}

/// One shard: a map plus FIFO insertion order for eviction.
#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<RouteKey, Entry>,
    order: VecDeque<RouteKey>,
}

/// Monotonic counters describing cache behavior since construction —
/// across all tiers: the exact-key route cache, the CSP frontier tier,
/// the stale-while-revalidate path, and the negative cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (same epoch).
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Lookups that found an entry from another epoch (counted in
    /// `misses` too; the entry is dropped).
    pub stale_drops: u64,
    /// Entries written.
    pub insertions: u64,
    /// Entries removed to make room (capacity evictions only).
    pub evictions: u64,
    /// Exact-key misses answered by replaying a cached CSP frontier
    /// (the inter-cluster solve was skipped).
    pub csp_hits: u64,
    /// Exact-key misses that also missed the CSP tier (a full solve
    /// ran; the frontier was cached for later requests).
    pub csp_misses: u64,
    /// Requests served a route from the previous epoch under the
    /// stale-while-revalidate budget.
    pub stale_served: u64,
    /// Stale-served entries recomputed against the current snapshot by
    /// a worker after its serving loop.
    pub revalidations: u64,
    /// Unroutable requests fast-rejected from the negative cache
    /// without re-running the failed solve.
    pub negative_hits: u64,
}

impl CacheStats {
    /// Counter deltas between two snapshots of the same cache: what
    /// happened after `earlier` was taken.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            stale_drops: self.stale_drops - earlier.stale_drops,
            insertions: self.insertions - earlier.insertions,
            evictions: self.evictions - earlier.evictions,
            csp_hits: self.csp_hits - earlier.csp_hits,
            csp_misses: self.csp_misses - earlier.csp_misses,
            stale_served: self.stale_served - earlier.stale_served,
            revalidations: self.revalidations - earlier.revalidations,
            negative_hits: self.negative_hits - earlier.negative_hits,
        }
    }

    /// Hits over all lookups, 0.0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// CSP-tier hits over all CSP-tier lookups, 0.0 when the tier was
    /// never consulted.
    pub fn csp_hit_rate(&self) -> f64 {
        let total = self.csp_hits + self.csp_misses;
        if total == 0 {
            0.0
        } else {
            self.csp_hits as f64 / total as f64
        }
    }
}

/// How a stale-while-revalidate lookup resolved (see
/// [`RouteCache::lookup_swr`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SwrLookup {
    /// Entry present at the serving epoch — a plain hit.
    Hit(ServicePath),
    /// Entry from exactly the previous epoch, handed out under the
    /// stale-serve budget. The entry stays resident until a worker
    /// revalidates (overwrites) it.
    Stale(ServicePath),
    /// No entry for the key.
    Miss,
    /// Entry from another epoch outside the budget (or too old);
    /// dropped.
    StaleDrop,
}

/// The concurrent route cache. See the module docs for the design.
#[derive(Debug)]
pub struct RouteCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    stale_drops: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    stale_served: AtomicU64,
}

impl RouteCache {
    /// Creates a cache with `shards` lock partitions and room for
    /// `capacity` entries in total (rounded up to a multiple of the
    /// shard count; at least one entry per shard).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize, capacity: usize) -> Self {
        assert!(shards > 0, "the cache needs at least one shard");
        RouteCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            capacity_per_shard: capacity.div_ceil(shards).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale_drops: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            stale_served: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &RouteKey) -> &Mutex<Shard> {
        &self.shards[(key.shard_hash() % self.shards.len() as u64) as usize]
    }

    /// Looks `key` up for a batch serving snapshot `epoch`. An entry
    /// from a different epoch is dropped and reported as a miss.
    pub fn lookup(&self, key: &RouteKey, epoch: u64) -> Option<ServicePath> {
        self.lookup_explain(key, epoch).0
    }

    /// Like [`RouteCache::lookup`], but also reports *how* the cache
    /// participated — hit, plain miss, or stale drop — for route
    /// provenance.
    pub fn lookup_explain(
        &self,
        key: &RouteKey,
        epoch: u64,
    ) -> (Option<ServicePath>, LookupOutcome) {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        match shard.entries.get(key) {
            Some(entry) if entry.epoch == epoch => {
                let path = entry.path.clone();
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                (Some(path), LookupOutcome::Hit)
            }
            Some(_) => {
                shard.entries.remove(key);
                drop(shard);
                self.stale_drops.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                (None, LookupOutcome::StaleDrop)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                (None, LookupOutcome::Miss)
            }
        }
    }

    /// Like [`RouteCache::lookup`], but with stale-while-revalidate: an
    /// entry from exactly the previous epoch may be handed out if a
    /// token can be taken from `budget` (the engine resets the budget on
    /// every snapshot install). A stale-served entry stays resident —
    /// the caller owes a revalidation that overwrites it at the current
    /// epoch — so one hot key may consume several tokens within a
    /// batch, and the budget bounds the *total* number of stale routes
    /// handed out, not the number of distinct keys.
    ///
    /// The token is taken under the shard lock, so the budget is never
    /// exceeded even under concurrent lookups. With an exhausted (or
    /// zero) budget this is exactly [`RouteCache::lookup_explain`].
    pub fn lookup_swr(&self, key: &RouteKey, epoch: u64, budget: &AtomicU64) -> SwrLookup {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        match shard.entries.get(key) {
            Some(entry) if entry.epoch == epoch => {
                let path = entry.path.clone();
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                SwrLookup::Hit(path)
            }
            Some(entry)
                if entry.epoch + 1 == epoch
                    && budget
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
                        .is_ok() =>
            {
                let path = entry.path.clone();
                drop(shard);
                self.stale_served.fetch_add(1, Ordering::Relaxed);
                SwrLookup::Stale(path)
            }
            Some(_) => {
                shard.entries.remove(key);
                drop(shard);
                self.stale_drops.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                SwrLookup::StaleDrop
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                SwrLookup::Miss
            }
        }
    }

    /// Stores a computed path under `key` for `epoch`, evicting in FIFO
    /// order when the shard is full.
    pub fn insert(&self, key: RouteKey, epoch: u64, path: ServicePath) {
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        // Evict until there is room. Keys in `order` whose entry was
        // already dropped (stale lookup or overwrite) cost nothing.
        while shard.entries.len() >= self.capacity_per_shard {
            let Some(victim) = shard.order.pop_front() else {
                break;
            };
            if shard.entries.remove(&victim).is_some() {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        if shard
            .entries
            .insert(key.clone(), Entry { epoch, path })
            .is_none()
        {
            shard.order.push_back(key);
        }
        drop(shard);
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops the entry under `key` regardless of its epoch, reporting
    /// whether one was resident. Used when live health information
    /// invalidates a cached path that epoch checks alone would keep
    /// serving (the entry's epoch is still current — the *world*
    /// changed, not the snapshot).
    pub fn remove(&self, key: &RouteKey) -> bool {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        shard.entries.remove(key).is_some()
    }

    /// Number of resident entries (all epochs).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").entries.len())
            .sum()
    }

    /// Returns `true` if no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A consistent snapshot of the counters. The CSP-tier, negative,
    /// and revalidation counters belong to their own structures; the
    /// engine merges all tiers in [`Engine::cache_stats`].
    ///
    /// [`Engine::cache_stats`]: crate::Engine::cache_stats
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stale_drops: self.stale_drops.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            stale_served: self.stale_served.load(Ordering::Relaxed),
            ..CacheStats::default()
        }
    }
}

/// Key of the CSP frontier tier: the parts of a request the
/// cluster-level solve actually depends on — ingress cluster, source
/// class, destination *cluster*, and the service-DAG shape. The
/// concrete destination proxy (and, for sources the planner has no
/// coordinates for, the concrete source) is deliberately absent:
/// requests differing only in those endpoints share one frontier and
/// replay the cheap closing + intra-cluster legs per request.
///
/// The source class mirrors the router's back-tracking visibility rule:
/// a source whose coordinates the destination proxy knows (a border, or
/// a member of the destination's cluster) contributes internal-distance
/// terms to the DP, so it keys by identity; any other source is
/// cost-invisible and collapses to a shared sentinel.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CspKey {
    ingress: u32,
    source_class: u32,
    dest_cluster: u32,
    words: Vec<u32>,
}

impl CspKey {
    /// Encodes the frontier key for `request` entering at `ingress`
    /// with its destination in `dest_cluster`. `known_source` carries
    /// the source proxy's index when the planner knows its coordinates
    /// (it is a border or lives in `dest_cluster`), `None` otherwise.
    ///
    /// Returns `None` for empty service graphs — their cluster-level
    /// cost is a single concrete-endpoint lookup with nothing to
    /// reuse, so they bypass the CSP tier.
    pub fn encode(
        ingress: ClusterId,
        dest_cluster: ClusterId,
        known_source: Option<u32>,
        request: &ServiceRequest,
    ) -> Option<Self> {
        let graph = &request.graph;
        if graph.is_empty() {
            return None;
        }
        let mut words = Vec::with_capacity(1 + 2 * graph.len());
        words.push(graph.len() as u32);
        for stage in graph.stage_ids() {
            words.push(graph.service(stage).index() as u32);
        }
        for stage in graph.stage_ids() {
            let preds = graph.predecessors(stage);
            words.push(preds.len() as u32);
            words.extend(preds.iter().map(|p| p.index() as u32));
        }
        Some(CspKey {
            ingress: ingress.index() as u32,
            source_class: known_source.unwrap_or(u32::MAX),
            dest_cluster: dest_cluster.index() as u32,
            words,
        })
    }

    /// FNV-1a over the key, used for shard selection.
    fn shard_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |w: u32| {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        mix(self.ingress);
        mix(self.source_class);
        mix(self.dest_cluster);
        for &w in &self.words {
            mix(w);
        }
        h
    }
}

#[derive(Debug)]
struct CspEntry {
    epoch: u64,
    frontier: Arc<CspFrontier>,
}

#[derive(Debug, Default)]
struct CspShard {
    entries: HashMap<CspKey, CspEntry>,
    order: VecDeque<CspKey>,
}

/// The CSP frontier tier: sharded, epoch-strict (no stale-serve — a
/// frontier from another epoch is dropped on sight), FIFO-bounded.
/// Values are shared [`Arc`]s because one frontier may carry many
/// candidates and is replayed by many concurrent workers.
#[derive(Debug)]
pub struct CspCache {
    shards: Vec<Mutex<CspShard>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CspCache {
    /// Creates a frontier cache with `shards` lock partitions and room
    /// for `capacity` entries in total.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize, capacity: usize) -> Self {
        assert!(shards > 0, "the cache needs at least one shard");
        CspCache {
            shards: (0..shards)
                .map(|_| Mutex::new(CspShard::default()))
                .collect(),
            capacity_per_shard: capacity.div_ceil(shards).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CspKey) -> &Mutex<CspShard> {
        &self.shards[(key.shard_hash() % self.shards.len() as u64) as usize]
    }

    /// Looks `key` up for the serving `epoch`; entries from any other
    /// epoch are dropped and counted as misses.
    pub fn lookup(&self, key: &CspKey, epoch: u64) -> Option<Arc<CspFrontier>> {
        let mut shard = self.shard(key).lock().expect("csp shard poisoned");
        match shard.entries.get(key) {
            Some(entry) if entry.epoch == epoch => {
                let frontier = Arc::clone(&entry.frontier);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(frontier)
            }
            Some(_) => {
                shard.entries.remove(key);
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a solved frontier under `key` for `epoch`, evicting in
    /// FIFO order when the shard is full.
    pub fn insert(&self, key: CspKey, epoch: u64, frontier: Arc<CspFrontier>) {
        let mut shard = self.shard(&key).lock().expect("csp shard poisoned");
        while shard.entries.len() >= self.capacity_per_shard {
            let Some(victim) = shard.order.pop_front() else {
                break;
            };
            shard.entries.remove(&victim);
        }
        if shard
            .entries
            .insert(key.clone(), CspEntry { epoch, frontier })
            .is_none()
        {
            shard.order.push_back(key);
        }
    }

    /// Number of resident frontiers (all epochs).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("csp shard poisoned").entries.len())
            .sum()
    }

    /// Returns `true` if no frontiers are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (hits, misses) so far.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[derive(Debug)]
struct NegEntry {
    epoch: u64,
    health_gen: u64,
    error: RouteError,
}

/// Negative cache: remembers deterministic routing failures
/// (`NoProvider`, `Infeasible`) so repeated unroutable requests
/// fast-reject instead of re-running the full failed solve.
///
/// Entries are valid only while **both** the snapshot epoch and the
/// engine's health generation (bumped on every live `set_health`)
/// match the values they were recorded under — any world change, even
/// one unrelated to the blocking proxy, re-runs the solve. That
/// over-invalidation is deliberate: it guarantees no key can stay
/// poisoned after the blocking proxy recovers.
#[derive(Debug)]
pub struct NegativeCache {
    inner: Mutex<NegShard>,
    capacity: usize,
    hits: AtomicU64,
}

#[derive(Debug, Default)]
struct NegShard {
    entries: HashMap<RouteKey, NegEntry>,
    order: VecDeque<RouteKey>,
}

impl NegativeCache {
    /// Creates a negative cache bounded to `capacity` entries (FIFO).
    pub fn new(capacity: usize) -> Self {
        NegativeCache {
            inner: Mutex::new(NegShard::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
        }
    }

    /// Returns the recorded error if a valid entry exists for `key`;
    /// invalid entries (other epoch or health generation) are dropped
    /// on sight.
    pub fn lookup(&self, key: &RouteKey, epoch: u64, health_gen: u64) -> Option<RouteError> {
        let mut inner = self.inner.lock().expect("negative cache poisoned");
        match inner.entries.get(key) {
            Some(entry) if entry.epoch == epoch && entry.health_gen == health_gen => {
                let error = entry.error.clone();
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(error)
            }
            Some(_) => {
                inner.entries.remove(key);
                None
            }
            None => None,
        }
    }

    /// Records a failed solve under `key` for (`epoch`, `health_gen`).
    pub fn insert(&self, key: RouteKey, epoch: u64, health_gen: u64, error: RouteError) {
        let mut inner = self.inner.lock().expect("negative cache poisoned");
        while inner.entries.len() >= self.capacity {
            let Some(victim) = inner.order.pop_front() else {
                break;
            };
            inner.entries.remove(&victim);
        }
        if inner
            .entries
            .insert(
                key.clone(),
                NegEntry {
                    epoch,
                    health_gen,
                    error,
                },
            )
            .is_none()
        {
            inner.order.push_back(key);
        }
    }

    /// Number of resident entries (valid or not).
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("negative cache poisoned")
            .entries
            .len()
    }

    /// Returns `true` if no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fast rejects served so far.
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use son_overlay::{ProxyId, ServiceGraph, ServiceId};
    use son_routing::PathBuilder;

    fn request(src: usize, services: &[usize], dst: usize) -> ServiceRequest {
        ServiceRequest::new(
            ProxyId::new(src),
            ServiceGraph::linear(services.iter().map(|&s| ServiceId::new(s)).collect()),
            ProxyId::new(dst),
        )
    }

    fn path(src: usize, dst: usize) -> ServicePath {
        PathBuilder::start(ProxyId::new(src)).finish(ProxyId::new(dst))
    }

    #[test]
    fn keys_distinguish_requests_and_ingress() {
        let a = RouteKey::encode(ClusterId::new(0), &request(1, &[2, 3], 4));
        let b = RouteKey::encode(ClusterId::new(0), &request(1, &[3, 2], 4));
        let c = RouteKey::encode(ClusterId::new(1), &request(1, &[2, 3], 4));
        let a2 = RouteKey::encode(ClusterId::new(0), &request(1, &[2, 3], 4));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, a2);
        assert_eq!(a.ingress(), ClusterId::new(0));
    }

    #[test]
    fn keys_distinguish_graph_shapes() {
        // Same stage services, different dependency edges.
        let linear = request(0, &[1, 2], 3);
        let graph = ServiceGraph::builder()
            .stage(ServiceId::new(1))
            .stage(ServiceId::new(2))
            .build()
            .unwrap();
        let parallel = ServiceRequest::new(ProxyId::new(0), graph, ProxyId::new(3));
        assert_ne!(
            RouteKey::encode(ClusterId::new(0), &linear),
            RouteKey::encode(ClusterId::new(0), &parallel)
        );
    }

    #[test]
    fn hit_after_insert_same_epoch() {
        let cache = RouteCache::new(4, 64);
        let key = RouteKey::encode(ClusterId::new(0), &request(0, &[1], 2));
        assert_eq!(cache.lookup(&key, 7), None);
        cache.insert(key.clone(), 7, path(0, 2));
        assert_eq!(cache.lookup(&key, 7), Some(path(0, 2)));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn epoch_bump_invalidates() {
        let cache = RouteCache::new(2, 64);
        let key = RouteKey::encode(ClusterId::new(3), &request(0, &[1], 2));
        cache.insert(key.clone(), 1, path(0, 2));
        // Old-epoch entry: dropped, miss.
        assert_eq!(cache.lookup(&key, 2), None);
        assert_eq!(cache.stats().stale_drops, 1);
        assert!(cache.is_empty(), "stale entries are dropped on sight");
        // And it stays a miss (entry is gone, not resurrected).
        assert_eq!(cache.lookup(&key, 1), None);
    }

    #[test]
    fn capacity_is_bounded_fifo() {
        let cache = RouteCache::new(1, 3);
        let keys: Vec<RouteKey> = (0..5)
            .map(|i| RouteKey::encode(ClusterId::new(0), &request(i, &[1], 9)))
            .collect();
        for (i, key) in keys.iter().enumerate() {
            cache.insert(key.clone(), 0, path(i, 9));
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().evictions, 2);
        // The oldest two were evicted, the newest three survive.
        assert_eq!(cache.lookup(&keys[0], 0), None);
        assert_eq!(cache.lookup(&keys[1], 0), None);
        for (i, key) in keys.iter().enumerate().skip(2) {
            assert_eq!(cache.lookup(key, 0), Some(path(i, 9)), "key {i}");
        }
    }

    #[test]
    fn overwrite_does_not_duplicate_order() {
        let cache = RouteCache::new(1, 2);
        let key = RouteKey::encode(ClusterId::new(0), &request(0, &[1], 2));
        cache.insert(key.clone(), 0, path(0, 2));
        cache.insert(key.clone(), 1, path(0, 2));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(&key, 1), Some(path(0, 2)));
    }

    #[test]
    fn swr_serves_previous_epoch_within_budget() {
        let cache = RouteCache::new(2, 64);
        let key = RouteKey::encode(ClusterId::new(0), &request(0, &[1], 2));
        cache.insert(key.clone(), 5, path(0, 2));
        let budget = AtomicU64::new(2);
        // Current epoch: plain hit, no token spent.
        assert_eq!(
            cache.lookup_swr(&key, 5, &budget),
            SwrLookup::Hit(path(0, 2))
        );
        assert_eq!(budget.load(Ordering::Relaxed), 2);
        // One epoch behind: stale-served twice, then the budget is dry
        // and the entry is dropped like a plain stale lookup.
        assert_eq!(
            cache.lookup_swr(&key, 6, &budget),
            SwrLookup::Stale(path(0, 2))
        );
        assert_eq!(
            cache.lookup_swr(&key, 6, &budget),
            SwrLookup::Stale(path(0, 2))
        );
        assert_eq!(budget.load(Ordering::Relaxed), 0);
        assert_eq!(cache.lookup_swr(&key, 6, &budget), SwrLookup::StaleDrop);
        assert_eq!(cache.lookup_swr(&key, 6, &budget), SwrLookup::Miss);
        let stats = cache.stats();
        assert_eq!(stats.stale_served, 2);
        assert_eq!(stats.stale_drops, 1);
    }

    #[test]
    fn swr_never_serves_entries_older_than_one_epoch() {
        let cache = RouteCache::new(2, 64);
        let key = RouteKey::encode(ClusterId::new(0), &request(0, &[1], 2));
        cache.insert(key.clone(), 5, path(0, 2));
        let budget = AtomicU64::new(10);
        assert_eq!(cache.lookup_swr(&key, 7, &budget), SwrLookup::StaleDrop);
        assert_eq!(budget.load(Ordering::Relaxed), 10, "no token spent");
    }

    fn frontier(n: usize) -> Arc<CspFrontier> {
        Arc::new(CspFrontier {
            candidates: (0..n)
                .map(|i| son_routing::CspCandidate {
                    chain: vec![(son_overlay::StageId::new(0), ClusterId::new(i))],
                    cost: i as f64,
                    cluster: ClusterId::new(i),
                    entry: ProxyId::new(i),
                })
                .collect(),
        })
    }

    #[test]
    fn csp_keys_share_endpoints_but_not_shapes() {
        let c0 = ClusterId::new(0);
        let c2 = ClusterId::new(2);
        // Same shape, different concrete endpoints, both sources
        // unknown: one key.
        let a = CspKey::encode(c0, c2, None, &request(1, &[4, 5], 8)).unwrap();
        let b = CspKey::encode(c0, c2, None, &request(2, &[4, 5], 9)).unwrap();
        assert_eq!(a, b);
        // A known source keys by identity.
        let known = CspKey::encode(c0, c2, Some(1), &request(1, &[4, 5], 8)).unwrap();
        assert_ne!(a, known);
        // Different chain, ingress, or destination cluster: distinct.
        assert_ne!(
            a,
            CspKey::encode(c0, c2, None, &request(1, &[5, 4], 8)).unwrap()
        );
        assert_ne!(
            a,
            CspKey::encode(c2, c2, None, &request(1, &[4, 5], 8)).unwrap()
        );
        assert_ne!(
            a,
            CspKey::encode(c0, c0, None, &request(1, &[4, 5], 8)).unwrap()
        );
        // Empty graphs have no frontier to share.
        assert_eq!(CspKey::encode(c0, c2, None, &request(1, &[], 8)), None);
    }

    #[test]
    fn csp_cache_is_epoch_strict_and_bounded() {
        let cache = CspCache::new(1, 2);
        let c0 = ClusterId::new(0);
        let keys: Vec<CspKey> = (0..3)
            .map(|i| CspKey::encode(c0, ClusterId::new(i), None, &request(0, &[1], 2)).unwrap())
            .collect();
        cache.insert(keys[0].clone(), 1, frontier(1));
        assert_eq!(cache.lookup(&keys[0], 1).unwrap(), frontier(1));
        // Another epoch: dropped on sight, no stale serve for frontiers.
        assert_eq!(cache.lookup(&keys[0], 2), None);
        assert!(cache.is_empty());
        // FIFO bound.
        for key in &keys {
            cache.insert(key.clone(), 3, frontier(2));
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(&keys[0], 3), None);
        assert!(cache.lookup(&keys[2], 3).is_some());
        let (hits, misses) = cache.counters();
        assert_eq!((hits, misses), (2, 2));
    }

    #[test]
    fn negative_cache_invalidates_on_epoch_and_health_gen() {
        let cache = NegativeCache::new(8);
        let key = RouteKey::encode(ClusterId::new(0), &request(0, &[1], 2));
        cache.insert(key.clone(), 4, 7, RouteError::Infeasible);
        assert_eq!(cache.lookup(&key, 4, 7), Some(RouteError::Infeasible));
        assert_eq!(cache.hit_count(), 1);
        // Health view moved: entry invalid and dropped — no poisoning.
        assert_eq!(cache.lookup(&key, 4, 8), None);
        assert!(cache.is_empty());
        // Epoch moved: same story.
        cache.insert(key.clone(), 4, 7, RouteError::Infeasible);
        assert_eq!(cache.lookup(&key, 5, 7), None);
        assert!(cache.is_empty());
        assert_eq!(cache.hit_count(), 1);
    }
}
