//! The sharded, epoch-invalidated route cache.
//!
//! CDN server-ranking studies (Gürsun) observe that request locality
//! makes route decisions highly cacheable *per ingress partition*: the
//! same (ingress cluster, request) pair recurs far more often than raw
//! proxy-pair traffic would suggest. The cache therefore keys entries
//! by **(ingress cluster, request signature)** — the signature is a
//! canonical encoding of the full request (source, destination, and
//! service-graph shape), so a hit is *exact*: the cached path is the
//! one a fresh router would return for that request.
//!
//! **Epoch invalidation.** Every entry is stamped with the epoch of the
//! snapshot it was computed under. A lookup passes the epoch of the
//! snapshot currently being served; an entry from any other epoch is
//! treated as a miss and dropped on sight. Membership events and
//! state-protocol updates install a new snapshot under a bumped epoch,
//! so cached paths are never served stale — without any scan-the-cache
//! flush on the churn path.
//!
//! **Sharding.** Entries hash-partition across [`Mutex`]ed shards so
//! concurrent workers rarely contend; counters are atomics outside the
//! locks.

use son_overlay::{ClusterId, ServiceRequest};
use son_routing::ServicePath;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Canonical cache key: the ingress cluster plus a lossless encoding
/// of the request (source, destination, stage services, stage edges).
///
/// Keys compare by value — two requests collide only if they are the
/// same request entering at the same cluster, so cache hits can never
/// return a path for a different request.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RouteKey {
    ingress: u32,
    words: Vec<u32>,
}

impl RouteKey {
    /// Encodes `request` as seen from `ingress`.
    pub fn encode(ingress: ClusterId, request: &ServiceRequest) -> Self {
        let graph = &request.graph;
        let mut words = Vec::with_capacity(3 + 2 * graph.len());
        words.push(request.source.index() as u32);
        words.push(request.destination.index() as u32);
        words.push(graph.len() as u32);
        for stage in graph.stage_ids() {
            words.push(graph.service(stage).index() as u32);
        }
        for stage in graph.stage_ids() {
            let preds = graph.predecessors(stage);
            words.push(preds.len() as u32);
            words.extend(preds.iter().map(|p| p.index() as u32));
        }
        RouteKey {
            ingress: ingress.index() as u32,
            words,
        }
    }

    /// The ingress cluster component.
    pub fn ingress(&self) -> ClusterId {
        ClusterId::new(self.ingress as usize)
    }

    /// FNV-1a over the key, used for shard selection.
    fn shard_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |w: u32| {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        mix(self.ingress);
        for &w in &self.words {
            mix(w);
        }
        h
    }
}

/// How the cache participated in one lookup (see
/// [`RouteCache::lookup_explain`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupOutcome {
    /// Entry present at the serving epoch.
    Hit,
    /// No entry for the key.
    Miss,
    /// Entry present but stamped with another epoch; dropped.
    StaleDrop,
}

#[derive(Debug)]
struct Entry {
    epoch: u64,
    path: ServicePath,
}

/// One shard: a map plus FIFO insertion order for eviction.
#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<RouteKey, Entry>,
    order: VecDeque<RouteKey>,
}

/// Monotonic counters describing cache behavior since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (same epoch).
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Lookups that found an entry from another epoch (counted in
    /// `misses` too; the entry is dropped).
    pub stale_drops: u64,
    /// Entries written.
    pub insertions: u64,
    /// Entries removed to make room (capacity evictions only).
    pub evictions: u64,
}

impl CacheStats {
    /// Counter deltas between two snapshots of the same cache: what
    /// happened after `earlier` was taken.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            stale_drops: self.stale_drops - earlier.stale_drops,
            insertions: self.insertions - earlier.insertions,
            evictions: self.evictions - earlier.evictions,
        }
    }

    /// Hits over all lookups, 0.0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The concurrent route cache. See the module docs for the design.
#[derive(Debug)]
pub struct RouteCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    stale_drops: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl RouteCache {
    /// Creates a cache with `shards` lock partitions and room for
    /// `capacity` entries in total (rounded up to a multiple of the
    /// shard count; at least one entry per shard).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize, capacity: usize) -> Self {
        assert!(shards > 0, "the cache needs at least one shard");
        RouteCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            capacity_per_shard: capacity.div_ceil(shards).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale_drops: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &RouteKey) -> &Mutex<Shard> {
        &self.shards[(key.shard_hash() % self.shards.len() as u64) as usize]
    }

    /// Looks `key` up for a batch serving snapshot `epoch`. An entry
    /// from a different epoch is dropped and reported as a miss.
    pub fn lookup(&self, key: &RouteKey, epoch: u64) -> Option<ServicePath> {
        self.lookup_explain(key, epoch).0
    }

    /// Like [`RouteCache::lookup`], but also reports *how* the cache
    /// participated — hit, plain miss, or stale drop — for route
    /// provenance.
    pub fn lookup_explain(
        &self,
        key: &RouteKey,
        epoch: u64,
    ) -> (Option<ServicePath>, LookupOutcome) {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        match shard.entries.get(key) {
            Some(entry) if entry.epoch == epoch => {
                let path = entry.path.clone();
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                (Some(path), LookupOutcome::Hit)
            }
            Some(_) => {
                shard.entries.remove(key);
                drop(shard);
                self.stale_drops.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                (None, LookupOutcome::StaleDrop)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                (None, LookupOutcome::Miss)
            }
        }
    }

    /// Stores a computed path under `key` for `epoch`, evicting in FIFO
    /// order when the shard is full.
    pub fn insert(&self, key: RouteKey, epoch: u64, path: ServicePath) {
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        // Evict until there is room. Keys in `order` whose entry was
        // already dropped (stale lookup or overwrite) cost nothing.
        while shard.entries.len() >= self.capacity_per_shard {
            let Some(victim) = shard.order.pop_front() else {
                break;
            };
            if shard.entries.remove(&victim).is_some() {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        if shard
            .entries
            .insert(key.clone(), Entry { epoch, path })
            .is_none()
        {
            shard.order.push_back(key);
        }
        drop(shard);
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops the entry under `key` regardless of its epoch, reporting
    /// whether one was resident. Used when live health information
    /// invalidates a cached path that epoch checks alone would keep
    /// serving (the entry's epoch is still current — the *world*
    /// changed, not the snapshot).
    pub fn remove(&self, key: &RouteKey) -> bool {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        shard.entries.remove(key).is_some()
    }

    /// Number of resident entries (all epochs).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").entries.len())
            .sum()
    }

    /// Returns `true` if no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A consistent snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stale_drops: self.stale_drops.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use son_overlay::{ProxyId, ServiceGraph, ServiceId};
    use son_routing::PathBuilder;

    fn request(src: usize, services: &[usize], dst: usize) -> ServiceRequest {
        ServiceRequest::new(
            ProxyId::new(src),
            ServiceGraph::linear(services.iter().map(|&s| ServiceId::new(s)).collect()),
            ProxyId::new(dst),
        )
    }

    fn path(src: usize, dst: usize) -> ServicePath {
        PathBuilder::start(ProxyId::new(src)).finish(ProxyId::new(dst))
    }

    #[test]
    fn keys_distinguish_requests_and_ingress() {
        let a = RouteKey::encode(ClusterId::new(0), &request(1, &[2, 3], 4));
        let b = RouteKey::encode(ClusterId::new(0), &request(1, &[3, 2], 4));
        let c = RouteKey::encode(ClusterId::new(1), &request(1, &[2, 3], 4));
        let a2 = RouteKey::encode(ClusterId::new(0), &request(1, &[2, 3], 4));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, a2);
        assert_eq!(a.ingress(), ClusterId::new(0));
    }

    #[test]
    fn keys_distinguish_graph_shapes() {
        // Same stage services, different dependency edges.
        let linear = request(0, &[1, 2], 3);
        let graph = ServiceGraph::builder()
            .stage(ServiceId::new(1))
            .stage(ServiceId::new(2))
            .build()
            .unwrap();
        let parallel = ServiceRequest::new(ProxyId::new(0), graph, ProxyId::new(3));
        assert_ne!(
            RouteKey::encode(ClusterId::new(0), &linear),
            RouteKey::encode(ClusterId::new(0), &parallel)
        );
    }

    #[test]
    fn hit_after_insert_same_epoch() {
        let cache = RouteCache::new(4, 64);
        let key = RouteKey::encode(ClusterId::new(0), &request(0, &[1], 2));
        assert_eq!(cache.lookup(&key, 7), None);
        cache.insert(key.clone(), 7, path(0, 2));
        assert_eq!(cache.lookup(&key, 7), Some(path(0, 2)));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn epoch_bump_invalidates() {
        let cache = RouteCache::new(2, 64);
        let key = RouteKey::encode(ClusterId::new(3), &request(0, &[1], 2));
        cache.insert(key.clone(), 1, path(0, 2));
        // Old-epoch entry: dropped, miss.
        assert_eq!(cache.lookup(&key, 2), None);
        assert_eq!(cache.stats().stale_drops, 1);
        assert!(cache.is_empty(), "stale entries are dropped on sight");
        // And it stays a miss (entry is gone, not resurrected).
        assert_eq!(cache.lookup(&key, 1), None);
    }

    #[test]
    fn capacity_is_bounded_fifo() {
        let cache = RouteCache::new(1, 3);
        let keys: Vec<RouteKey> = (0..5)
            .map(|i| RouteKey::encode(ClusterId::new(0), &request(i, &[1], 9)))
            .collect();
        for (i, key) in keys.iter().enumerate() {
            cache.insert(key.clone(), 0, path(i, 9));
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().evictions, 2);
        // The oldest two were evicted, the newest three survive.
        assert_eq!(cache.lookup(&keys[0], 0), None);
        assert_eq!(cache.lookup(&keys[1], 0), None);
        for (i, key) in keys.iter().enumerate().skip(2) {
            assert_eq!(cache.lookup(key, 0), Some(path(i, 9)), "key {i}");
        }
    }

    #[test]
    fn overwrite_does_not_duplicate_order() {
        let cache = RouteCache::new(1, 2);
        let key = RouteKey::encode(ClusterId::new(0), &request(0, &[1], 2));
        cache.insert(key.clone(), 0, path(0, 2));
        cache.insert(key.clone(), 1, path(0, 2));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(&key, 1), Some(path(0, 2)));
    }
}
