//! Immutable overlay snapshots and per-worker router construction.
//!
//! The engine never routes over mutable overlay state: every serving
//! batch captures one [`EngineSnapshot`] — the HFC topology, installed
//! services, and a delay model, stamped with the **epoch** at which it
//! was installed. Membership or state-protocol changes produce a *new*
//! snapshot under the next epoch; requests in flight keep routing over
//! the snapshot they started with, and the route cache refuses entries
//! whose epoch differs from the snapshot being served (see
//! [`crate::cache::RouteCache`]).
//!
//! Workers do not share a router: each one builds its own via a
//! [`RouterProvider`], so routers need no internal synchronization and
//! the only cross-thread state is the snapshot (read-only) and the
//! sharded cache. [`HierProvider`] and [`FlatProvider`] cover the two
//! routers living in `son-routing`; son-core adds a provider for its
//! three-level `MultiLevelRouter` the same way.

use son_overlay::{
    ClusterId, CoordDelays, DelayModel, Health, HfcTopology, Hierarchy, ProxyId, ServiceRequest,
    ServiceSet, StatusMap,
};
use son_routing::{
    BasicTraced, CostConfig, CostModel, CspRouter, FlatRouter, HierConfig, HierarchicalRouter,
    LoadAwareDelays, MultiLevelRouter, ProviderIndex, Router, TraceRouter,
};
use son_state::ClusterLoad;
use std::sync::Arc;

/// One immutable, epoch-stamped view of the overlay: everything a
/// worker needs to answer requests.
///
/// Beyond topology, services, and delays, a snapshot may carry a
/// [`StatusMap`] (health, capacity, utilization per proxy) and a
/// [`CostConfig`]. Attaching statuses via
/// [`EngineSnapshot::with_statuses`] is the one way to exclude a proxy
/// from serving: `Down` proxies lose their service sets (never chosen
/// as providers) and cost `+∞` to traverse (never chosen as relays),
/// while `Draining` and loaded proxies shift route cost through
/// [`EngineSnapshot::route_delays`].
#[derive(Debug, Clone)]
pub struct EngineSnapshot<D> {
    epoch: u64,
    hfc: HfcTopology,
    services: Vec<ServiceSet>,
    delays: D,
    cost: CostModel,
    cluster_load: Option<ClusterLoad>,
    hierarchy: Option<Arc<Hierarchy>>,
}

impl<D: DelayModel> EngineSnapshot<D> {
    /// Bundles an overlay view under epoch 0 (the engine re-stamps the
    /// epoch on installation). No status constraints: every proxy is
    /// `Up`, uncapped, unloaded.
    ///
    /// # Panics
    ///
    /// Panics if `services.len()` differs from the proxy count.
    pub fn new(hfc: HfcTopology, services: Vec<ServiceSet>, delays: D) -> Self {
        assert_eq!(
            services.len(),
            hfc.proxy_count(),
            "one service set per proxy required"
        );
        EngineSnapshot {
            epoch: 0,
            hfc,
            services,
            delays,
            cost: CostModel::neutral(),
            cluster_load: None,
            hierarchy: None,
        }
    }

    /// Attaches a recursive cluster hierarchy (shared by reference:
    /// snapshot clones reuse it). [`MultiLevelProvider`] routes over it
    /// when present.
    ///
    /// # Panics
    ///
    /// Panics if the hierarchy was built over a different topology.
    pub fn with_hierarchy(mut self, hierarchy: Arc<Hierarchy>) -> Self {
        assert_eq!(
            hierarchy.unit_count(1),
            self.hfc.cluster_count(),
            "hierarchy and topology disagree on the cluster count"
        );
        self.hierarchy = Some(hierarchy);
        self
    }

    /// The attached recursive hierarchy, if any.
    pub fn hierarchy(&self) -> Option<&Hierarchy> {
        self.hierarchy.as_deref()
    }

    /// Attaches per-proxy statuses and cost weights.
    ///
    /// `Down` proxies' service sets are emptied — the single mechanism
    /// for "this proxy serves nothing" — and a per-cluster load/health
    /// summary is derived so hierarchical routers see remote saturation
    /// at cluster-level (CSP) selection.
    pub fn with_statuses(mut self, statuses: StatusMap, cost: CostConfig) -> Self {
        for proxy in statuses.down_proxies() {
            if proxy.index() < self.services.len() {
                self.services[proxy.index()] = ServiceSet::new();
            }
        }
        self.cluster_load = Some(ClusterLoad::from_statuses(
            &self.hfc,
            &statuses,
            cost.cluster_load_penalty,
        ));
        self.cost = CostModel::new(cost, statuses);
        self
    }

    /// The epoch this snapshot was installed under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub(crate) fn stamp(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The HFC topology.
    pub fn hfc(&self) -> &HfcTopology {
        &self.hfc
    }

    /// Effective services per proxy (`Down` proxies read empty).
    pub fn services(&self) -> &[ServiceSet] {
        &self.services
    }

    /// The delay model routers decide on.
    pub fn delays(&self) -> &D {
        &self.delays
    }

    /// Per-proxy statuses (empty map = no constraints).
    pub fn statuses(&self) -> &StatusMap {
        self.cost.statuses()
    }

    /// The health/load cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Per-cluster load/health summary, present when statuses are
    /// attached.
    pub fn cluster_load(&self) -> Option<&ClusterLoad> {
        self.cluster_load.as_ref()
    }

    /// The delay model to route on: base delays plus health/load
    /// penalties. With no statuses attached this is an exact
    /// pass-through of [`EngineSnapshot::delays`].
    pub fn route_delays(&self) -> LoadAwareDelays<'_, D> {
        LoadAwareDelays::new(&self.delays, &self.cost)
    }

    /// Whether `proxy` may carry new traffic in this snapshot.
    pub fn is_routable(&self, proxy: ProxyId) -> bool {
        self.statuses().is_routable(proxy)
    }

    /// Whether the ingress cluster of `request` has at least one `Up`
    /// member to accept the session. Vacuously true without statuses.
    pub fn has_up_ingress(&self, request: &ServiceRequest) -> bool {
        let statuses = self.statuses();
        if statuses.is_empty() {
            return true;
        }
        self.hfc
            .members(self.ingress(request))
            .iter()
            .any(|&p| statuses.health(p) == Health::Up)
    }

    /// Number of proxies in this snapshot.
    pub fn proxy_count(&self) -> usize {
        self.hfc.proxy_count()
    }

    /// The ingress cluster of a request: the cluster of its source
    /// proxy — the first component of every cache key.
    pub fn ingress(&self, request: &ServiceRequest) -> ClusterId {
        self.hfc.cluster_of(request.source)
    }

    /// Whether `proxy` serves as a border in this snapshot (for the
    /// per-border-proxy load report).
    pub fn is_border(&self, proxy: ProxyId) -> bool {
        self.hfc.is_border(proxy)
    }
}

fn fnv_mix(h: &mut u64, v: u64) {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for b in v.to_le_bytes() {
        *h = (*h ^ b as u64).wrapping_mul(PRIME);
    }
}

impl EngineSnapshot<CoordDelays> {
    /// An FNV-1a digest of everything routing decides on — canonical
    /// topology snapshot, effective services, and coordinate bits —
    /// excluding the epoch. Two builds of the same world are
    /// interchangeable exactly when their digests match; the parallel
    /// build path asserts equality with the sequential one through
    /// this.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let snap = self.hfc.snapshot();
        fnv_mix(&mut h, snap.clusters.len() as u64);
        for members in &snap.clusters {
            fnv_mix(&mut h, members.len() as u64);
            for &m in members {
                fnv_mix(&mut h, m.index() as u64);
            }
        }
        for &((i, j), (local, remote)) in &snap.borders {
            fnv_mix(&mut h, i as u64);
            fnv_mix(&mut h, j as u64);
            fnv_mix(&mut h, local.index() as u64);
            fnv_mix(&mut h, remote.index() as u64);
        }
        for set in &self.services {
            fnv_mix(&mut h, u64::MAX); // per-proxy separator
            for id in set.iter() {
                fnv_mix(&mut h, id.index() as u64);
            }
        }
        for p in 0..self.delays.len() {
            for &v in self.delays.coordinates(ProxyId::new(p)).as_slice() {
                fnv_mix(&mut h, v.to_bits());
            }
        }
        h
    }
}

/// Builds a fresh router over a snapshot, once per worker per batch.
///
/// The `&'a self` receiver lets a provider lend router inputs it owns
/// *beside* the snapshot — son-core's multi-level provider keeps the
/// supercluster hierarchy it derived from the snapshot and lends it to
/// every router it builds.
pub trait RouterProvider<D: DelayModel>: Sync {
    /// Constructs a router borrowing from `snapshot` (and possibly from
    /// the provider itself).
    fn router<'a>(&'a self, snapshot: &'a EngineSnapshot<D>) -> Box<dyn Router + 'a>;

    /// A short human-readable strategy name for reports.
    fn name(&self) -> &'static str;

    /// Constructs a provenance-capable router for `Engine::trace_request`.
    ///
    /// The default wraps [`RouterProvider::router`] in [`BasicTraced`],
    /// which reports the request, resulting hops, and timing; providers
    /// whose routers expose richer decisions (the hierarchical router's
    /// CSP dissection) override this to surface them.
    fn traced_router<'a>(&'a self, snapshot: &'a EngineSnapshot<D>) -> Box<dyn TraceRouter + 'a> {
        Box::new(BasicTraced::new(self.router(snapshot), self.name()))
    }

    /// Constructs a frontier-capable router for the engine's CSP cache
    /// tier, or `None` when this provider's routing strategy has no
    /// reusable cluster-level solve. The returned router must agree
    /// bit-for-bit with [`RouterProvider::router`] — the engine mixes
    /// frontier replays and plain solves within one batch.
    fn csp_router<'a>(
        &'a self,
        snapshot: &'a EngineSnapshot<D>,
    ) -> Option<Box<dyn CspRouter + 'a>> {
        let _ = snapshot;
        None
    }
}

/// Provider of the paper's hierarchical (divide-and-conquer) router —
/// the engine default.
#[derive(Debug, Clone, Copy, Default)]
pub struct HierProvider {
    /// Hierarchical router tuning.
    pub config: HierConfig,
}

impl HierProvider {
    fn build<'a, D: DelayModel>(
        &self,
        snapshot: &'a EngineSnapshot<D>,
    ) -> HierarchicalRouter<'a, LoadAwareDelays<'a, D>> {
        let router = HierarchicalRouter::from_services(
            &snapshot.hfc,
            &snapshot.services,
            snapshot.route_delays(),
            self.config,
        );
        match snapshot.cluster_load() {
            Some(load) => router.with_cluster_load(load.clone()),
            None => router,
        }
    }
}

impl<D: DelayModel> RouterProvider<D> for HierProvider {
    fn router<'a>(&'a self, snapshot: &'a EngineSnapshot<D>) -> Box<dyn Router + 'a> {
        Box::new(self.build(snapshot))
    }

    fn name(&self) -> &'static str {
        "hier"
    }

    fn traced_router<'a>(&'a self, snapshot: &'a EngineSnapshot<D>) -> Box<dyn TraceRouter + 'a> {
        Box::new(self.build(snapshot))
    }

    fn csp_router<'a>(
        &'a self,
        snapshot: &'a EngineSnapshot<D>,
    ) -> Option<Box<dyn CspRouter + 'a>> {
        Some(Box::new(self.build(snapshot)))
    }
}

/// Provider of the flat global-view router (the mesh-free baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct FlatProvider;

impl<D: DelayModel> RouterProvider<D> for FlatProvider {
    fn router<'a>(&'a self, snapshot: &'a EngineSnapshot<D>) -> Box<dyn Router + 'a> {
        let providers = ProviderIndex::from_service_sets(&snapshot.services);
        Box::new(FlatRouter::new(providers, snapshot.route_delays()))
    }

    fn name(&self) -> &'static str {
        "flat"
    }

    fn traced_router<'a>(&'a self, snapshot: &'a EngineSnapshot<D>) -> Box<dyn TraceRouter + 'a> {
        let providers = ProviderIndex::from_service_sets(&snapshot.services);
        Box::new(FlatRouter::new(providers, snapshot.route_delays()))
    }
}

/// Provider of the recursive multi-level router.
///
/// Routes over the [`Hierarchy`] attached to the snapshot
/// ([`EngineSnapshot::with_hierarchy`]); on snapshots without one it
/// falls back to the bi-level hierarchical router, which the
/// multi-level algorithm reproduces at depth 2 anyway.
#[derive(Debug, Clone, Copy, Default)]
pub struct MultiLevelProvider {
    /// Hierarchical router tuning (shared with [`HierProvider`]).
    pub config: HierConfig,
}

impl<D: DelayModel> RouterProvider<D> for MultiLevelProvider {
    fn router<'a>(&'a self, snapshot: &'a EngineSnapshot<D>) -> Box<dyn Router + 'a> {
        match snapshot.hierarchy() {
            Some(hierarchy) => {
                let router = MultiLevelRouter::from_services(
                    snapshot.hfc(),
                    hierarchy,
                    snapshot.services(),
                    snapshot.route_delays(),
                    self.config,
                );
                match snapshot.cluster_load() {
                    Some(load) => Box::new(router.with_cluster_load(load.clone())),
                    None => Box::new(router),
                }
            }
            None => Box::new(
                HierProvider {
                    config: self.config,
                }
                .build(snapshot),
            ),
        }
    }

    fn name(&self) -> &'static str {
        "multilevel"
    }

    fn csp_router<'a>(
        &'a self,
        snapshot: &'a EngineSnapshot<D>,
    ) -> Option<Box<dyn CspRouter + 'a>> {
        // The recursive router has no single-level frontier to reuse;
        // the bi-level fallback (no hierarchy attached) is the plain
        // hierarchical router and shares its frontier implementation.
        match snapshot.hierarchy() {
            Some(_) => None,
            None => Some(Box::new(
                HierProvider {
                    config: self.config,
                }
                .build(snapshot),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use son_clustering::Clustering;
    use son_overlay::{DelayMatrix, ProxyId, ServiceGraph, ServiceId};

    fn snapshot() -> EngineSnapshot<DelayMatrix> {
        let n = 6;
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                values[i * n + j] = (i as f64 - j as f64).abs();
            }
        }
        let delays = DelayMatrix::from_values(n, values);
        let hfc = HfcTopology::build(&Clustering::from_labels(&[0, 0, 0, 1, 1, 1]), &delays);
        let services = (0..n)
            .map(|i| ServiceSet::from_iter([ServiceId::new(i % 3)]))
            .collect();
        EngineSnapshot::new(hfc, services, delays)
    }

    #[test]
    fn providers_build_working_routers() {
        let snap = snapshot();
        let request = ServiceRequest::new(
            ProxyId::new(0),
            ServiceGraph::linear(vec![ServiceId::new(1), ServiceId::new(2)]),
            ProxyId::new(5),
        );
        for provider in [
            &HierProvider::default() as &dyn RouterProvider<DelayMatrix>,
            &FlatProvider,
        ] {
            let router = provider.router(&snap);
            let path = router.route_path(&request).expect("request is routable");
            path.validate(&request, |p, s| snap.services()[p.index()].contains(s))
                .unwrap();
        }
    }

    #[test]
    fn ingress_is_the_source_cluster() {
        let snap = snapshot();
        let request = ServiceRequest::new(
            ProxyId::new(4),
            ServiceGraph::linear(vec![]),
            ProxyId::new(0),
        );
        assert_eq!(
            snap.ingress(&request),
            snap.hfc().cluster_of(ProxyId::new(4))
        );
    }

    #[test]
    #[should_panic(expected = "one service set per proxy")]
    fn mismatched_services_panic() {
        let snap = snapshot();
        let _ = EngineSnapshot::new(snap.hfc.clone(), vec![], snap.delays.clone());
    }

    /// Two regions far apart, two clusters each, three proxies per
    /// cluster; service `i % 4` on proxy `i`, plus service 9 only in
    /// the far region.
    fn deep_world() -> (HfcTopology, DelayMatrix, Vec<ServiceSet>) {
        let mut pos = Vec::new();
        let mut labels = Vec::new();
        let mut label = 0;
        for super_x in [0.0, 100_000.0] {
            for cluster_dx in [0.0, 1_000.0] {
                for i in 0..3 {
                    pos.push(super_x + cluster_dx + i as f64 * 2.0);
                    labels.push(label);
                }
                label += 1;
            }
        }
        let n = pos.len();
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                values[i * n + j] = (pos[i] - pos[j]).abs();
            }
        }
        let delays = DelayMatrix::from_values(n, values);
        let hfc = HfcTopology::build(&Clustering::from_labels(&labels), &delays);
        let services: Vec<ServiceSet> = (0..n)
            .map(|i| {
                let mut set = ServiceSet::from_iter([ServiceId::new(i % 4)]);
                if i >= 6 {
                    set.insert(ServiceId::new(9));
                }
                set
            })
            .collect();
        (hfc, delays, services)
    }

    #[test]
    fn multilevel_provider_serves_through_the_engine() {
        use crate::{Engine, EngineConfig};
        use son_overlay::HierarchyConfig;
        let (hfc, delays, services) = deep_world();
        let hierarchy = Arc::new(Hierarchy::build_with_depth(
            &hfc,
            &delays,
            &HierarchyConfig::default(),
            3,
        ));
        assert_eq!(hierarchy.depth(), 3);
        let snapshot = EngineSnapshot::new(hfc.clone(), services.clone(), delays.clone())
            .with_hierarchy(hierarchy.clone());
        let provider = MultiLevelProvider::default();
        assert_eq!(RouterProvider::<DelayMatrix>::name(&provider), "multilevel");
        let direct = MultiLevelRouter::from_services(
            &hfc,
            &hierarchy,
            &services,
            &delays,
            HierConfig::default(),
        );
        let engine = Engine::new(
            snapshot,
            provider,
            EngineConfig {
                workers: 2,
                ..EngineConfig::default()
            },
        );
        let batch: Vec<ServiceRequest> = (0..12)
            .map(|k| {
                ServiceRequest::new(
                    ProxyId::new(k % 12),
                    ServiceGraph::linear(vec![ServiceId::new(k % 4), ServiceId::new(9)]),
                    ProxyId::new((k * 5 + 1) % 12),
                )
            })
            .collect();
        let outcome = engine.serve(&batch);
        assert_eq!(outcome.report.router, "multilevel");
        assert_eq!(outcome.report.errors, 0);
        for (request, served) in batch.iter().zip(&outcome.paths) {
            let served = served.as_ref().expect("routable");
            served
                .validate(request, |p, s| services[p.index()].contains(s))
                .unwrap();
            assert_eq!(served, &direct.route(request).unwrap());
        }
    }

    #[test]
    fn multilevel_provider_falls_back_without_a_hierarchy() {
        let snap = snapshot();
        let request = ServiceRequest::new(
            ProxyId::new(0),
            ServiceGraph::linear(vec![ServiceId::new(1), ServiceId::new(2)]),
            ProxyId::new(5),
        );
        let provider = MultiLevelProvider::default();
        let ml = provider.router(&snap).route_path(&request).unwrap();
        let hier = HierProvider::default()
            .router(&snap)
            .route_path(&request)
            .unwrap();
        assert_eq!(ml, hier);
    }

    #[test]
    fn digest_separates_worlds_and_ignores_epochs() {
        use son_coords::Coordinates;
        use son_overlay::CoordDelays;
        let coords = |shift: f64| {
            CoordDelays::new(
                (0..6)
                    .map(|i| {
                        Coordinates::new(vec![(i / 3) as f64 * 100.0 + (i % 3) as f64 + shift, 0.0])
                    })
                    .collect(),
            )
        };
        let build = |shift: f64, flip: bool| {
            let delays = coords(shift);
            let hfc = HfcTopology::build(&Clustering::from_labels(&[0, 0, 0, 1, 1, 1]), &delays);
            let services: Vec<ServiceSet> = (0..6)
                .map(|i| ServiceSet::from_iter([ServiceId::new(if flip { i % 2 } else { i % 3 })]))
                .collect();
            EngineSnapshot::new(hfc, services, delays)
        };
        let a = build(0.0, false);
        let mut b = build(0.0, false);
        assert_eq!(a.digest(), b.digest());
        b.stamp(7);
        assert_eq!(a.digest(), b.digest(), "epochs must not affect the digest");
        assert_ne!(a.digest(), build(0.5, false).digest());
        assert_ne!(a.digest(), build(0.0, true).digest());
    }
}
