#![forbid(unsafe_code)]
//! # son-engine
//!
//! A parallel request-serving runtime on top of the `son-routing`
//! substrate — the layer that turns "we can compute one service path"
//! into "we can push sustained request load through the overlay".
//!
//! Three pieces:
//!
//! * [`EngineSnapshot`] — an immutable, epoch-stamped view of the
//!   overlay (HFC topology + installed services + delay model).
//!   Routers are built per worker from the snapshot via a
//!   [`RouterProvider`]; nothing a worker reads can change mid-batch.
//! * [`RouteCache`] — sharded, keyed by (ingress cluster, request
//!   signature), with epoch-based invalidation: entries from a
//!   superseded snapshot are dead on arrival, so churn can never leak
//!   a stale path into an answer.
//! * [`Engine`] — shards a request batch across worker threads by
//!   ingress cluster, serves cache-first, and reports throughput,
//!   latency percentiles, cache behavior, and per-border-proxy load
//!   in a [`ServeReport`].
//!
//! ```
//! use son_clustering::Clustering;
//! use son_engine::{Engine, EngineConfig, EngineSnapshot, HierProvider};
//! use son_overlay::{
//!     DelayMatrix, HfcTopology, ProxyId, ServiceGraph, ServiceId, ServiceRequest, ServiceSet,
//! };
//!
//! // Six proxies on a line, two clusters, one service apiece.
//! let n = 6;
//! let values: Vec<f64> = (0..n * n)
//!     .map(|k| ((k / n) as f64 - (k % n) as f64).abs())
//!     .collect();
//! let delays = DelayMatrix::from_values(n, values);
//! let hfc = HfcTopology::build(&Clustering::from_labels(&[0, 0, 0, 1, 1, 1]), &delays);
//! let services: Vec<ServiceSet> = (0..n)
//!     .map(|i| ServiceSet::from_iter([ServiceId::new(i % 3)]))
//!     .collect();
//!
//! let engine = Engine::new(
//!     EngineSnapshot::new(hfc, services, delays),
//!     HierProvider::default(),
//!     EngineConfig { workers: 2, ..EngineConfig::default() },
//! );
//! let batch = vec![ServiceRequest::new(
//!     ProxyId::new(0),
//!     ServiceGraph::linear(vec![ServiceId::new(1), ServiceId::new(2)]),
//!     ProxyId::new(5),
//! )];
//! let outcome = engine.serve(&batch);
//! assert!(outcome.paths[0].is_ok());
//! assert_eq!(outcome.report.requests, 1);
//! ```

pub mod cache;
pub mod engine;
pub mod report;
pub mod snapshot;

pub use cache::{
    CacheStats, CspCache, CspKey, LookupOutcome, NegativeCache, RouteCache, RouteKey, SwrLookup,
};
pub use engine::{AdmissionConfig, Disposition, Engine, EngineConfig, RejectReason, ServeOutcome};
pub use report::{AdmissionStats, LatencySummary, ServeReport, StageBreakdown, WorkerStats};
pub use snapshot::{
    EngineSnapshot, FlatProvider, HierProvider, MultiLevelProvider, RouterProvider,
};

#[cfg(test)]
mod send_sync {
    use super::*;
    use son_overlay::{CachedDelays, CoordDelays, DelayMatrix};

    fn assert_send_sync<T: Send + Sync>() {}

    /// The whole serving stack must be shareable across worker threads;
    /// this fails to *compile* if anyone adds interior mutability
    /// without synchronization.
    #[test]
    fn engine_types_are_send_sync() {
        assert_send_sync::<EngineSnapshot<DelayMatrix>>();
        assert_send_sync::<EngineSnapshot<CoordDelays>>();
        assert_send_sync::<EngineSnapshot<CachedDelays>>();
        assert_send_sync::<RouteCache>();
        assert_send_sync::<Engine<DelayMatrix, HierProvider>>();
        assert_send_sync::<Engine<CoordDelays, FlatProvider>>();
        assert_send_sync::<Engine<DelayMatrix, MultiLevelProvider>>();
        assert_send_sync::<ServeReport>();
        assert_send_sync::<ServeOutcome>();
        assert_send_sync::<AdmissionStats>();
        assert_send_sync::<Disposition>();
    }
}
