//! The serving engine: sharded workers over an epoch-stamped snapshot.
//!
//! [`Engine::serve`] answers a batch of requests with worker threads.
//! Each request is assigned to the worker owning its **ingress
//! cluster** (`cluster % workers`), every worker builds its own router
//! over the shared snapshot, and computed paths land in the shared
//! [`RouteCache`] under the snapshot's epoch. Because routing is
//! deterministic and cache hits are exact (see [`crate::cache`]), the
//! served paths are identical for any worker count — threads change
//! only the wall-clock, never the answers.
//!
//! **Churn.** [`Engine::install_snapshot`] publishes a rebuilt overlay
//! view under the next epoch. Batches started before the install keep
//! their old snapshot (and its epoch) to the end, so each batch is
//! internally consistent; the next batch routes over the new topology
//! and every cached path from before the change misses on epoch.
//!
//! **Simulated dispatch.** Real proxies don't just *compute* paths —
//! they synchronously push the session's data along them. With
//! [`EngineConfig::dispatch_us_per_delay`] > 0 each worker holds a
//! request for `path length × that factor` microseconds after routing
//! it, modeling transmission time proportional to the overlay delay of
//! the chosen path. Worker threads overlap these holds the way an
//! I/O-bound server overlaps in-flight responses, which is what makes
//! thread count matter even on a single core. Set it to 0 to benchmark
//! pure route computation.

use crate::cache::{
    CacheStats, CspCache, CspKey, LookupOutcome, NegativeCache, RouteCache, RouteKey, SwrLookup,
};
use crate::report::{AdmissionStats, LatencySummary, ServeReport, WorkerStats};
use crate::snapshot::{EngineSnapshot, RouterProvider};
use son_overlay::{DelayModel, Health, ProxyId, ServiceRequest};
use son_routing::{
    trace_hops, CostModel, CspRouter, FlatRouter, LoadAwareDelays, ProviderIndex, RouteError,
    Router, ServicePath,
};
use son_telemetry::flight::{
    flight, CacheVerdict, DispositionMark, FlightEvent, FlightKind, Stage, NO_REQUEST,
};
use son_telemetry::{CacheOutcome, Histogram, LocalHistogram, RouteTrace, SloTracker};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

/// Overload/failover tuning: token-bucket admission and bounded
/// re-routing. Disabled by default — the engine then behaves exactly
/// as before (deterministic across worker counts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Master switch for per-proxy token-bucket admission and retry.
    pub enabled: bool,
    /// Re-route attempts after a failed attempt (dead or saturated
    /// proxies from the failure join the avoid set).
    pub max_retries: u32,
    /// Backoff added to the recorded latency of attempt `k` (1-based):
    /// `backoff_base_us * 2^(k-1)` — accounted, not slept, so benches
    /// measure the client-visible penalty without wasting wall-clock.
    pub backoff_base_us: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            enabled: false,
            max_retries: 2,
            backoff_base_us: 50.0,
        }
    }
}

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads per batch (min 1).
    pub workers: usize,
    /// Lock partitions in the route cache.
    pub cache_shards: usize,
    /// Total route-cache entries before FIFO eviction.
    pub cache_capacity: usize,
    /// Microseconds a worker holds a served request per unit of path
    /// delay, modeling synchronous data dispatch along the path.
    /// 0 disables the hold and measures pure route computation.
    pub dispatch_us_per_delay: f64,
    /// Admission control and failover retry.
    pub admission: AdmissionConfig,
    /// Second cache tier: reuse solved cluster-level service paths
    /// (CSP sink frontiers) across requests that share a shape but not
    /// exact endpoints. Replay is bit-identical to an uncached solve,
    /// so this only changes speed, never answers.
    pub csp_cache: bool,
    /// Total CSP-frontier entries before FIFO eviction.
    pub csp_cache_capacity: usize,
    /// Stale-while-revalidate: how many requests per installed
    /// snapshot may be answered from the *previous* epoch's exact
    /// cache while a fresh solve revalidates the entry in the
    /// background of the batch. 0 keeps the legacy epoch-strict cache.
    pub stale_serve_budget: u64,
    /// Flight-recorder sampling: per-request events (cache verdicts,
    /// dispositions, retries) are emitted for requests whose id is a
    /// multiple of this stride, rounded up to a power of two so the
    /// per-request test is a mask, not a division. Structural events —
    /// snapshot installs, stage timings, anomalies — are never
    /// sampled. 1 records every request (`son flight` and the timeline
    /// tests use this); the default of 16 keeps the always-on cost of
    /// an enabled recorder inside the telemetry budget on warm serve
    /// paths. 0 behaves as 1.
    pub flight_sample: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 1,
            cache_shards: 16,
            cache_capacity: 65_536,
            dispatch_us_per_delay: 0.0,
            admission: AdmissionConfig::default(),
            csp_cache: true,
            csp_cache_capacity: 16_384,
            stale_serve_budget: 0,
            flight_sample: 16,
        }
    }
}

/// Why a request was shed instead of served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The ingress cluster has no `Up` proxy to accept the session.
    NoIngress,
    /// Admission ran out of capacity on every viable path.
    Overloaded,
    /// No feasible path exists (missing provider, infeasible graph, or
    /// everything viable is `Down`).
    Unroutable,
}

/// How the engine disposed of one request — the degradation taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Served on the first attempt through healthy, unsaturated
    /// proxies.
    Optimal,
    /// Served, but not cleanly: the path needed a retry/re-route or
    /// traverses a `Draining` proxy.
    Degraded,
    /// Shed; the matching entry in `paths` is the `Err`.
    Rejected(RejectReason),
}

impl Disposition {
    /// `true` for both served classes.
    pub fn is_served(self) -> bool {
        matches!(self, Disposition::Optimal | Disposition::Degraded)
    }
}

/// What one [`Engine::serve`] call produced: the answers, in request
/// order, plus the batch metrics.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// One result per request, same order as the input batch.
    pub paths: Vec<Result<ServicePath, RouteError>>,
    /// How each request was disposed of, same order as the input batch.
    pub dispositions: Vec<Disposition>,
    /// Batch metrics.
    pub report: ServeReport,
}

/// What a worker hands back for one request.
#[derive(Debug)]
struct WorkerItem {
    index: usize,
    result: Result<ServicePath, RouteError>,
    latency_us: f64,
    retries: u32,
    degraded: bool,
    health_drops: u64,
}

/// Which stage accumulator a measured section charges.
#[derive(Clone, Copy)]
enum StageSlot {
    Cache,
    Route,
    Admit,
}

/// Every `STAGE_SAMPLE`-th request per worker has its stages clocked;
/// the accumulated times are scaled back up by the observed sampling
/// ratio when the worker folds its stats. A clock read costs tens of
/// nanoseconds on a virtualized box — two per stage on every request
/// would alone eat the telemetry overhead budget on warm cache hits.
const STAGE_SAMPLE: u64 = 64;

/// Per-worker stage time accumulator (µs). When `on` is false every
/// `measure` call runs its section with zero instrumentation — no clock
/// reads — so the telemetry-off serve path is unchanged. When on, only
/// requests armed by [`StageAcc::arm`] (1 in [`STAGE_SAMPLE`]) are
/// clocked.
struct StageAcc {
    on: bool,
    armed: bool,
    seen: u64,
    sampled: u64,
    cache_us: f64,
    route_us: f64,
    admit_us: f64,
}

impl StageAcc {
    fn new(on: bool) -> StageAcc {
        StageAcc {
            on,
            armed: false,
            seen: 0,
            sampled: 0,
            cache_us: 0.0,
            route_us: 0.0,
            admit_us: 0.0,
        }
    }

    /// Called once per request, before its first measured section:
    /// decides whether this request's stages are clocked. The first
    /// request of every worker always is, so any batch with at least
    /// one request yields a non-zero breakdown.
    #[inline]
    fn arm(&mut self) {
        if self.on {
            self.armed = self.seen.is_multiple_of(STAGE_SAMPLE);
            self.seen += 1;
            self.sampled += u64::from(self.armed);
        }
    }

    /// Estimated scale-up from sampled stage time to whole-shard stage
    /// time: the inverse of the realized sampling fraction.
    fn scale(&self) -> f64 {
        if self.sampled == 0 {
            0.0
        } else {
            self.seen as f64 / self.sampled as f64
        }
    }

    #[inline]
    fn measure<T>(&mut self, slot: StageSlot, f: impl FnOnce() -> T) -> T {
        if !self.armed {
            return f();
        }
        let begun = Instant::now();
        let out = f();
        let us = begun.elapsed().as_secs_f64() * 1e6;
        match slot {
            StageSlot::Cache => self.cache_us += us,
            StageSlot::Route => self.route_us += us,
            StageSlot::Admit => self.admit_us += us,
        }
        out
    }
}

/// Per-request identity threaded through the routing helpers so deep
/// call sites (cache verdicts, CSP hits, retries) can emit flight
/// events tied to the right request. `flight_on` is latched once per
/// batch; when false every emit is a plain branch.
#[derive(Clone, Copy)]
struct ReqCtx {
    rid: u64,
    worker: usize,
    flight_on: bool,
}

impl ReqCtx {
    /// A context that suppresses flight events (revalidation solves —
    /// background work not attributable to one request's timeline).
    fn silent() -> ReqCtx {
        ReqCtx {
            rid: NO_REQUEST,
            worker: 0,
            flight_on: false,
        }
    }

    #[inline]
    fn emit(&self, kind: FlightKind, epoch: u64) {
        if self.flight_on {
            flight().record(
                FlightEvent::new(kind)
                    .tick(self.rid)
                    .request(self.rid)
                    .epoch(epoch)
                    .worker(self.worker),
            );
        }
    }

    #[inline]
    fn verdict(&self, verdict: CacheVerdict, epoch: u64) {
        self.emit(FlightKind::CacheVerdict(verdict), epoch);
    }
}

/// Maps a request outcome onto the flight recorder's disposition
/// taxonomy (mirrors the `Disposition` computed during merge).
fn disposition_mark(result: &Result<ServicePath, RouteError>, degraded: bool) -> DispositionMark {
    match result {
        Ok(_) if degraded => DispositionMark::Degraded,
        Ok(_) => DispositionMark::Optimal,
        Err(RouteError::NoIngress) => DispositionMark::RejectNoIngress,
        Err(RouteError::Overloaded) => DispositionMark::RejectOverloaded,
        Err(_) => DispositionMark::RejectUnroutable,
    }
}

/// The per-batch context shared by every worker when health or
/// admission constraints are active. `None` means the fully
/// unconstrained fast path — bit-identical to the engine before
/// admission existed.
struct BatchConstraints {
    /// Snapshot statuses merged with live health overrides.
    model: CostModel,
    admission: AdmissionConfig,
    /// Per-proxy remaining admission tokens (admission enabled only).
    buckets: Option<Vec<AtomicU32>>,
    /// Per-proxy admitted-request counters (admission enabled only).
    admitted: Option<Vec<AtomicU64>>,
}

impl BatchConstraints {
    /// Takes one token per distinct proxy of `path`, all or nothing.
    /// On failure returns the saturated proxy; nothing stays acquired.
    fn try_admit(&self, path: &ServicePath) -> Result<(), ProxyId> {
        let Some(buckets) = &self.buckets else {
            return Ok(());
        };
        let mut taken: Vec<ProxyId> = Vec::new();
        for hop in path.hops() {
            let p = hop.proxy;
            if taken.contains(&p) {
                continue;
            }
            let ok = buckets[p.index()]
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
                .is_ok();
            if !ok {
                for q in taken {
                    buckets[q.index()].fetch_add(1, Ordering::Relaxed);
                }
                return Err(p);
            }
            taken.push(p);
        }
        if let Some(admitted) = &self.admitted {
            for p in taken {
                admitted[p.index()].fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// The first hop the live health view forbids, if any.
    fn first_down_hop(&self, path: &ServicePath) -> Option<ProxyId> {
        path.hops()
            .iter()
            .map(|h| h.proxy)
            .find(|&p| !self.model.is_routable(p))
    }

    /// Whether the path touches a `Draining` proxy (served, but
    /// degraded).
    fn touches_draining(&self, path: &ServicePath) -> bool {
        path.hops()
            .iter()
            .any(|h| self.model.statuses().health(h.proxy) == Health::Draining)
    }
}

/// The multi-threaded request-serving runtime. See the module docs.
#[derive(Debug)]
pub struct Engine<D, P> {
    provider: P,
    config: EngineConfig,
    snapshot: Mutex<Arc<EngineSnapshot<D>>>,
    cache: RouteCache,
    /// Second tier: solved CSP sink frontiers, shared across requests
    /// with the same shape (ingress cluster, source class, destination
    /// cluster, service DAG) but different exact endpoints.
    csp: CspCache,
    /// Unroutable outcomes, keyed exactly and invalidated by epoch
    /// *and* health-generation so a recovered proxy un-poisons its
    /// keys.
    negative: NegativeCache,
    epoch: AtomicU64,
    /// Bumped by every `set_health`; negative entries recorded under an
    /// older generation are invalid.
    health_gen: AtomicU64,
    /// Remaining stale-serve tokens for the current epoch; reset to
    /// [`EngineConfig::stale_serve_budget`] on every snapshot install.
    stale_budget: AtomicU64,
    /// Stale entries refreshed by a post-loop revalidation solve.
    revalidations: AtomicU64,
    /// Live health overrides (`set_health`), consulted on every cache
    /// hit *independently of epochs*: a proxy that turns `Down` after a
    /// path was cached invalidates that path immediately, no snapshot
    /// install required.
    live: RwLock<Vec<Option<Health>>>,
    /// Monotone request-id source. Each `serve` call reserves a
    /// contiguous block so flight events from concurrent workers can be
    /// correlated back to individual requests.
    request_ids: AtomicU64,
    /// Optional SLO tracker ([`Engine::attach_slo`]), advanced one tick
    /// per request so sliding windows move on served traffic, never on
    /// wall clock.
    slo: Mutex<Option<Arc<SloTracker>>>,
}

impl<D, P> Engine<D, P>
where
    D: DelayModel + Send + Sync,
    P: RouterProvider<D>,
{
    /// Creates an engine serving `snapshot` (installed as epoch 0)
    /// through routers built by `provider`.
    pub fn new(mut snapshot: EngineSnapshot<D>, provider: P, config: EngineConfig) -> Self {
        snapshot.stamp(0);
        Engine {
            provider,
            config,
            snapshot: Mutex::new(Arc::new(snapshot)),
            cache: RouteCache::new(config.cache_shards, config.cache_capacity),
            csp: CspCache::new(config.cache_shards, config.csp_cache_capacity),
            negative: NegativeCache::new(4096),
            epoch: AtomicU64::new(0),
            health_gen: AtomicU64::new(0),
            stale_budget: AtomicU64::new(config.stale_serve_budget),
            revalidations: AtomicU64::new(0),
            live: RwLock::new(Vec::new()),
            request_ids: AtomicU64::new(0),
            slo: Mutex::new(None),
        }
    }

    /// Attaches a sliding-window SLO tracker: every subsequent request
    /// advances it one tick (served with its latency, or rejected), so
    /// windows seal on request-count boundaries. Window seals that
    /// breach an objective fire the flight recorder's anomaly trigger.
    pub fn attach_slo(&self, tracker: Arc<SloTracker>) {
        *self.slo.lock().expect("slo lock poisoned") = Some(tracker);
    }

    /// The attached SLO tracker, if any.
    pub fn slo(&self) -> Option<Arc<SloTracker>> {
        self.slo.lock().expect("slo lock poisoned").clone()
    }

    /// Request ids handed out so far — the flight recorder's tick scale.
    fn tick_now(&self) -> u64 {
        self.request_ids.load(Ordering::Relaxed)
    }

    /// Sampling mask for per-request flight events: the configured
    /// stride rounded up to a power of two, minus one, so the
    /// per-request sampling test is `rid & mask == 0` — one AND
    /// instead of a hardware division on the serve hot path.
    fn flight_sample_mask(&self) -> u64 {
        self.config.flight_sample.max(1).next_power_of_two() - 1
    }

    /// Overrides one proxy's health *live* — between snapshot installs.
    /// Cached routes through a proxy set `Down` are dropped on their
    /// next lookup regardless of epoch, and new routes avoid it via the
    /// retry pipeline. Overrides reset when a new snapshot is installed
    /// (its statuses are authoritative again).
    pub fn set_health(&self, proxy: ProxyId, health: Health) {
        let mut live = self.live.write().expect("live health lock poisoned");
        if live.len() <= proxy.index() {
            live.resize(proxy.index() + 1, None);
        }
        live[proxy.index()] = Some(health);
        // Any health change — including a recovery — invalidates every
        // cached unroutable verdict: no key stays poisoned once the
        // proxy that blocked it comes back.
        self.health_gen.fetch_add(1, Ordering::SeqCst);
        let rec = flight();
        if rec.is_enabled() {
            let ordinal = match health {
                Health::Up => 0.0,
                Health::Draining => 1.0,
                Health::Down => 2.0,
            };
            rec.record(
                FlightEvent::new(FlightKind::HealthTransition)
                    .tick(self.tick_now())
                    .epoch(self.epoch())
                    .proxy(proxy.index() as u32)
                    .value(ordinal),
            );
        }
    }

    /// The live health override for `proxy`, if one is set.
    pub fn live_health(&self, proxy: ProxyId) -> Option<Health> {
        self.live
            .read()
            .expect("live health lock poisoned")
            .get(proxy.index())
            .copied()
            .flatten()
    }

    /// Builds the batch constraints: snapshot statuses merged with live
    /// overrides, plus admission buckets. `None` when nothing
    /// constrains this batch (no statuses, no overrides, admission
    /// off) — the serve path is then exactly the legacy one.
    fn constraints(&self, snap: &EngineSnapshot<D>) -> Option<BatchConstraints> {
        let live = self.live.read().expect("live health lock poisoned").clone();
        let admission = self.config.admission;
        let overridden = live.iter().any(Option::is_some);
        if !admission.enabled && !overridden && snap.statuses().is_empty() {
            return None;
        }
        let mut statuses = snap.statuses().clone();
        for (i, h) in live.iter().enumerate() {
            if let Some(h) = h {
                statuses.set_health(ProxyId::new(i), *h);
            }
        }
        let (buckets, admitted) = if admission.enabled {
            let n = snap.proxy_count();
            (
                Some(
                    (0..n)
                        .map(|i| AtomicU32::new(statuses.capacity(ProxyId::new(i))))
                        .collect(),
                ),
                Some((0..n).map(|_| AtomicU64::new(0)).collect()),
            )
        } else {
            (None, None)
        };
        Some(BatchConstraints {
            model: CostModel::new(*snap.cost_model().config(), statuses),
            admission,
            buckets,
            admitted,
        })
    }

    /// The current epoch (bumped by every snapshot install).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// The snapshot new batches will serve from.
    pub fn snapshot(&self) -> Arc<EngineSnapshot<D>> {
        Arc::clone(&self.snapshot.lock().expect("snapshot lock poisoned"))
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Lifetime cache counters across all tiers (per-batch deltas are
    /// in each [`ServeReport`]): the exact route cache, the CSP
    /// frontier tier, the negative cache, and the stale-while-
    /// revalidate machinery.
    pub fn cache_stats(&self) -> CacheStats {
        let mut stats = self.cache.stats();
        let (csp_hits, csp_misses) = self.csp.counters();
        stats.csp_hits = csp_hits;
        stats.csp_misses = csp_misses;
        stats.negative_hits = self.negative.hit_count();
        stats.revalidations = self.revalidations.load(Ordering::Relaxed);
        stats
    }

    /// Publishes a rebuilt overlay view under the next epoch and
    /// returns that epoch. Call after membership churn or a state
    /// protocol round; cached paths from earlier epochs are dropped
    /// lazily on their next lookup.
    pub fn install_snapshot(&self, mut snapshot: EngineSnapshot<D>) -> u64 {
        let mut slot = self.snapshot.lock().expect("snapshot lock poisoned");
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        snapshot.stamp(epoch);
        *slot = Arc::new(snapshot);
        // The new snapshot's statuses are authoritative; stale live
        // overrides must not shadow them.
        self.live
            .write()
            .expect("live health lock poisoned")
            .clear();
        // Refill the stale-serve allowance: the *previous* epoch's
        // routes may bridge this install, bounded by the budget.
        self.stale_budget
            .store(self.config.stale_serve_budget, Ordering::SeqCst);
        let rec = flight();
        if rec.is_enabled() {
            rec.record(
                FlightEvent::new(FlightKind::SnapshotInstall)
                    .tick(self.tick_now())
                    .epoch(epoch),
            );
        }
        epoch
    }

    /// Serves a batch of requests and reports what happened. Paths come
    /// back in request order; without admission control they are
    /// independent of the worker count (admission buckets are shared
    /// across workers, so under contention the interleaving decides who
    /// is shed — the *invariants* hold for every interleaving).
    pub fn serve(&self, requests: &[ServiceRequest]) -> ServeOutcome {
        let _span = son_telemetry::span!("engine.serve");
        let snapshot = self.snapshot();
        let snap: &EngineSnapshot<D> = &snapshot;
        let epoch = snap.epoch();
        let workers = self.config.workers.max(1);
        let constraints = self.constraints(snap);

        // Shard by ingress cluster — but shed requests whose ingress
        // cluster has no `Up` member before any worker sees them: they
        // are `Rejected(NoIngress)`, never silently dropped.
        let mut pre_rejected: Vec<usize> = Vec::new();
        let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); workers];
        let cluster_has_up: Option<Vec<bool>> = constraints.as_ref().map(|ctx| {
            snap.hfc()
                .clusters()
                .map(|c| {
                    snap.hfc()
                        .members(c)
                        .iter()
                        .any(|&p| ctx.model.statuses().health(p) == Health::Up)
                })
                .collect()
        });
        for (i, request) in requests.iter().enumerate() {
            let ingress = snap.ingress(request);
            let up = cluster_has_up.as_ref().is_none_or(|up| up[ingress.index()]);
            if up {
                assigned[ingress.index() % workers].push(i);
            } else {
                pre_rejected.push(i);
            }
        }

        // Per-worker registry handles are fetched once per batch so the
        // per-request hot path stays lock-free; when telemetry is off
        // the whole block reduces to `None`s.
        let telemetry_on = son_telemetry::enabled();
        let worker_hists: Vec<Option<Histogram>> = if telemetry_on {
            let registry = son_telemetry::global();
            (0..workers)
                .map(|w| {
                    let worker = w.to_string();
                    registry
                        .gauge_with("engine.queue_depth", &[("worker", &worker)])
                        .set(assigned[w].len() as f64);
                    Some(registry.histogram_with("engine.serve_us", &[("worker", &worker)]))
                })
                .collect()
        } else {
            vec![None; workers]
        };

        // Reserve a contiguous request-id block for the batch: request
        // `i` of this batch is `rid_base + i` everywhere — flight
        // events, SLO ticks, worker shards — so timelines from
        // concurrent workers reassemble by id.
        let rid_base = self
            .request_ids
            .fetch_add(requests.len() as u64, Ordering::Relaxed);
        // SLO tracking is telemetry: while the global switch is off an
        // attached tracker lies dormant (no ticks, no seals), so a
        // telemetry-off serve is byte-for-byte the uninstrumented path.
        let slo_guard = self.slo.lock().expect("slo lock poisoned").clone();
        let slo: Option<&SloTracker> = slo_guard.as_deref().filter(|_| telemetry_on);
        let flight_on = flight().is_enabled();
        // Pre-rejections are decided before any worker runs, so their
        // SLO ticks and dispositions are recorded up front — a batch
        // that sheds everything still advances the windows.
        let sample_mask = self.flight_sample_mask();
        for &i in &pre_rejected {
            if let Some(slo) = slo {
                slo.record(false, 0.0);
            }
            let rid = rid_base + i as u64;
            if flight_on && rid & sample_mask == 0 {
                flight().record(
                    FlightEvent::new(FlightKind::Disposition(DispositionMark::RejectNoIngress))
                        .tick(rid)
                        .request(rid)
                        .epoch(epoch),
                );
            }
        }

        let stats_before = self.cache_stats();
        let started = Instant::now();
        let ctx = constraints.as_ref();
        // A single worker runs inline: spawning a thread just to join
        // it costs tens of microseconds of syscall latency per batch
        // and adds scheduler jitter to every latency measurement.
        let produced: Vec<(Vec<WorkerItem>, WorkerStats)> = if workers == 1 {
            vec![self.run_worker(
                snap,
                epoch,
                requests,
                &assigned[0],
                worker_hists[0].as_ref(),
                ctx,
                0,
                started,
                rid_base,
                slo,
            )]
        } else {
            thread::scope(|scope| {
                let handles: Vec<_> = assigned
                    .iter()
                    .zip(&worker_hists)
                    .enumerate()
                    .map(|(w, (indices, hist))| {
                        scope.spawn(move || {
                            self.run_worker(
                                snap,
                                epoch,
                                requests,
                                indices,
                                hist.as_ref(),
                                ctx,
                                w,
                                started,
                                rid_base,
                                slo,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("engine worker panicked"))
                    .collect()
            })
        };
        let elapsed = started.elapsed().as_secs_f64();

        // Merge back into request order; tally errors, latencies,
        // dispositions, and border-proxy load.
        let mut paths: Vec<Option<Result<ServicePath, RouteError>>> = vec![None; requests.len()];
        let mut dispositions: Vec<Disposition> = vec![Disposition::Optimal; requests.len()];
        let batch_latency = Histogram::new();
        let mut border_load = vec![0u64; snap.proxy_count()];
        let mut errors = 0;
        let mut admission = AdmissionStats::default();
        for &i in &pre_rejected {
            paths[i] = Some(Err(RouteError::NoIngress));
            dispositions[i] = Disposition::Rejected(RejectReason::NoIngress);
            errors += 1;
            admission.rejected += 1;
            admission.rejected_no_ingress += 1;
        }
        let mut worker_stats: Vec<WorkerStats> = Vec::with_capacity(workers);
        let mut items: Vec<WorkerItem> = Vec::with_capacity(requests.len());
        for (list, mut stats) in produced {
            // Idle is the wall the batch spent waiting on *other*
            // workers after this one finished — the shard-imbalance
            // cost the attribution bench quantifies.
            stats.idle_us = (elapsed * 1e6 - stats.busy_us).max(0.0);
            worker_stats.push(stats);
            items.extend(list);
        }
        for item in items {
            batch_latency.record(item.latency_us);
            admission.retries += u64::from(item.retries);
            admission.health_drops += item.health_drops;
            let disposition = match &item.result {
                Ok(path) => {
                    for hop in path.hops() {
                        if snap.is_border(hop.proxy) {
                            border_load[hop.proxy.index()] += 1;
                        }
                    }
                    if item.degraded {
                        admission.degraded += 1;
                        Disposition::Degraded
                    } else {
                        admission.optimal += 1;
                        Disposition::Optimal
                    }
                }
                Err(err) => {
                    errors += 1;
                    admission.rejected += 1;
                    let reason = match err {
                        RouteError::NoIngress => {
                            admission.rejected_no_ingress += 1;
                            RejectReason::NoIngress
                        }
                        RouteError::Overloaded => {
                            admission.rejected_overloaded += 1;
                            RejectReason::Overloaded
                        }
                        _ => {
                            admission.rejected_unroutable += 1;
                            RejectReason::Unroutable
                        }
                    };
                    Disposition::Rejected(reason)
                }
            };
            dispositions[item.index] = disposition;
            paths[item.index] = Some(item.result);
        }
        let admitted_load: Vec<u64> = constraints
            .as_ref()
            .and_then(|c| c.admitted.as_ref())
            .map(|admitted| admitted.iter().map(|a| a.load(Ordering::Relaxed)).collect())
            .unwrap_or_default();

        let report = ServeReport {
            router: self.provider.name(),
            workers,
            epoch,
            requests: requests.len(),
            errors,
            elapsed_secs: elapsed,
            requests_per_sec: if elapsed > 0.0 {
                requests.len() as f64 / elapsed
            } else {
                0.0
            },
            latency: LatencySummary::from_histogram(&batch_latency),
            cache: self.cache_stats().since(&stats_before),
            border_load,
            admission,
            admitted_load,
            worker_stats,
        };
        if telemetry_on {
            let registry = son_telemetry::global();
            registry.counter("engine.cache.hits").add(report.cache.hits);
            registry
                .counter("engine.cache.misses")
                .add(report.cache.misses);
            registry
                .counter("engine.cache.stale_drops")
                .add(report.cache.stale_drops);
            registry
                .counter("engine.cache.insertions")
                .add(report.cache.insertions);
            registry
                .counter("engine.cache.evictions")
                .add(report.cache.evictions);
            registry
                .counter("engine.cache.csp_hits")
                .add(report.cache.csp_hits);
            registry
                .counter("engine.cache.csp_misses")
                .add(report.cache.csp_misses);
            registry
                .counter("engine.cache.stale_served")
                .add(report.cache.stale_served);
            registry
                .counter("engine.cache.revalidations")
                .add(report.cache.revalidations);
            registry
                .counter("engine.cache.negative_hits")
                .add(report.cache.negative_hits);
            registry
                .counter("engine.requests")
                .add(requests.len() as u64);
            registry.counter("engine.errors").add(errors as u64);
            let a = &report.admission;
            for (name, value) in [
                ("engine.admission.optimal", a.optimal),
                ("engine.admission.degraded", a.degraded),
                ("engine.admission.rejected", a.rejected),
                (
                    "engine.admission.rejected_no_ingress",
                    a.rejected_no_ingress,
                ),
                (
                    "engine.admission.rejected_overloaded",
                    a.rejected_overloaded,
                ),
                (
                    "engine.admission.rejected_unroutable",
                    a.rejected_unroutable,
                ),
                ("engine.admission.retries", a.retries),
                ("engine.admission.health_drops", a.health_drops),
            ] {
                registry.counter(name).add(value);
            }
            // The live-load gauges: how much admitted traffic each
            // proxy carried in this batch.
            for (i, &load) in report.admitted_load.iter().enumerate() {
                if load > 0 {
                    let proxy = i.to_string();
                    registry
                        .gauge_with("engine.proxy.load", &[("proxy", &proxy)])
                        .set(load as f64);
                }
            }
            // Per-worker time attribution: where each worker's
            // microseconds went, and how deep its shard queue was.
            for stats in &report.worker_stats {
                let worker = stats.worker.to_string();
                let labels: &[(&str, &str)] = &[("worker", &worker)];
                for (name, us) in [
                    ("engine.worker.busy_us", stats.busy_us),
                    ("engine.worker.idle_us", stats.idle_us),
                    ("engine.worker.queue_us", stats.queue_us),
                    ("engine.worker.route_us", stats.route_us),
                    ("engine.worker.admit_us", stats.admit_us),
                    ("engine.worker.cache_us", stats.cache_us),
                    ("engine.worker.dispatch_us", stats.dispatch_us),
                ] {
                    registry.counter_with(name, labels).add(us as u64);
                }
                registry
                    .gauge_with("engine.worker.queue_depth", labels)
                    .set(stats.requests as f64);
            }
        }
        if flight_on {
            // One stage-timing event per worker per stage per batch:
            // the timeline shows where the batch's time went without
            // per-request event volume.
            let rec = flight();
            let tick = self.tick_now();
            for stats in &report.worker_stats {
                for (stage, us) in [
                    (Stage::Busy, stats.busy_us),
                    (Stage::Idle, stats.idle_us),
                    (Stage::Queue, stats.queue_us),
                    (Stage::Route, stats.route_us),
                    (Stage::Admit, stats.admit_us),
                    (Stage::Cache, stats.cache_us),
                    (Stage::Dispatch, stats.dispatch_us),
                ] {
                    rec.record(
                        FlightEvent::new(FlightKind::StageTime(stage))
                            .tick(tick)
                            .epoch(epoch)
                            .worker(stats.worker)
                            .value(us),
                    );
                }
            }
        }
        ServeOutcome {
            paths: paths
                .into_iter()
                .map(|p| p.expect("every request is assigned to exactly one worker"))
                .collect(),
            dispositions,
            report,
        }
    }

    /// One worker's batch share: build a router, then answer each
    /// assigned request cache-first. Stale-served keys collected along
    /// the way are revalidated with fresh solves *after* the serving
    /// loop, so revalidation never sits on a request's latency path.
    ///
    /// Alongside the answers, the worker measures where its time went
    /// ([`WorkerStats`]): queue wait, route computation, admission
    /// checks, cache work, and dispatch holds. Route/admit/cache
    /// sections are clocked only while telemetry is enabled.
    #[allow(clippy::too_many_arguments)]
    fn run_worker(
        &self,
        snap: &EngineSnapshot<D>,
        epoch: u64,
        requests: &[ServiceRequest],
        indices: &[usize],
        latency_hist: Option<&Histogram>,
        ctx: Option<&BatchConstraints>,
        worker: usize,
        batch_started: Instant,
        rid_base: u64,
        slo: Option<&SloTracker>,
    ) -> (Vec<WorkerItem>, WorkerStats) {
        let worker_started = Instant::now();
        let flight_on = flight().is_enabled();
        let mut acc = StageAcc::new(son_telemetry::enabled());
        let mut queue_us = 0.0f64;
        let mut dispatch_us = 0.0f64;
        let router = self.provider.router(snap);
        // The CSP tier needs a router that can expose its cluster-level
        // sink frontier; providers that can't (flat, or multi-level with
        // a hierarchy) return `None` and the tier is bypassed.
        let csp_router = if self.config.csp_cache {
            self.provider.csp_router(snap)
        } else {
            None
        };
        let csp = csp_router.as_deref();
        // Retry re-routes go through a flat fallback router — complete
        // over the full topology, so with the avoid-set folded into its
        // cost model it finds whatever healthy path remains.
        let fallback = ctx.map(|_| ProviderIndex::from_service_sets(snap.services()));
        // Latencies accumulate in a plain local histogram and fold into
        // the shared sinks (per-worker metric series, SLO tracker) at
        // window seals and batch end, so the per-request cost of
        // instrumentation is three plain writes, not atomics.
        let mut local_latency = if latency_hist.is_some() || slo.is_some() {
            Some(LocalHistogram::new())
        } else {
            None
        };
        let sample_mask = self.flight_sample_mask();
        // Dedup is a hash probe, not a scan: the stale-serve fast path
        // must stay O(1) however long the revalidation queue grows.
        let mut queued: std::collections::HashSet<RouteKey> = std::collections::HashSet::new();
        let mut revalidate: Vec<(RouteKey, usize)> = Vec::new();
        let mut out = Vec::with_capacity(indices.len());
        for &i in indices {
            let request = &requests[i];
            let rid = rid_base + i as u64;
            let rc = ReqCtx {
                rid,
                worker,
                flight_on: flight_on && rid & sample_mask == 0,
            };
            acc.arm();
            let begun = Instant::now();
            queue_us += begun.duration_since(batch_started).as_secs_f64() * 1e6;
            let key = RouteKey::encode(snap.ingress(request), request);
            let (result, retries, degraded, health_drops, backoff_us) = match ctx {
                None => {
                    let lookup = acc.measure(StageSlot::Cache, || {
                        self.cache.lookup_swr(&key, epoch, &self.stale_budget)
                    });
                    let result = match lookup {
                        SwrLookup::Hit(path) => {
                            rc.verdict(CacheVerdict::Hit, epoch);
                            Ok(path)
                        }
                        SwrLookup::Stale(path) => {
                            // A previous-epoch route may be served only
                            // if every hop still exists, still offers
                            // its service, and is routable in the
                            // *current* snapshot.
                            let usable = acc.measure(StageSlot::Admit, || {
                                self.stale_path_usable(snap, &path, None)
                            });
                            if usable {
                                rc.verdict(CacheVerdict::StaleServe, epoch);
                                if queued.insert(key.clone()) {
                                    revalidate.push((key.clone(), i));
                                }
                                Ok(path)
                            } else {
                                rc.verdict(CacheVerdict::StaleDrop, epoch);
                                self.cache.remove(&key);
                                self.route_uncached(
                                    snap,
                                    epoch,
                                    request,
                                    &key,
                                    router.as_ref(),
                                    csp,
                                    rc,
                                    &mut acc,
                                )
                            }
                        }
                        SwrLookup::Miss => {
                            rc.verdict(CacheVerdict::Miss, epoch);
                            self.route_uncached(
                                snap,
                                epoch,
                                request,
                                &key,
                                router.as_ref(),
                                csp,
                                rc,
                                &mut acc,
                            )
                        }
                        SwrLookup::StaleDrop => {
                            rc.verdict(CacheVerdict::StaleDrop, epoch);
                            self.route_uncached(
                                snap,
                                epoch,
                                request,
                                &key,
                                router.as_ref(),
                                csp,
                                rc,
                                &mut acc,
                            )
                        }
                    };
                    (result, 0, false, 0, 0.0)
                }
                Some(ctx) => self.serve_constrained(
                    snap,
                    epoch,
                    request,
                    &key,
                    router.as_ref(),
                    csp,
                    fallback.as_ref().expect("fallback built with ctx"),
                    ctx,
                    (&mut queued, &mut revalidate),
                    i,
                    rc,
                    &mut acc,
                ),
            };
            if self.config.dispatch_us_per_delay > 0.0 {
                if let Ok(path) = &result {
                    let hold = path.length(snap.delays()) * self.config.dispatch_us_per_delay;
                    dispatch_us += hold;
                    thread::sleep(Duration::from_micros(hold as u64));
                }
            }
            // Backoff is *accounted* into the client-visible latency
            // rather than slept — benches see the penalty without the
            // harness wasting wall-clock.
            let latency_us = begun.elapsed().as_secs_f64() * 1e6 + backoff_us;
            if let Some(local) = local_latency.as_mut() {
                local.record(latency_us);
            }
            rc.emit(
                FlightKind::Disposition(disposition_mark(&result, degraded)),
                epoch,
            );
            if let Some(slo) = slo {
                // One relaxed fetch-add per request; latencies ride the
                // local histogram and fold in at window boundaries.
                let sealing = if result.is_ok() {
                    slo.tick_served()
                } else {
                    slo.tick_rejected()
                };
                if let Some(tick) = sealing {
                    // A window seal is an export boundary (the SLO layer
                    // or its anomaly handler may snapshot the registry):
                    // flush this worker's batched latencies first so the
                    // sealing window sees them and no export interleaves
                    // with a partial flush.
                    if let Some(local) = local_latency.as_mut() {
                        match latency_hist {
                            Some(hist) => local.flush_into_each(&[hist, slo.latency_sink()]),
                            None => local.flush_into(slo.latency_sink()),
                        }
                    }
                    slo.seal_at(tick);
                }
            }
            out.push(WorkerItem {
                index: i,
                result,
                latency_us,
                retries,
                degraded,
                health_drops,
            });
        }
        if let Some(local) = local_latency.as_mut() {
            let mut sinks: Vec<&Histogram> = Vec::with_capacity(2);
            sinks.extend(latency_hist);
            sinks.extend(slo.map(|s| s.latency_sink()));
            local.flush_into_each(&sinks);
        }
        // Revalidate every stale-served key with a fresh current-epoch
        // solve. This runs after the last request is answered, so the
        // serving loop pays cache-lookup latency while the cache still
        // converges to current-epoch truth within the batch.
        for (key, i) in revalidate {
            let request = &requests[i];
            match self.solve_fresh(snap, epoch, request, router.as_ref(), csp, ReqCtx::silent()) {
                Ok(path) => {
                    let ok_for_ctx = ctx.is_none_or(|c| c.first_down_hop(&path).is_none());
                    if ok_for_ctx {
                        self.cache.insert(key, epoch, path);
                    } else {
                        self.cache.remove(&key);
                    }
                }
                Err(err) => {
                    self.cache.remove(&key);
                    if ctx.is_none_or(|c| !c.admission.enabled)
                        && matches!(err, RouteError::NoProvider(_) | RouteError::Infeasible)
                    {
                        let gen = self.health_gen.load(Ordering::SeqCst);
                        self.negative.insert(key, epoch, gen, err);
                    }
                }
            }
            self.revalidations.fetch_add(1, Ordering::Relaxed);
        }
        // Sampled stage times scale back up to shard estimates; busy,
        // queue, and dispatch are exact (their clocks and holds exist
        // regardless of instrumentation).
        let scale = acc.scale();
        let stats = WorkerStats {
            worker,
            requests: indices.len() as u64,
            busy_us: worker_started.elapsed().as_secs_f64() * 1e6,
            idle_us: 0.0, // filled by serve() once the batch wall is known
            queue_us,
            route_us: acc.route_us * scale,
            admit_us: acc.admit_us * scale,
            cache_us: acc.cache_us * scale,
            dispatch_us,
        };
        (out, stats)
    }

    /// Whether a previous-epoch cached path is still servable over the
    /// current snapshot (and, when constrained, the live health view):
    /// every hop must exist, still advertise its assigned service, and
    /// be routable. This is what keeps "no served route traverses a
    /// `Down` proxy" structural even for stale-served routes.
    fn stale_path_usable(
        &self,
        snap: &EngineSnapshot<D>,
        path: &ServicePath,
        ctx: Option<&BatchConstraints>,
    ) -> bool {
        let n = snap.proxy_count();
        for hop in path.hops() {
            if hop.proxy.index() >= n {
                return false;
            }
            if let Some(s) = hop.service {
                if !snap.services()[hop.proxy.index()].contains(s) {
                    return false;
                }
            }
            if !snap.is_routable(hop.proxy) {
                return false;
            }
        }
        ctx.is_none_or(|ctx| ctx.first_down_hop(path).is_none())
    }

    /// The (ingress, source class, destination cluster, DAG) key under
    /// which this request's CSP frontier is shared. `None` when the
    /// request has an empty service graph (the CSP tier is bypassed —
    /// frontier replay is not defined there).
    fn csp_key(&self, snap: &EngineSnapshot<D>, request: &ServiceRequest) -> Option<CspKey> {
        let ingress = snap.ingress(request);
        let dest_cluster = snap.hfc().cluster_of(request.destination);
        let known = if snap.is_border(request.source) || ingress == dest_cluster {
            Some(request.source.index() as u32)
        } else {
            None
        };
        CspKey::encode(ingress, dest_cluster, known, request)
    }

    /// One full routing computation with the CSP tier folded in: a
    /// frontier hit skips the inter-cluster DP and replays only the
    /// cheap per-request closing and intra-cluster legs; a miss solves
    /// the frontier once and shares it. Replay is bit-identical to
    /// `router.route_path` by construction (see `son_routing::csp`).
    fn solve_fresh(
        &self,
        snap: &EngineSnapshot<D>,
        epoch: u64,
        request: &ServiceRequest,
        router: &dyn Router,
        csp: Option<&dyn CspRouter>,
        rc: ReqCtx,
    ) -> Result<ServicePath, RouteError> {
        let Some(csp_router) = csp else {
            return router.route_path(request);
        };
        let Some(ckey) = self.csp_key(snap, request) else {
            return router.route_path(request);
        };
        match self.csp.lookup(&ckey, epoch) {
            Some(frontier) => {
                rc.verdict(CacheVerdict::CspHit, epoch);
                csp_router.route_from_frontier(request, &frontier)
            }
            None => match csp_router.solve_frontier(request) {
                Ok(frontier) => {
                    let frontier = Arc::new(frontier);
                    self.csp.insert(ckey, epoch, Arc::clone(&frontier));
                    csp_router.route_from_frontier(request, &frontier)
                }
                Err(err) => Err(err),
            },
        }
    }

    /// Uncached unconstrained solve: negative fast-reject, then the
    /// CSP-aware fresh solve, then cache fill (positive or negative).
    #[allow(clippy::too_many_arguments)]
    fn route_uncached(
        &self,
        snap: &EngineSnapshot<D>,
        epoch: u64,
        request: &ServiceRequest,
        key: &RouteKey,
        router: &dyn Router,
        csp: Option<&dyn CspRouter>,
        rc: ReqCtx,
        acc: &mut StageAcc,
    ) -> Result<ServicePath, RouteError> {
        let health_gen = self.health_gen.load(Ordering::SeqCst);
        let negative = acc.measure(StageSlot::Cache, || {
            self.negative.lookup(key, epoch, health_gen)
        });
        if let Some(err) = negative {
            rc.verdict(CacheVerdict::NegativeHit, epoch);
            return Err(err);
        }
        let result = acc.measure(StageSlot::Route, || {
            self.solve_fresh(snap, epoch, request, router, csp, rc)
        });
        acc.measure(StageSlot::Cache, || match &result {
            Ok(path) => self.cache.insert(key.clone(), epoch, path.clone()),
            Err(err) => {
                if matches!(err, RouteError::NoProvider(_) | RouteError::Infeasible) {
                    self.negative
                        .insert(key.clone(), epoch, health_gen, err.clone());
                }
            }
        });
        result
    }

    /// The admission/failover pipeline for one request:
    ///
    /// 1. cache-first, with **epoch-independent health validation** —
    ///    a hit through a proxy the live view says is `Down` is dropped
    ///    from the cache and recomputed;
    /// 2. the primary router answers over the snapshot's load-aware
    ///    cost model;
    /// 3. the answer is checked against live health and charged against
    ///    per-proxy admission tokens (all hops or nothing);
    /// 4. on failure, the offending proxy joins the avoid set and a
    ///    bounded exponential-backoff retry re-routes around it via the
    ///    flat fallback router.
    ///
    /// Every *served* path is health-checked here, which is what makes
    /// "no served route traverses a `Down` proxy" structural rather
    /// than statistical — including routes served stale: a
    /// previous-epoch entry is validated against the current snapshot
    /// *and* the live health view before it is ever handed out.
    #[allow(clippy::too_many_arguments)]
    fn serve_constrained(
        &self,
        snap: &EngineSnapshot<D>,
        epoch: u64,
        request: &ServiceRequest,
        key: &RouteKey,
        router: &dyn Router,
        csp: Option<&dyn CspRouter>,
        fallback: &ProviderIndex,
        ctx: &BatchConstraints,
        revalidate: (
            &mut std::collections::HashSet<RouteKey>,
            &mut Vec<(RouteKey, usize)>,
        ),
        index: usize,
        rc: ReqCtx,
        acc: &mut StageAcc,
    ) -> (Result<ServicePath, RouteError>, u32, bool, u64, f64) {
        let mut health_drops = 0u64;
        let mut retries = 0u32;
        let mut backoff_us = 0.0f64;
        let mut avoid: Vec<ProxyId> = Vec::new();
        let mut overloaded = false;

        // Negative fast-reject: an unroutable verdict recorded under
        // this epoch and health generation is final — recomputing (and
        // re-retrying) it would reach the same answer.
        let health_gen = self.health_gen.load(Ordering::SeqCst);
        let negative = acc.measure(StageSlot::Cache, || {
            self.negative.lookup(key, epoch, health_gen)
        });
        if let Some(err) = negative {
            rc.verdict(CacheVerdict::NegativeHit, epoch);
            return (Err(err), 0, false, 0, 0.0);
        }

        let lookup = acc.measure(StageSlot::Cache, || {
            self.cache.lookup_swr(key, epoch, &self.stale_budget)
        });
        let mut candidate: Result<(ServicePath, bool), RouteError> = match lookup {
            SwrLookup::Hit(path) => {
                let down = acc.measure(StageSlot::Admit, || ctx.first_down_hop(&path));
                if down.is_some() {
                    rc.verdict(CacheVerdict::HealthDrop, epoch);
                    self.cache.remove(key);
                    health_drops += 1;
                    acc.measure(StageSlot::Route, || {
                        self.solve_fresh(snap, epoch, request, router, csp, rc)
                    })
                    .map(|p| (p, false))
                } else {
                    rc.verdict(CacheVerdict::Hit, epoch);
                    Ok((path, true))
                }
            }
            SwrLookup::Stale(path) => {
                let usable = acc.measure(StageSlot::Admit, || {
                    self.stale_path_usable(snap, &path, Some(ctx))
                });
                if usable {
                    rc.verdict(CacheVerdict::StaleServe, epoch);
                    if revalidate.0.insert(key.clone()) {
                        revalidate.1.push((key.clone(), index));
                    }
                    Ok((path, true))
                } else {
                    rc.verdict(CacheVerdict::StaleDrop, epoch);
                    self.cache.remove(key);
                    acc.measure(StageSlot::Route, || {
                        self.solve_fresh(snap, epoch, request, router, csp, rc)
                    })
                    .map(|p| (p, false))
                }
            }
            miss @ (SwrLookup::Miss | SwrLookup::StaleDrop) => {
                rc.verdict(
                    if matches!(miss, SwrLookup::Miss) {
                        CacheVerdict::Miss
                    } else {
                        CacheVerdict::StaleDrop
                    },
                    epoch,
                );
                acc.measure(StageSlot::Route, || {
                    self.solve_fresh(snap, epoch, request, router, csp, rc)
                })
                .map(|p| (p, false))
            }
        };

        let mut attempt = 0u32;
        loop {
            let mut route_error = None;
            match candidate {
                Ok((path, from_cache)) => {
                    let down = acc.measure(StageSlot::Admit, || ctx.first_down_hop(&path));
                    if let Some(p) = down {
                        if !avoid.contains(&p) {
                            avoid.push(p);
                        }
                        overloaded = false;
                    } else {
                        let admitted = acc.measure(StageSlot::Admit, || ctx.try_admit(&path));
                        match admitted {
                            Ok(()) => {
                                if !from_cache && attempt == 0 {
                                    acc.measure(StageSlot::Cache, || {
                                        self.cache.insert(key.clone(), epoch, path.clone())
                                    });
                                }
                                let degraded = attempt > 0 || ctx.touches_draining(&path);
                                return (Ok(path), retries, degraded, health_drops, backoff_us);
                            }
                            Err(p) => {
                                if !avoid.contains(&p) {
                                    avoid.push(p);
                                }
                                overloaded = true;
                            }
                        }
                    }
                }
                Err(err) => route_error = Some(err),
            }
            if attempt >= ctx.admission.max_retries {
                let err = match route_error {
                    Some(err) => err,
                    None if overloaded => RouteError::Overloaded,
                    None => RouteError::Infeasible,
                };
                // Cache the unroutable verdict, but only when admission
                // is off: with token buckets active the final error can
                // depend on this batch's token state, which the
                // (epoch, health-gen) key does not capture.
                if !ctx.admission.enabled
                    && matches!(err, RouteError::NoProvider(_) | RouteError::Infeasible)
                {
                    self.negative
                        .insert(key.clone(), epoch, health_gen, err.clone());
                }
                return (Err(err), retries, false, health_drops, backoff_us);
            }
            attempt += 1;
            retries += 1;
            backoff_us += ctx.admission.backoff_base_us * 2f64.powi(attempt as i32 - 1);
            if rc.flight_on {
                // The retry event names the proxy being routed around —
                // the most recent addition to the avoid set, if any.
                let mut ev = FlightEvent::new(FlightKind::FailoverRetry)
                    .tick(rc.rid)
                    .request(rc.rid)
                    .epoch(epoch)
                    .worker(rc.worker)
                    .value(backoff_us);
                if let Some(p) = avoid.last() {
                    ev = ev.proxy(p.index() as u32);
                }
                flight().record(ev);
            }
            // Re-route with dead and saturated proxies priced out.
            candidate = acc.measure(StageSlot::Route, || {
                let mut statuses = ctx.model.statuses().clone();
                for &p in &avoid {
                    statuses.set_health(p, Health::Down);
                }
                let model = CostModel::new(*ctx.model.config(), statuses);
                let delays = LoadAwareDelays::new(snap.delays(), &model);
                FlatRouter::new(fallback, delays)
                    .route(request)
                    .map(|p| (p, false))
            });
        }
    }

    /// Routes one request through the full serving path — cache lookup,
    /// router, cache fill — and returns its provenance record alongside
    /// the answer. The cache is consulted and populated exactly as in
    /// [`Engine::serve`], so tracing the same request twice shows a miss
    /// followed by a hit.
    pub fn trace_request(
        &self,
        request: &ServiceRequest,
    ) -> (Result<ServicePath, RouteError>, RouteTrace) {
        let snapshot = self.snapshot();
        let snap: &EngineSnapshot<D> = &snapshot;
        let epoch = snap.epoch();
        let key = RouteKey::encode(snap.ingress(request), request);
        let started = Instant::now();
        let (mut cached, mut outcome) = self.cache.lookup_explain(&key, epoch);
        // Same epoch-independent health validation as the serve path: a
        // hit through a live-`Down` proxy is dropped, not traced as
        // served.
        if let (Some(path), Some(ctx)) = (&cached, self.constraints(snap)) {
            if ctx.first_down_hop(path).is_some() {
                self.cache.remove(&key);
                cached = None;
                outcome = LookupOutcome::StaleDrop;
            }
        }
        match cached {
            Some(path) => {
                let mut trace = son_routing::request_trace(self.provider.name(), request);
                trace.epoch = Some(epoch);
                trace.cache = Some(CacheOutcome::Hit);
                trace.hops = trace_hops(&path);
                trace.cost = Some(path.length(snap.delays()));
                trace.elapsed_us = started.elapsed().as_secs_f64() * 1e6;
                (Ok(path), trace)
            }
            None => {
                let router = self.provider.traced_router(snap);
                let (mut result, mut trace) = router.route_with_trace(request);
                trace.epoch = Some(epoch);
                trace.cache = Some(match outcome {
                    LookupOutcome::StaleDrop => CacheOutcome::StaleDrop,
                    _ => CacheOutcome::Miss,
                });
                // The provider router only knows the snapshot statuses;
                // when a live override forbids a hop of the fresh
                // route, fail over exactly as the serve path does:
                // re-route flat with `Down` proxies priced out.
                let mut failover = false;
                if let Some(ctx) = self.constraints(snap) {
                    if result
                        .as_ref()
                        .is_ok_and(|path| ctx.first_down_hop(path).is_some())
                    {
                        failover = true;
                        let index = ProviderIndex::from_service_sets(snap.services());
                        let delays = LoadAwareDelays::new(snap.delays(), &ctx.model);
                        result = FlatRouter::new(&index, delays).route(request);
                        trace.router = "flat-failover".to_string();
                        if let Ok(path) = &result {
                            trace.hops = trace_hops(path);
                        }
                        trace.cost = None;
                    }
                }
                if let Ok(path) = &result {
                    if trace.cost.is_none() {
                        trace.cost = Some(path.length(snap.delays()));
                    }
                    // Failover paths are valid only while the override
                    // holds, so (as in `serve`) they are not cached.
                    if !failover {
                        self.cache.insert(key, epoch, path.clone());
                    }
                }
                trace.elapsed_us = started.elapsed().as_secs_f64() * 1e6;
                (result, trace)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::HierProvider;
    use son_clustering::Clustering;
    use son_overlay::{DelayMatrix, HfcTopology, ProxyId, ServiceGraph, ServiceId, ServiceSet};

    fn line_snapshot(n: usize, clusters: usize) -> EngineSnapshot<DelayMatrix> {
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                values[i * n + j] = (i as f64 - j as f64).abs();
            }
        }
        let delays = DelayMatrix::from_values(n, values);
        let labels: Vec<usize> = (0..n).map(|i| i * clusters / n).collect();
        let hfc = HfcTopology::build(&Clustering::from_labels(&labels), &delays);
        let services = (0..n)
            .map(|i| ServiceSet::from_iter([ServiceId::new(i % 4)]))
            .collect();
        EngineSnapshot::new(hfc, services, delays)
    }

    fn requests(n: usize, count: usize) -> Vec<ServiceRequest> {
        (0..count)
            .map(|k| {
                ServiceRequest::new(
                    ProxyId::new(k % n),
                    ServiceGraph::linear(vec![ServiceId::new(k % 4), ServiceId::new((k + 1) % 4)]),
                    ProxyId::new((k * 7 + 3) % n),
                )
            })
            .collect()
    }

    fn engine(workers: usize) -> Engine<DelayMatrix, HierProvider> {
        Engine::new(
            line_snapshot(12, 3),
            HierProvider::default(),
            EngineConfig {
                workers,
                ..EngineConfig::default()
            },
        )
    }

    #[test]
    fn serves_valid_paths_in_request_order() {
        let eng = engine(2);
        let batch = requests(12, 40);
        let outcome = eng.serve(&batch);
        assert_eq!(outcome.paths.len(), batch.len());
        assert_eq!(outcome.report.errors, 0);
        assert_eq!(outcome.report.requests, 40);
        let snap = eng.snapshot();
        for (request, path) in batch.iter().zip(&outcome.paths) {
            let path = path.as_ref().expect("routable");
            path.validate(request, |p, s| snap.services()[p.index()].contains(s))
                .unwrap();
        }
    }

    #[test]
    fn worker_count_does_not_change_answers() {
        let batch = requests(12, 60);
        let single = engine(1).serve(&batch);
        for workers in [2, 3, 4, 7] {
            let multi = engine(workers).serve(&batch);
            assert_eq!(multi.paths, single.paths, "{workers} workers");
            assert_eq!(multi.report.workers, workers);
        }
    }

    #[test]
    fn repeated_batch_hits_the_cache() {
        let eng = engine(2);
        // 12 requests over 12 proxies: all distinct (the generator
        // repeats with period 12), so the cold pass has no self-hits.
        let batch = requests(12, 12);
        let cold = eng.serve(&batch);
        assert_eq!(cold.report.cache.hits, 0);
        let warm = eng.serve(&batch);
        assert_eq!(warm.report.cache.misses, 0);
        assert_eq!(warm.report.cache.hits as usize, batch.len());
        assert_eq!(warm.paths, cold.paths);
    }

    #[test]
    fn install_snapshot_bumps_epoch_and_invalidates() {
        let eng = engine(2);
        let batch = requests(12, 12); // distinct, see above
        eng.serve(&batch);
        assert_eq!(eng.install_snapshot(line_snapshot(12, 3)), 1);
        assert_eq!(eng.epoch(), 1);
        let after = eng.serve(&batch);
        assert_eq!(after.report.epoch, 1);
        // Every cached path was stamped with epoch 0: all miss.
        assert_eq!(after.report.cache.hits, 0);
        assert_eq!(after.report.cache.stale_drops as usize, batch.len());
    }

    #[test]
    fn border_load_counts_only_borders() {
        let eng = engine(1);
        let outcome = eng.serve(&requests(12, 50));
        let snap = eng.snapshot();
        assert_eq!(outcome.report.border_load.len(), 12);
        for (i, &load) in outcome.report.border_load.iter().enumerate() {
            if !snap.is_border(ProxyId::new(i)) {
                assert_eq!(load, 0, "proxy {i} is not a border");
            }
        }
        // Cross-cluster requests exist, so some border carried load.
        assert!(outcome.report.busiest_borders().iter().any(|&(_, l)| l > 0));
    }

    #[test]
    fn trace_request_shows_miss_then_hit() {
        let eng = engine(1);
        let batch = requests(12, 1);
        let (first, miss_trace) = eng.trace_request(&batch[0]);
        let first = first.unwrap();
        assert_eq!(miss_trace.cache, Some(CacheOutcome::Miss));
        assert_eq!(miss_trace.epoch, Some(0));
        assert_eq!(miss_trace.router, "hier");
        assert!(!miss_trace.hops.is_empty());
        assert!(miss_trace.cost.is_some());

        let (second, hit_trace) = eng.trace_request(&batch[0]);
        assert_eq!(second.unwrap(), first);
        assert_eq!(hit_trace.cache, Some(CacheOutcome::Hit));
        assert_eq!(hit_trace.cost, miss_trace.cost);

        // Epoch bump turns the cached entry into a stale drop.
        eng.install_snapshot(line_snapshot(12, 3));
        let (_, stale_trace) = eng.trace_request(&batch[0]);
        assert_eq!(stale_trace.cache, Some(CacheOutcome::StaleDrop));
        assert_eq!(stale_trace.epoch, Some(1));
    }

    #[test]
    fn serve_folds_cache_counters_into_the_registry() {
        let registry = son_telemetry::global();
        let hits_before = registry.counter("engine.cache.hits").get();
        let misses_before = registry.counter("engine.cache.misses").get();
        let eng = engine(2);
        let batch = requests(12, 12); // all distinct
        let cold = eng.serve(&batch);
        let warm = eng.serve(&batch);
        // Registry counters are global and only grow; other tests may
        // add more, so assert at-least the two batches' deltas.
        assert!(
            registry.counter("engine.cache.hits").get() >= hits_before + warm.report.cache.hits
        );
        assert!(
            registry.counter("engine.cache.misses").get()
                >= misses_before + cold.report.cache.misses
        );
        // Per-worker latency histograms exist and saw this batch.
        let h0 = registry.histogram_with("engine.serve_us", &[("worker", "0")]);
        assert!(h0.count() > 0);
    }

    fn served_proxies(outcome: &ServeOutcome) -> Vec<ProxyId> {
        outcome
            .paths
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .flat_map(|p| p.hops().iter())
            .map(|h| h.proxy)
            .collect()
    }

    #[test]
    fn admission_sheds_and_never_exceeds_capacity() {
        use son_overlay::StatusMap;
        use son_routing::CostConfig;
        let mut statuses = StatusMap::all_up(12);
        for i in 0..12 {
            statuses.set_capacity(ProxyId::new(i), 3);
        }
        let snapshot = line_snapshot(12, 3).with_statuses(statuses, CostConfig::balanced());
        let eng = Engine::new(
            snapshot,
            HierProvider::default(),
            EngineConfig {
                workers: 2,
                admission: AdmissionConfig {
                    enabled: true,
                    ..AdmissionConfig::default()
                },
                ..EngineConfig::default()
            },
        );
        let batch = requests(12, 60);
        let outcome = eng.serve(&batch);
        let a = outcome.report.admission;
        // Accounting: every request lands in exactly one class.
        assert_eq!(a.total(), 60, "{a:?}");
        assert_eq!(outcome.dispositions.len(), 60);
        // 60 requests × ≥2 hops over 12 proxies × 3 tokens each must
        // saturate: some requests are shed as overloaded.
        assert!(a.rejected_overloaded > 0, "{a:?}");
        assert!(a.served() > 0, "{a:?}");
        // The hard invariant: no proxy admits more than its capacity.
        for (i, &load) in outcome.report.admitted_load.iter().enumerate() {
            assert!(load <= 3, "proxy {i} admitted {load} > capacity 3");
        }
        // Dispositions agree with the per-request results.
        for (d, p) in outcome.dispositions.iter().zip(&outcome.paths) {
            assert_eq!(d.is_served(), p.is_ok(), "{d:?} vs {p:?}");
        }
    }

    /// Like [`line_snapshot`] but only the middle cluster (proxies
    /// 4..8) carries service 0 — forcing provider hops onto interior
    /// proxies.
    fn middle_provider_snapshot() -> EngineSnapshot<DelayMatrix> {
        let n = 12;
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                values[i * n + j] = (i as f64 - j as f64).abs();
            }
        }
        let delays = DelayMatrix::from_values(n, values);
        let labels: Vec<usize> = (0..n).map(|i| i * 3 / n).collect();
        let hfc = HfcTopology::build(&Clustering::from_labels(&labels), &delays);
        let services = (0..n)
            .map(|i| {
                if (4..8).contains(&i) {
                    ServiceSet::from_iter([ServiceId::new(0)])
                } else {
                    ServiceSet::new()
                }
            })
            .collect();
        EngineSnapshot::new(hfc, services, delays)
    }

    #[test]
    fn live_down_invalidates_cache_and_reroutes() {
        let eng = Engine::new(
            middle_provider_snapshot(),
            HierProvider::default(),
            EngineConfig {
                workers: 2,
                admission: AdmissionConfig {
                    enabled: true,
                    ..AdmissionConfig::default()
                },
                ..EngineConfig::default()
            },
        );
        // Only the middle cluster (proxies 4..8) carries the service,
        // while sources sit in cluster 0 and destinations in cluster 2:
        // every path's provider hop is nobody's endpoint, so rerouting
        // around a dead provider can succeed.
        let batch: Vec<ServiceRequest> = (0..8)
            .map(|k| {
                ServiceRequest::new(
                    ProxyId::new(k % 4),
                    ServiceGraph::linear(vec![ServiceId::new(0)]),
                    ProxyId::new(8 + (k % 4)),
                )
            })
            .collect();
        let clean = eng.serve(&batch);
        assert_eq!(clean.report.admission.rejected, 0);
        let victim = clean
            .paths
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .flat_map(|p| p.hops().iter())
            .filter(|h| h.service.is_some())
            .map(|h| h.proxy)
            .find(|&p| batch.iter().all(|r| r.source != p && r.destination != p))
            .expect("some interior proxy serves");
        assert!((4..8).contains(&victim.index()), "{victim}");

        eng.set_health(victim, Health::Down);
        let after = eng.serve(&batch);
        let a = after.report.admission;
        // Cached routes through the victim are dropped on hit — no
        // epoch bump needed — and the requests re-route around it.
        assert!(a.health_drops > 0, "{a:?}");
        assert!(a.retries > 0, "{a:?}");
        assert!(a.degraded > 0, "{a:?}");
        assert!(
            !served_proxies(&after).contains(&victim),
            "a served path still traverses the Down {victim}"
        );
        assert_eq!(a.total(), 8, "{a:?}");
        // The override is live state: installing a fresh snapshot
        // clears it and the victim serves again.
        eng.install_snapshot(middle_provider_snapshot());
        let restored = eng.serve(&batch);
        assert!(served_proxies(&restored).contains(&victim));
    }

    #[test]
    fn fully_down_ingress_cluster_rejects_no_ingress() {
        let eng = engine(2);
        // Cluster 0 is proxies 0..4; take them all down live.
        for i in 0..4 {
            eng.set_health(ProxyId::new(i), Health::Down);
        }
        let batch = requests(12, 12);
        let outcome = eng.serve(&batch);
        for (request, (disposition, path)) in batch
            .iter()
            .zip(outcome.dispositions.iter().zip(&outcome.paths))
        {
            if request.source.index() < 4 {
                // No Up proxy can accept the session: a distinct,
                // audited rejection — never a silent drop or panic.
                assert_eq!(
                    *disposition,
                    Disposition::Rejected(RejectReason::NoIngress),
                    "{request:?}"
                );
                assert!(matches!(path, Err(RouteError::NoIngress)), "{path:?}");
            } else if request.destination.index() < 4 {
                // The mandatory egress hop is Down: unroutable, not
                // NoIngress.
                assert!(!disposition.is_served(), "{disposition:?}");
            } else {
                assert!(disposition.is_served(), "{disposition:?} {request:?}");
            }
        }
        assert!(outcome.report.admission.rejected_no_ingress > 0);
        assert!(!served_proxies(&outcome).iter().any(|p| p.index() < 4));
    }

    #[test]
    fn draining_proxies_still_serve_but_degraded() {
        use son_overlay::StatusMap;
        use son_routing::CostConfig;
        // Cluster 2 (proxies 8..12) drains. Requests from cluster 0 to
        // a draining destination must still be served — the mandatory
        // egress hop touches a Draining proxy — but classed Degraded,
        // never Rejected.
        let mut statuses = StatusMap::all_up(12);
        for i in 8..12 {
            statuses.set_health(ProxyId::new(i), Health::Draining);
        }
        let snapshot = line_snapshot(12, 3).with_statuses(statuses, CostConfig::balanced());
        let eng = Engine::new(snapshot, HierProvider::default(), EngineConfig::default());
        let batch: Vec<ServiceRequest> = (0..12)
            .map(|k| {
                ServiceRequest::new(
                    ProxyId::new(k % 4),
                    ServiceGraph::linear(vec![ServiceId::new(k % 4)]),
                    ProxyId::new(8 + (k % 4)),
                )
            })
            .collect();
        let outcome = eng.serve(&batch);
        let a = outcome.report.admission;
        assert_eq!(a.rejected, 0, "{a:?}");
        assert_eq!(a.optimal, 0, "{a:?}");
        assert_eq!(a.degraded, 12, "{a:?}");
        assert!(outcome.dispositions.iter().all(|d| d.is_served()));
    }

    #[test]
    fn dispatch_hold_slows_single_worker() {
        let snapshot = line_snapshot(12, 3);
        let batch = requests(12, 8);
        let config = EngineConfig {
            workers: 1,
            dispatch_us_per_delay: 2_000.0,
            ..EngineConfig::default()
        };
        let eng = Engine::new(snapshot, HierProvider::default(), config);
        let outcome = eng.serve(&batch);
        // Every request holds ≥ 0; cross-proxy paths hold ≥ 2ms each.
        assert!(outcome.report.elapsed_secs > 0.002);
        assert_eq!(outcome.report.errors, 0);
    }

    /// A leaked private recorder so SLO/anomaly tests never touch the
    /// process-global ring other tests may be using.
    fn private_flight(capacity: usize) -> &'static son_telemetry::FlightRecorder {
        let recorder = Box::leak(Box::new(son_telemetry::FlightRecorder::new(capacity)));
        recorder.set_enabled(true);
        recorder
    }

    #[test]
    fn worker_stats_attribute_the_batch() {
        let eng = engine(2);
        let batch = requests(12, 30);
        let outcome = eng.serve(&batch);
        let stats = &outcome.report.worker_stats;
        assert_eq!(stats.len(), 2);
        assert_eq!(stats.iter().map(|w| w.requests).sum::<u64>(), 30);
        for w in stats {
            assert!(w.busy_us > 0.0, "{w:?}");
            assert!(w.idle_us >= 0.0, "{w:?}");
            assert!(w.queue_us >= 0.0, "{w:?}");
        }
        // Telemetry is on by default, so the cold batch's CSP solves
        // show up as route time and its lookups as cache time.
        let breakdown = outcome.report.stage_breakdown();
        assert!(breakdown.busy_us > 0.0, "{breakdown:?}");
        assert!(breakdown.route_us > 0.0, "{breakdown:?}");
        assert!(breakdown.cache_us > 0.0, "{breakdown:?}");
        assert!(breakdown.imbalance >= 1.0, "{breakdown:?}");
    }

    #[test]
    fn attach_slo_windows_advance_on_served_ticks() {
        let recorder = private_flight(256);
        let slo = Arc::new(SloTracker::with_flight(
            son_telemetry::SloConfig {
                window_ticks: 8,
                ..son_telemetry::SloConfig::default()
            },
            recorder,
        ));
        let eng = engine(1);
        eng.attach_slo(Arc::clone(&slo));
        let outcome = eng.serve(&requests(12, 24));
        assert_eq!(outcome.report.errors, 0);
        // One tick per request: 24 requests seal exactly 3 windows, and
        // every sealed frame holds exactly its 8 requests' deltas.
        assert_eq!(slo.ticks(), 24);
        assert_eq!(slo.sealed(), 3);
        assert_eq!(slo.served_total(), 24);
        assert_eq!(slo.rejected_total(), 0);
        for frame in slo.frames() {
            assert_eq!(frame.served, 8, "{frame:?}");
            assert_eq!(frame.rejected, 0, "{frame:?}");
            assert_eq!(frame.latency.count, 8, "{frame:?}");
            assert_eq!(frame.availability, 1.0, "{frame:?}");
            assert!(frame.availability_ok, "{frame:?}");
        }
        assert_eq!(slo.breaches(), 0);
        assert!(recorder.anomaly().is_none());
    }

    #[test]
    fn rejection_spike_fires_the_anomaly_through_serve() {
        let recorder = private_flight(256);
        let slo = Arc::new(SloTracker::with_flight(
            son_telemetry::SloConfig {
                window_ticks: 4,
                rejection_trigger: 0.5,
                ..son_telemetry::SloConfig::default()
            },
            recorder,
        ));
        let eng = engine(2);
        eng.attach_slo(Arc::clone(&slo));
        // Every proxy Down: all 8 requests shed as NoIngress before the
        // workers even spawn, so the ticks are sequential and the first
        // window's rejection rate is exactly 1.0 ≥ the 0.5 trigger.
        for i in 0..12 {
            eng.set_health(ProxyId::new(i), Health::Down);
        }
        let outcome = eng.serve(&requests(12, 8));
        assert_eq!(outcome.report.admission.rejected_no_ingress, 8);
        assert_eq!(slo.rejected_total(), 8);
        assert_eq!(slo.sealed(), 2);
        let snap = recorder.anomaly().expect("rejection spike must trigger");
        assert!(matches!(
            snap.kind,
            son_telemetry::AnomalyKind::RejectionRate
        ));
        assert_eq!(snap.window, 0);
        assert_eq!(snap.tick, 4);
        assert_eq!(snap.observed, 1.0);
        assert_eq!(snap.threshold, 0.5);
    }

    #[test]
    fn flight_timeline_reconstructs_per_request_events() {
        let recorder = flight();
        // Sampling stride 1: the timeline assertion needs every
        // request's events, not the production 1-in-8 sample.
        let eng = Engine::new(
            line_snapshot(12, 3),
            HierProvider::default(),
            EngineConfig {
                workers: 1,
                flight_sample: 1,
                ..EngineConfig::default()
            },
        );
        let watermark = recorder.recorded();
        recorder.set_enabled(true);
        // Mark this engine's events with a unique epoch (5) so batches
        // served concurrently by other tests — all at epoch 0 or 1 —
        // can never be mistaken for ours.
        for _ in 0..5 {
            eng.install_snapshot(line_snapshot(12, 3));
        }
        assert_eq!(eng.epoch(), 5);
        let outcome = eng.serve(&requests(12, 6));
        recorder.set_enabled(false);
        assert_eq!(outcome.report.errors, 0);
        let events: Vec<FlightEvent> = recorder
            .since(watermark)
            .into_iter()
            .filter(|e| e.epoch == 5)
            .collect();
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, FlightKind::SnapshotInstall)),
            "the epoch-5 install must be on the timeline"
        );
        // Every request's timeline: a cold-cache Miss verdict followed
        // (in seq order) by an Optimal disposition, tied by request id.
        for rid in 0..6u64 {
            let timeline: Vec<&FlightEvent> = events.iter().filter(|e| e.request == rid).collect();
            let verdict = timeline
                .iter()
                .position(|e| matches!(e.kind, FlightKind::CacheVerdict(CacheVerdict::Miss)))
                .unwrap_or_else(|| panic!("request {rid} has no miss verdict: {timeline:?}"));
            let disposition = timeline
                .iter()
                .position(|e| matches!(e.kind, FlightKind::Disposition(DispositionMark::Optimal)))
                .unwrap_or_else(|| panic!("request {rid} has no disposition: {timeline:?}"));
            assert!(verdict < disposition, "verdict must precede disposition");
            assert!(timeline.iter().all(|e| e.worker == 0));
        }
        // Per-worker stage timings rode along for the batch.
        let stages: Vec<&FlightEvent> = events
            .iter()
            .filter(|e| matches!(e.kind, FlightKind::StageTime(_)))
            .collect();
        assert_eq!(stages.len(), 7, "{stages:?}");
        assert!(stages
            .iter()
            .any(|e| matches!(e.kind, FlightKind::StageTime(Stage::Busy)) && e.value > 0.0));
    }
}
