//! The serving engine: sharded workers over an epoch-stamped snapshot.
//!
//! [`Engine::serve`] answers a batch of requests with worker threads.
//! Each request is assigned to the worker owning its **ingress
//! cluster** (`cluster % workers`), every worker builds its own router
//! over the shared snapshot, and computed paths land in the shared
//! [`RouteCache`] under the snapshot's epoch. Because routing is
//! deterministic and cache hits are exact (see [`crate::cache`]), the
//! served paths are identical for any worker count — threads change
//! only the wall-clock, never the answers.
//!
//! **Churn.** [`Engine::install_snapshot`] publishes a rebuilt overlay
//! view under the next epoch. Batches started before the install keep
//! their old snapshot (and its epoch) to the end, so each batch is
//! internally consistent; the next batch routes over the new topology
//! and every cached path from before the change misses on epoch.
//!
//! **Simulated dispatch.** Real proxies don't just *compute* paths —
//! they synchronously push the session's data along them. With
//! [`EngineConfig::dispatch_us_per_delay`] > 0 each worker holds a
//! request for `path length × that factor` microseconds after routing
//! it, modeling transmission time proportional to the overlay delay of
//! the chosen path. Worker threads overlap these holds the way an
//! I/O-bound server overlaps in-flight responses, which is what makes
//! thread count matter even on a single core. Set it to 0 to benchmark
//! pure route computation.

use crate::cache::{CacheStats, LookupOutcome, RouteCache, RouteKey};
use crate::report::{LatencySummary, ServeReport};
use crate::snapshot::{EngineSnapshot, RouterProvider};
use son_overlay::{DelayModel, ServiceRequest};
use son_routing::{trace_hops, RouteError, ServicePath};
use son_telemetry::{CacheOutcome, Histogram, LocalHistogram, RouteTrace};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads per batch (min 1).
    pub workers: usize,
    /// Lock partitions in the route cache.
    pub cache_shards: usize,
    /// Total route-cache entries before FIFO eviction.
    pub cache_capacity: usize,
    /// Microseconds a worker holds a served request per unit of path
    /// delay, modeling synchronous data dispatch along the path.
    /// 0 disables the hold and measures pure route computation.
    pub dispatch_us_per_delay: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 1,
            cache_shards: 16,
            cache_capacity: 65_536,
            dispatch_us_per_delay: 0.0,
        }
    }
}

/// What one [`Engine::serve`] call produced: the answers, in request
/// order, plus the batch metrics.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// One result per request, same order as the input batch.
    pub paths: Vec<Result<ServicePath, RouteError>>,
    /// Batch metrics.
    pub report: ServeReport,
}

/// What a worker hands back for one request: its batch index, the
/// routing answer, and the observed service latency in microseconds.
type WorkerItem = (usize, Result<ServicePath, RouteError>, f64);

/// The multi-threaded request-serving runtime. See the module docs.
#[derive(Debug)]
pub struct Engine<D, P> {
    provider: P,
    config: EngineConfig,
    snapshot: Mutex<Arc<EngineSnapshot<D>>>,
    cache: RouteCache,
    epoch: AtomicU64,
}

impl<D, P> Engine<D, P>
where
    D: DelayModel + Send + Sync,
    P: RouterProvider<D>,
{
    /// Creates an engine serving `snapshot` (installed as epoch 0)
    /// through routers built by `provider`.
    pub fn new(mut snapshot: EngineSnapshot<D>, provider: P, config: EngineConfig) -> Self {
        snapshot.stamp(0);
        Engine {
            provider,
            config,
            snapshot: Mutex::new(Arc::new(snapshot)),
            cache: RouteCache::new(config.cache_shards, config.cache_capacity),
            epoch: AtomicU64::new(0),
        }
    }

    /// The current epoch (bumped by every snapshot install).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// The snapshot new batches will serve from.
    pub fn snapshot(&self) -> Arc<EngineSnapshot<D>> {
        Arc::clone(&self.snapshot.lock().expect("snapshot lock poisoned"))
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Lifetime cache counters (per-batch deltas are in each
    /// [`ServeReport`]).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Publishes a rebuilt overlay view under the next epoch and
    /// returns that epoch. Call after membership churn or a state
    /// protocol round; cached paths from earlier epochs are dropped
    /// lazily on their next lookup.
    pub fn install_snapshot(&self, mut snapshot: EngineSnapshot<D>) -> u64 {
        let mut slot = self.snapshot.lock().expect("snapshot lock poisoned");
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        snapshot.stamp(epoch);
        *slot = Arc::new(snapshot);
        epoch
    }

    /// Serves a batch of requests and reports what happened. Paths come
    /// back in request order and are independent of the worker count.
    pub fn serve(&self, requests: &[ServiceRequest]) -> ServeOutcome {
        let _span = son_telemetry::span!("engine.serve");
        let snapshot = self.snapshot();
        let snap: &EngineSnapshot<D> = &snapshot;
        let epoch = snap.epoch();
        let workers = self.config.workers.max(1);

        let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); workers];
        for (i, request) in requests.iter().enumerate() {
            assigned[snap.ingress(request).index() % workers].push(i);
        }

        // Per-worker registry handles are fetched once per batch so the
        // per-request hot path stays lock-free; when telemetry is off
        // the whole block reduces to `None`s.
        let telemetry_on = son_telemetry::enabled();
        let worker_hists: Vec<Option<Histogram>> = if telemetry_on {
            let registry = son_telemetry::global();
            (0..workers)
                .map(|w| {
                    let worker = w.to_string();
                    registry
                        .gauge_with("engine.queue_depth", &[("worker", &worker)])
                        .set(assigned[w].len() as f64);
                    Some(registry.histogram_with("engine.serve_us", &[("worker", &worker)]))
                })
                .collect()
        } else {
            vec![None; workers]
        };

        let stats_before = self.cache.stats();
        let started = Instant::now();
        let produced: Vec<Vec<WorkerItem>> = thread::scope(|scope| {
            let handles: Vec<_> = assigned
                .iter()
                .zip(&worker_hists)
                .map(|(indices, hist)| {
                    scope.spawn(move || {
                        self.run_worker(snap, epoch, requests, indices, hist.as_ref())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("engine worker panicked"))
                .collect()
        });
        let elapsed = started.elapsed().as_secs_f64();

        // Merge back into request order; tally errors, latencies, and
        // border-proxy load.
        let mut paths: Vec<Option<Result<ServicePath, RouteError>>> = vec![None; requests.len()];
        let batch_latency = Histogram::new();
        let mut border_load = vec![0u64; snap.proxy_count()];
        let mut errors = 0;
        for (i, result, latency_us) in produced.into_iter().flatten() {
            batch_latency.record(latency_us);
            match &result {
                Ok(path) => {
                    for hop in path.hops() {
                        if snap.is_border(hop.proxy) {
                            border_load[hop.proxy.index()] += 1;
                        }
                    }
                }
                Err(_) => errors += 1,
            }
            paths[i] = Some(result);
        }

        let report = ServeReport {
            router: self.provider.name(),
            workers,
            epoch,
            requests: requests.len(),
            errors,
            elapsed_secs: elapsed,
            requests_per_sec: if elapsed > 0.0 {
                requests.len() as f64 / elapsed
            } else {
                0.0
            },
            latency: LatencySummary::from_histogram(&batch_latency),
            cache: self.cache.stats().since(&stats_before),
            border_load,
        };
        if telemetry_on {
            let registry = son_telemetry::global();
            registry.counter("engine.cache.hits").add(report.cache.hits);
            registry
                .counter("engine.cache.misses")
                .add(report.cache.misses);
            registry
                .counter("engine.cache.stale_drops")
                .add(report.cache.stale_drops);
            registry
                .counter("engine.cache.insertions")
                .add(report.cache.insertions);
            registry
                .counter("engine.cache.evictions")
                .add(report.cache.evictions);
            registry
                .counter("engine.requests")
                .add(requests.len() as u64);
            registry.counter("engine.errors").add(errors as u64);
        }
        ServeOutcome {
            paths: paths
                .into_iter()
                .map(|p| p.expect("every request is assigned to exactly one worker"))
                .collect(),
            report,
        }
    }

    /// One worker's batch share: build a router, then answer each
    /// assigned request cache-first.
    fn run_worker(
        &self,
        snap: &EngineSnapshot<D>,
        epoch: u64,
        requests: &[ServiceRequest],
        indices: &[usize],
        latency_hist: Option<&Histogram>,
    ) -> Vec<WorkerItem> {
        let router = self.provider.router(snap);
        // Latencies accumulate in a plain local histogram and fold into
        // the shared per-worker one once per batch, so the per-request
        // cost of instrumentation is three plain writes, not atomics.
        let mut local_latency = latency_hist.map(|_| LocalHistogram::new());
        let mut out = Vec::with_capacity(indices.len());
        for &i in indices {
            let request = &requests[i];
            let begun = Instant::now();
            let key = RouteKey::encode(snap.ingress(request), request);
            let result = match self.cache.lookup(&key, epoch) {
                Some(path) => Ok(path),
                None => match router.route_path(request) {
                    Ok(path) => {
                        self.cache.insert(key, epoch, path.clone());
                        Ok(path)
                    }
                    Err(err) => Err(err),
                },
            };
            if self.config.dispatch_us_per_delay > 0.0 {
                if let Ok(path) = &result {
                    let hold = path.length(snap.delays()) * self.config.dispatch_us_per_delay;
                    thread::sleep(Duration::from_micros(hold as u64));
                }
            }
            let latency_us = begun.elapsed().as_secs_f64() * 1e6;
            if let Some(local) = local_latency.as_mut() {
                local.record(latency_us);
            }
            out.push((i, result, latency_us));
        }
        if let (Some(local), Some(hist)) = (local_latency.as_mut(), latency_hist) {
            local.flush_into(hist);
        }
        out
    }

    /// Routes one request through the full serving path — cache lookup,
    /// router, cache fill — and returns its provenance record alongside
    /// the answer. The cache is consulted and populated exactly as in
    /// [`Engine::serve`], so tracing the same request twice shows a miss
    /// followed by a hit.
    pub fn trace_request(
        &self,
        request: &ServiceRequest,
    ) -> (Result<ServicePath, RouteError>, RouteTrace) {
        let snapshot = self.snapshot();
        let snap: &EngineSnapshot<D> = &snapshot;
        let epoch = snap.epoch();
        let key = RouteKey::encode(snap.ingress(request), request);
        let started = Instant::now();
        let (cached, outcome) = self.cache.lookup_explain(&key, epoch);
        match cached {
            Some(path) => {
                let mut trace = son_routing::request_trace(self.provider.name(), request);
                trace.epoch = Some(epoch);
                trace.cache = Some(CacheOutcome::Hit);
                trace.hops = trace_hops(&path);
                trace.cost = Some(path.length(snap.delays()));
                trace.elapsed_us = started.elapsed().as_secs_f64() * 1e6;
                (Ok(path), trace)
            }
            None => {
                let router = self.provider.traced_router(snap);
                let (result, mut trace) = router.route_with_trace(request);
                trace.epoch = Some(epoch);
                trace.cache = Some(match outcome {
                    LookupOutcome::StaleDrop => CacheOutcome::StaleDrop,
                    _ => CacheOutcome::Miss,
                });
                if let Ok(path) = &result {
                    if trace.cost.is_none() {
                        trace.cost = Some(path.length(snap.delays()));
                    }
                    self.cache.insert(key, epoch, path.clone());
                }
                trace.elapsed_us = started.elapsed().as_secs_f64() * 1e6;
                (result, trace)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::HierProvider;
    use son_clustering::Clustering;
    use son_overlay::{DelayMatrix, HfcTopology, ProxyId, ServiceGraph, ServiceId, ServiceSet};

    fn line_snapshot(n: usize, clusters: usize) -> EngineSnapshot<DelayMatrix> {
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                values[i * n + j] = (i as f64 - j as f64).abs();
            }
        }
        let delays = DelayMatrix::from_values(n, values);
        let labels: Vec<usize> = (0..n).map(|i| i * clusters / n).collect();
        let hfc = HfcTopology::build(&Clustering::from_labels(&labels), &delays);
        let services = (0..n)
            .map(|i| ServiceSet::from_iter([ServiceId::new(i % 4)]))
            .collect();
        EngineSnapshot::new(hfc, services, delays)
    }

    fn requests(n: usize, count: usize) -> Vec<ServiceRequest> {
        (0..count)
            .map(|k| {
                ServiceRequest::new(
                    ProxyId::new(k % n),
                    ServiceGraph::linear(vec![ServiceId::new(k % 4), ServiceId::new((k + 1) % 4)]),
                    ProxyId::new((k * 7 + 3) % n),
                )
            })
            .collect()
    }

    fn engine(workers: usize) -> Engine<DelayMatrix, HierProvider> {
        Engine::new(
            line_snapshot(12, 3),
            HierProvider::default(),
            EngineConfig {
                workers,
                ..EngineConfig::default()
            },
        )
    }

    #[test]
    fn serves_valid_paths_in_request_order() {
        let eng = engine(2);
        let batch = requests(12, 40);
        let outcome = eng.serve(&batch);
        assert_eq!(outcome.paths.len(), batch.len());
        assert_eq!(outcome.report.errors, 0);
        assert_eq!(outcome.report.requests, 40);
        let snap = eng.snapshot();
        for (request, path) in batch.iter().zip(&outcome.paths) {
            let path = path.as_ref().expect("routable");
            path.validate(request, |p, s| snap.services()[p.index()].contains(s))
                .unwrap();
        }
    }

    #[test]
    fn worker_count_does_not_change_answers() {
        let batch = requests(12, 60);
        let single = engine(1).serve(&batch);
        for workers in [2, 3, 4, 7] {
            let multi = engine(workers).serve(&batch);
            assert_eq!(multi.paths, single.paths, "{workers} workers");
            assert_eq!(multi.report.workers, workers);
        }
    }

    #[test]
    fn repeated_batch_hits_the_cache() {
        let eng = engine(2);
        // 12 requests over 12 proxies: all distinct (the generator
        // repeats with period 12), so the cold pass has no self-hits.
        let batch = requests(12, 12);
        let cold = eng.serve(&batch);
        assert_eq!(cold.report.cache.hits, 0);
        let warm = eng.serve(&batch);
        assert_eq!(warm.report.cache.misses, 0);
        assert_eq!(warm.report.cache.hits as usize, batch.len());
        assert_eq!(warm.paths, cold.paths);
    }

    #[test]
    fn install_snapshot_bumps_epoch_and_invalidates() {
        let eng = engine(2);
        let batch = requests(12, 12); // distinct, see above
        eng.serve(&batch);
        assert_eq!(eng.install_snapshot(line_snapshot(12, 3)), 1);
        assert_eq!(eng.epoch(), 1);
        let after = eng.serve(&batch);
        assert_eq!(after.report.epoch, 1);
        // Every cached path was stamped with epoch 0: all miss.
        assert_eq!(after.report.cache.hits, 0);
        assert_eq!(after.report.cache.stale_drops as usize, batch.len());
    }

    #[test]
    fn border_load_counts_only_borders() {
        let eng = engine(1);
        let outcome = eng.serve(&requests(12, 50));
        let snap = eng.snapshot();
        assert_eq!(outcome.report.border_load.len(), 12);
        for (i, &load) in outcome.report.border_load.iter().enumerate() {
            if !snap.is_border(ProxyId::new(i)) {
                assert_eq!(load, 0, "proxy {i} is not a border");
            }
        }
        // Cross-cluster requests exist, so some border carried load.
        assert!(outcome.report.busiest_borders().iter().any(|&(_, l)| l > 0));
    }

    #[test]
    fn trace_request_shows_miss_then_hit() {
        let eng = engine(1);
        let batch = requests(12, 1);
        let (first, miss_trace) = eng.trace_request(&batch[0]);
        let first = first.unwrap();
        assert_eq!(miss_trace.cache, Some(CacheOutcome::Miss));
        assert_eq!(miss_trace.epoch, Some(0));
        assert_eq!(miss_trace.router, "hier");
        assert!(!miss_trace.hops.is_empty());
        assert!(miss_trace.cost.is_some());

        let (second, hit_trace) = eng.trace_request(&batch[0]);
        assert_eq!(second.unwrap(), first);
        assert_eq!(hit_trace.cache, Some(CacheOutcome::Hit));
        assert_eq!(hit_trace.cost, miss_trace.cost);

        // Epoch bump turns the cached entry into a stale drop.
        eng.install_snapshot(line_snapshot(12, 3));
        let (_, stale_trace) = eng.trace_request(&batch[0]);
        assert_eq!(stale_trace.cache, Some(CacheOutcome::StaleDrop));
        assert_eq!(stale_trace.epoch, Some(1));
    }

    #[test]
    fn serve_folds_cache_counters_into_the_registry() {
        let registry = son_telemetry::global();
        let hits_before = registry.counter("engine.cache.hits").get();
        let misses_before = registry.counter("engine.cache.misses").get();
        let eng = engine(2);
        let batch = requests(12, 12); // all distinct
        let cold = eng.serve(&batch);
        let warm = eng.serve(&batch);
        // Registry counters are global and only grow; other tests may
        // add more, so assert at-least the two batches' deltas.
        assert!(
            registry.counter("engine.cache.hits").get() >= hits_before + warm.report.cache.hits
        );
        assert!(
            registry.counter("engine.cache.misses").get()
                >= misses_before + cold.report.cache.misses
        );
        // Per-worker latency histograms exist and saw this batch.
        let h0 = registry.histogram_with("engine.serve_us", &[("worker", "0")]);
        assert!(h0.count() > 0);
    }

    #[test]
    fn dispatch_hold_slows_single_worker() {
        let snapshot = line_snapshot(12, 3);
        let batch = requests(12, 8);
        let config = EngineConfig {
            workers: 1,
            dispatch_us_per_delay: 2_000.0,
            ..EngineConfig::default()
        };
        let eng = Engine::new(snapshot, HierProvider::default(), config);
        let outcome = eng.serve(&batch);
        // Every request holds ≥ 0; cross-proxy paths hold ≥ 2ms each.
        assert!(outcome.report.elapsed_secs > 0.002);
        assert_eq!(outcome.report.errors, 0);
    }
}
