//! Serving metrics: throughput, latency percentiles, cache behavior,
//! and per-border-proxy load.

use crate::cache::CacheStats;
use son_overlay::ProxyId;

/// Admission/degradation accounting for one batch.
///
/// `optimal + degraded + rejected` always equals the batch size, and
/// `rejected` equals the sum of its three reason counters — every
/// request is disposed of exactly once, never silently dropped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Served on the first attempt through healthy, unsaturated
    /// proxies.
    pub optimal: u64,
    /// Served after a retry/re-route or across a `Draining` proxy.
    pub degraded: u64,
    /// Shed (all reasons).
    pub rejected: u64,
    /// Shed: ingress cluster had no `Up` proxy.
    pub rejected_no_ingress: u64,
    /// Shed: out of capacity on every viable path.
    pub rejected_overloaded: u64,
    /// Shed: no feasible healthy path.
    pub rejected_unroutable: u64,
    /// Re-route attempts across the batch.
    pub retries: u64,
    /// Cache hits dropped because live health forbade a hop
    /// (epoch-independent invalidation).
    pub health_drops: u64,
}

impl AdmissionStats {
    /// Requests served (either class).
    pub fn served(&self) -> u64 {
        self.optimal + self.degraded
    }

    /// `optimal + degraded + rejected` — must equal the batch size.
    pub fn total(&self) -> u64 {
        self.optimal + self.degraded + self.rejected
    }
}

/// Request-latency summary in microseconds.
///
/// Batch summaries come from the telemetry histogram (see
/// [`LatencySummary::from_histogram`]): percentiles are log-bucketed,
/// so each may read up to one bucket width — `2^(1/8) − 1 ≈ 9.05%` —
/// above the exact sorted-sample value, while `max_us` is exact and
/// `p50 ≤ p90 ≤ p99 ≤ max` always holds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Median.
    pub p50_us: f64,
    /// 90th percentile.
    pub p90_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Arithmetic mean.
    pub mean_us: f64,
    /// Worst observed.
    pub max_us: f64,
}

impl LatencySummary {
    /// Summarizes a batch of per-request latencies (microseconds).
    /// Percentiles use nearest-rank on the sorted sample; an empty
    /// batch summarizes to all zeros.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = |q: f64| sorted[((q * (sorted.len() - 1) as f64).round()) as usize];
        LatencySummary {
            p50_us: rank(0.50),
            p90_us: rank(0.90),
            p99_us: rank(0.99),
            mean_us: sorted.iter().sum::<f64>() / sorted.len() as f64,
            max_us: sorted[sorted.len() - 1],
        }
    }

    /// Summarizes a telemetry histogram — the engine's batch path.
    ///
    /// Unlike [`LatencySummary::from_samples`] (exact, needs the full
    /// sample vector), this reads the log-bucketed histogram workers
    /// already filled, with the bucket error bound documented on the
    /// type: percentiles overestimate by at most `2^(1/8) − 1 ≈ 9.05%`
    /// ([`son_telemetry::RELATIVE_ERROR_BOUND`]); mean and max are
    /// exact.
    pub fn from_histogram(hist: &son_telemetry::Histogram) -> Self {
        // One coherent capture: count, quantiles, and max all derive
        // from the same bucket view, so a summary read while another
        // thread flushes a batch can never report p50 > p99.
        LatencySummary::from_snapshot(&hist.snapshot())
    }

    /// Summarizes an already-captured histogram snapshot — used for
    /// windowed (delta) summaries, where no live histogram exists.
    pub fn from_snapshot(snap: &son_telemetry::HistogramSnapshot) -> Self {
        LatencySummary {
            p50_us: snap.p50,
            p90_us: snap.p90,
            p99_us: snap.p99,
            mean_us: if snap.count == 0 {
                0.0
            } else {
                snap.sum / snap.count as f64
            },
            max_us: snap.max,
        }
    }
}

/// Where one worker's wall-clock went while serving its batch share.
/// All figures are microseconds summed over the worker's requests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerStats {
    /// Worker index within the batch.
    pub worker: usize,
    /// Requests this worker served (its shard of the batch).
    pub requests: u64,
    /// Total time the worker spent in its serving loop, including the
    /// post-loop revalidation pass.
    pub busy_us: f64,
    /// Wall time between this worker finishing and the whole batch
    /// finishing — the cost of shard imbalance.
    pub idle_us: f64,
    /// Sum over requests of the wait between batch start and service
    /// start (queueing delay behind earlier requests on this worker).
    pub queue_us: f64,
    /// Route computation: CSP solves, frontier replays, fallback
    /// re-routes. Zero when telemetry is disabled.
    pub route_us: f64,
    /// Admission and health validation. Zero when telemetry is
    /// disabled.
    pub admit_us: f64,
    /// Cache lookups and negative-cache probes. Zero when telemetry is
    /// disabled.
    pub cache_us: f64,
    /// Simulated dispatch holds (the overlappable part of serving).
    pub dispatch_us: f64,
}

/// Batch-wide totals of the per-worker stage attribution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageBreakdown {
    /// Σ busy over workers.
    pub busy_us: f64,
    /// Σ idle over workers.
    pub idle_us: f64,
    /// Σ queue wait over requests.
    pub queue_us: f64,
    /// Σ route computation.
    pub route_us: f64,
    /// Σ admission/health validation.
    pub admit_us: f64,
    /// Σ cache work.
    pub cache_us: f64,
    /// Σ dispatch holds.
    pub dispatch_us: f64,
    /// Busiest worker's busy time over the mean worker busy time
    /// (1.0 = perfectly balanced shards).
    pub imbalance: f64,
}

/// Everything the engine measured while serving one batch.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The provider's router name ("flat", "hier", "multilevel").
    pub router: &'static str,
    /// Worker threads used.
    pub workers: usize,
    /// Epoch of the snapshot the batch was served under.
    pub epoch: u64,
    /// Requests in the batch.
    pub requests: usize,
    /// Requests that failed to route.
    pub errors: usize,
    /// Wall-clock time for the whole batch, seconds.
    pub elapsed_secs: f64,
    /// `requests / elapsed_secs`.
    pub requests_per_sec: f64,
    /// Per-request service latency.
    pub latency: LatencySummary,
    /// Cache counters for this batch only (deltas, not lifetime).
    pub cache: CacheStats,
    /// How many served paths crossed each border proxy, indexed by
    /// proxy. Non-border proxies always read zero.
    pub border_load: Vec<u64>,
    /// Admission/degradation accounting (all zeros when the batch ran
    /// unconstrained).
    pub admission: AdmissionStats,
    /// Admitted requests per proxy (empty unless admission control ran;
    /// each entry is ≤ the proxy's capacity by construction).
    pub admitted_load: Vec<u64>,
    /// Per-worker time attribution, one entry per worker. `route_us` /
    /// `admit_us` / `cache_us` are populated only while telemetry is
    /// enabled; the wall-clock fields are always measured.
    pub worker_stats: Vec<WorkerStats>,
}

impl ServeReport {
    /// Sums the per-worker stage attribution across the batch.
    pub fn stage_breakdown(&self) -> StageBreakdown {
        let mut total = StageBreakdown::default();
        let mut max_busy = 0.0f64;
        for w in &self.worker_stats {
            total.busy_us += w.busy_us;
            total.idle_us += w.idle_us;
            total.queue_us += w.queue_us;
            total.route_us += w.route_us;
            total.admit_us += w.admit_us;
            total.cache_us += w.cache_us;
            total.dispatch_us += w.dispatch_us;
            max_busy = max_busy.max(w.busy_us);
        }
        let mean_busy = if self.worker_stats.is_empty() {
            0.0
        } else {
            total.busy_us / self.worker_stats.len() as f64
        };
        total.imbalance = if mean_busy > 0.0 {
            max_busy / mean_busy
        } else {
            1.0
        };
        total
    }

    /// Border proxies ranked by load, busiest first (zero-load borders
    /// are omitted).
    pub fn busiest_borders(&self) -> Vec<(ProxyId, u64)> {
        let mut ranked: Vec<(ProxyId, u64)> = self
            .border_load
            .iter()
            .enumerate()
            .filter(|(_, &load)| load > 0)
            .map(|(i, &load)| (ProxyId::new(i), load))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.index().cmp(&b.0.index())));
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_on_known_samples() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let summary = LatencySummary::from_samples(&samples);
        assert_eq!(summary.p50_us, 51.0);
        assert_eq!(summary.p90_us, 90.0);
        assert_eq!(summary.p99_us, 99.0);
        assert_eq!(summary.max_us, 100.0);
        assert!((summary.mean_us - 50.5).abs() < 1e-9);
    }

    #[test]
    fn latency_summary_of_nothing_is_zero() {
        assert_eq!(LatencySummary::from_samples(&[]), LatencySummary::default());
    }

    #[test]
    fn histogram_percentiles_are_ordered_and_bounded() {
        let hist = son_telemetry::Histogram::new();
        // Heavy-tailed sample: mostly fast, occasional slow requests.
        let samples: Vec<f64> = (1..=500)
            .map(|i| {
                if i % 50 == 0 {
                    i as f64 * 37.0
                } else {
                    i as f64
                }
            })
            .collect();
        for &s in &samples {
            hist.record(s);
        }
        let summary = LatencySummary::from_histogram(&hist);
        assert!(
            summary.p50_us <= summary.p90_us
                && summary.p90_us <= summary.p99_us
                && summary.p99_us <= summary.max_us,
            "percentiles out of order: {summary:?}"
        );
        // Against exact nearest-rank values: within one bucket width.
        let exact = LatencySummary::from_samples(&samples);
        for (bucketed, exact) in [
            (summary.p50_us, exact.p50_us),
            (summary.p90_us, exact.p90_us),
            (summary.p99_us, exact.p99_us),
        ] {
            assert!(
                bucketed >= exact - 1e-9,
                "bucketed {bucketed} < exact {exact}"
            );
            assert!(
                bucketed <= exact * (1.0 + son_telemetry::RELATIVE_ERROR_BOUND) + 1.0,
                "bucketed {bucketed} too far above exact {exact}"
            );
        }
        assert_eq!(summary.max_us, exact.max_us);
        assert!((summary.mean_us - exact.mean_us).abs() < 1e-6 * exact.mean_us);
    }

    #[test]
    fn busiest_borders_ranks_and_filters() {
        let report = ServeReport {
            router: "hier",
            workers: 1,
            epoch: 0,
            requests: 0,
            errors: 0,
            elapsed_secs: 0.0,
            requests_per_sec: 0.0,
            latency: LatencySummary::default(),
            cache: CacheStats::default(),
            border_load: vec![0, 5, 0, 9, 5],
            admission: AdmissionStats::default(),
            admitted_load: Vec::new(),
            worker_stats: Vec::new(),
        };
        assert_eq!(
            report.busiest_borders(),
            vec![
                (ProxyId::new(3), 9),
                (ProxyId::new(1), 5),
                (ProxyId::new(4), 5),
            ]
        );
    }
}
