//! Serving metrics: throughput, latency percentiles, cache behavior,
//! and per-border-proxy load.

use crate::cache::CacheStats;
use son_overlay::ProxyId;

/// Request-latency summary in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Median.
    pub p50_us: f64,
    /// 90th percentile.
    pub p90_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Arithmetic mean.
    pub mean_us: f64,
    /// Worst observed.
    pub max_us: f64,
}

impl LatencySummary {
    /// Summarizes a batch of per-request latencies (microseconds).
    /// Percentiles use nearest-rank on the sorted sample; an empty
    /// batch summarizes to all zeros.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = |q: f64| sorted[((q * (sorted.len() - 1) as f64).round()) as usize];
        LatencySummary {
            p50_us: rank(0.50),
            p90_us: rank(0.90),
            p99_us: rank(0.99),
            mean_us: sorted.iter().sum::<f64>() / sorted.len() as f64,
            max_us: sorted[sorted.len() - 1],
        }
    }
}

/// Everything the engine measured while serving one batch.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The provider's router name ("flat", "hier", "multilevel").
    pub router: &'static str,
    /// Worker threads used.
    pub workers: usize,
    /// Epoch of the snapshot the batch was served under.
    pub epoch: u64,
    /// Requests in the batch.
    pub requests: usize,
    /// Requests that failed to route.
    pub errors: usize,
    /// Wall-clock time for the whole batch, seconds.
    pub elapsed_secs: f64,
    /// `requests / elapsed_secs`.
    pub requests_per_sec: f64,
    /// Per-request service latency.
    pub latency: LatencySummary,
    /// Cache counters for this batch only (deltas, not lifetime).
    pub cache: CacheStats,
    /// How many served paths crossed each border proxy, indexed by
    /// proxy. Non-border proxies always read zero.
    pub border_load: Vec<u64>,
}

impl ServeReport {
    /// Border proxies ranked by load, busiest first (zero-load borders
    /// are omitted).
    pub fn busiest_borders(&self) -> Vec<(ProxyId, u64)> {
        let mut ranked: Vec<(ProxyId, u64)> = self
            .border_load
            .iter()
            .enumerate()
            .filter(|(_, &load)| load > 0)
            .map(|(i, &load)| (ProxyId::new(i), load))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.index().cmp(&b.0.index())));
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_on_known_samples() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let summary = LatencySummary::from_samples(&samples);
        assert_eq!(summary.p50_us, 51.0);
        assert_eq!(summary.p90_us, 90.0);
        assert_eq!(summary.p99_us, 99.0);
        assert_eq!(summary.max_us, 100.0);
        assert!((summary.mean_us - 50.5).abs() < 1e-9);
    }

    #[test]
    fn latency_summary_of_nothing_is_zero() {
        assert_eq!(LatencySummary::from_samples(&[]), LatencySummary::default());
    }

    #[test]
    fn busiest_borders_ranks_and_filters() {
        let report = ServeReport {
            router: "hier",
            workers: 1,
            epoch: 0,
            requests: 0,
            errors: 0,
            elapsed_secs: 0.0,
            requests_per_sec: 0.0,
            latency: LatencySummary::default(),
            cache: CacheStats::default(),
            border_load: vec![0, 5, 0, 9, 5],
        };
        assert_eq!(
            report.busiest_borders(),
            vec![
                (ProxyId::new(3), 9),
                (ProxyId::new(1), 5),
                (ProxyId::new(4), 5),
            ]
        );
    }
}
