//! Negative-cache behavior through the full engine: deterministic
//! unroutable verdicts are remembered and fast-rejected, and both
//! invalidation axes work — an epoch bump (new snapshot) and a health
//! recovery (live `set_health`) each force a fresh solve, so no key
//! can stay poisoned.

use son_clustering::Clustering;
use son_engine::{Engine, EngineConfig, EngineSnapshot, HierProvider};
use son_overlay::{
    DelayMatrix, Health, HfcTopology, ProxyId, ServiceGraph, ServiceId, ServiceRequest, ServiceSet,
};

const PROXIES: usize = 12;
const CLUSTERS: usize = 3;

/// A line-delay world where proxy `i` offers service `i % 4` — and
/// proxy 0 additionally is the *only* provider of service 9.
fn snapshot() -> EngineSnapshot<DelayMatrix> {
    let mut values = vec![0.0; PROXIES * PROXIES];
    for i in 0..PROXIES {
        for j in 0..PROXIES {
            values[i * PROXIES + j] = (i as f64 - j as f64).abs();
        }
    }
    let delays = DelayMatrix::from_values(PROXIES, values);
    let labels: Vec<usize> = (0..PROXIES).map(|i| i * CLUSTERS / PROXIES).collect();
    let hfc = HfcTopology::build(&Clustering::from_labels(&labels), &delays);
    let services = (0..PROXIES)
        .map(|i| {
            if i == 0 {
                ServiceSet::from_iter([ServiceId::new(0), ServiceId::new(9)])
            } else {
                ServiceSet::from_iter([ServiceId::new(i % 4)])
            }
        })
        .collect();
    EngineSnapshot::new(hfc, services, delays)
}

fn request(src: usize, dst: usize, chain: &[usize]) -> ServiceRequest {
    ServiceRequest::new(
        ProxyId::new(src),
        ServiceGraph::linear(chain.iter().map(|&s| ServiceId::new(s)).collect()),
        ProxyId::new(dst),
    )
}

#[test]
fn unroutable_requests_fast_reject_on_repeat() {
    let engine = Engine::new(snapshot(), HierProvider::default(), EngineConfig::default());
    // Service 17 exists nowhere: deterministically unroutable.
    let batch = vec![request(1, 10, &[17])];

    let first = engine.serve(&batch);
    assert!(first.paths[0].is_err());
    assert_eq!(
        first.report.cache.negative_hits, 0,
        "first failure is computed"
    );

    let second = engine.serve(&batch);
    assert!(second.paths[0].is_err());
    assert_eq!(
        second.report.cache.negative_hits, 1,
        "repeat failure is cached"
    );
    assert_eq!(
        second.paths[0], first.paths[0],
        "the cached verdict is the computed one"
    );
}

#[test]
fn epoch_bump_invalidates_negative_entries() {
    let engine = Engine::new(snapshot(), HierProvider::default(), EngineConfig::default());
    let batch = vec![request(2, 11, &[17])];
    engine.serve(&batch);
    assert_eq!(engine.serve(&batch).report.cache.negative_hits, 1);

    engine.install_snapshot(snapshot());
    let fresh = engine.serve(&batch);
    assert!(fresh.paths[0].is_err());
    assert_eq!(
        fresh.report.cache.negative_hits, 0,
        "a new epoch re-runs the solve instead of trusting the old verdict"
    );
    // And the recomputed verdict is cached again under the new epoch.
    assert_eq!(engine.serve(&batch).report.cache.negative_hits, 1);
}

#[test]
fn health_recovery_unpoisons_negative_entries() {
    let engine = Engine::new(snapshot(), HierProvider::default(), EngineConfig::default());
    // Service 9 is offered only by proxy 0; the request is routable
    // exactly while proxy 0 is alive.
    let batch = vec![request(3, 11, &[9])];
    assert!(engine.serve(&batch).paths[0].is_ok(), "routable while up");

    engine.set_health(ProxyId::new(0), Health::Down);
    let blocked = engine.serve(&batch);
    assert!(blocked.paths[0].is_err(), "sole provider down: unroutable");
    let repeat = engine.serve(&batch);
    assert!(repeat.paths[0].is_err());
    assert_eq!(
        repeat.report.cache.negative_hits, 1,
        "the unroutable verdict is served from the negative cache"
    );

    // Recovery bumps the health generation: the poisoned key must be
    // re-solved, not fast-rejected forever.
    engine.set_health(ProxyId::new(0), Health::Up);
    let recovered = engine.serve(&batch);
    assert_eq!(recovered.report.cache.negative_hits, 0);
    assert!(
        recovered.paths[0].is_ok(),
        "route must come back once the blocking proxy recovers: {:?}",
        recovered.paths[0]
    );
    assert!(recovered.paths[0]
        .as_ref()
        .unwrap()
        .hops()
        .iter()
        .any(|h| h.proxy.index() == 0));
}

#[test]
fn overloaded_outcomes_are_never_negative_cached() {
    // With admission enabled the final error can depend on the batch's
    // token state, so nothing is inserted: the same request must be
    // recomputed (negative_hits stays 0), and succeed again once
    // capacity frees up in the next batch.
    let mut config = EngineConfig::default();
    config.admission.enabled = true;
    let engine = Engine::new(snapshot(), HierProvider::default(), config);
    let batch = vec![request(1, 10, &[17])];
    engine.serve(&batch);
    let repeat = engine.serve(&batch);
    assert!(repeat.paths[0].is_err());
    assert_eq!(repeat.report.cache.negative_hits, 0);
}
