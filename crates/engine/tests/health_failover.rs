//! Regression: a cached route through a proxy that turns `Down` *live*
//! (between snapshot installs) must never be served. Epoch invalidation
//! alone cannot catch this — the cache entry is from the current epoch
//! — so hits are re-validated against the live health view and dropped
//! when any hop is forbidden.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use son_clustering::Clustering;
use son_engine::{
    AdmissionConfig, Disposition, Engine, EngineConfig, EngineSnapshot, HierProvider, RejectReason,
};
use son_overlay::{
    DelayMatrix, Health, HfcTopology, ProxyId, ServiceGraph, ServiceId, ServiceRequest, ServiceSet,
};
use son_routing::RouteError;
use son_telemetry::CacheOutcome;

const PROXIES: usize = 24;
const CLUSTERS: usize = 4;
const SERVICES: usize = 6;

/// Random symmetric delays, four equal clusters, proxy `i` carrying
/// service `i mod 6` — every service has four providers, one per
/// cluster.
fn snapshot(seed: u64) -> EngineSnapshot<DelayMatrix> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut values = vec![0.0; PROXIES * PROXIES];
    for i in 0..PROXIES {
        for j in (i + 1)..PROXIES {
            let d = rng.gen_range(1.0..50.0);
            values[i * PROXIES + j] = d;
            values[j * PROXIES + i] = d;
        }
    }
    let delays = DelayMatrix::from_values(PROXIES, values);
    let labels: Vec<usize> = (0..PROXIES).map(|i| i * CLUSTERS / PROXIES).collect();
    let hfc = HfcTopology::build(&Clustering::from_labels(&labels), &delays);
    let services: Vec<ServiceSet> = (0..PROXIES)
        .map(|i| ServiceSet::from_iter([ServiceId::new(i % SERVICES)]))
        .collect();
    EngineSnapshot::new(hfc, services, delays)
}

fn batch(seed: u64, count: usize) -> Vec<ServiceRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let chain: Vec<ServiceId> = (0..rng.gen_range(1..4))
                .map(|_| ServiceId::new(rng.gen_range(0..SERVICES)))
                .collect();
            ServiceRequest::new(
                ProxyId::new(rng.gen_range(0..PROXIES)),
                ServiceGraph::linear(chain),
                ProxyId::new(rng.gen_range(0..PROXIES)),
            )
        })
        .collect()
}

fn engine() -> Engine<DelayMatrix, HierProvider> {
    Engine::new(
        snapshot(17),
        HierProvider::default(),
        EngineConfig {
            workers: 3,
            admission: AdmissionConfig {
                enabled: true,
                ..AdmissionConfig::default()
            },
            ..EngineConfig::default()
        },
    )
}

/// The proxies any served path of `outcome` traverses.
fn served_proxies(outcome: &son_engine::ServeOutcome) -> Vec<ProxyId> {
    outcome
        .paths
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .flat_map(|p| p.hops().iter())
        .map(|h| h.proxy)
        .collect()
}

#[test]
fn cached_route_through_live_down_proxy_is_never_served() {
    let eng = engine();
    let requests = batch(23, 80);

    // Warm the cache and pick a victim that serves traffic but is
    // nobody's endpoint, so every affected request can re-route.
    let cold = eng.serve(&requests);
    let victim = requests
        .iter()
        .zip(&cold.paths)
        .filter_map(|(r, p)| p.as_ref().ok().map(|p| (r, p)))
        .find_map(|(r, p)| {
            p.hops()
                .iter()
                .find(|h| h.service.is_some() && h.proxy != r.source && h.proxy != r.destination)
                .map(|h| h.proxy)
        })
        .expect("some path has an interior provider hop");
    let warm = eng.serve(&requests);
    assert!(warm.report.cache.hits > 0);

    // The victim dies live — same epoch, no snapshot install.
    eng.set_health(victim, Health::Down);
    assert_eq!(eng.live_health(victim), Some(Health::Down));
    assert_eq!(eng.epoch(), 0, "no epoch bump involved");

    let after = eng.serve(&requests);
    assert!(
        !served_proxies(&after).contains(&victim),
        "a served path traverses the live-Down {victim}"
    );
    let a = after.report.admission;
    assert!(
        a.health_drops > 0,
        "cached routes through the victim must be dropped on hit: {a:?}"
    );
    assert_eq!(a.total(), requests.len() as u64);
    // Re-routed requests are served (victim was nobody's endpoint and
    // every service keeps three providers), just not optimally.
    assert!(a.degraded > 0, "{a:?}");
    // Dispositions and paths agree item by item.
    for (d, p) in after.dispositions.iter().zip(&after.paths) {
        assert_eq!(d.is_served(), p.is_ok());
    }
}

#[test]
fn trace_reports_health_invalidated_hit_as_stale_drop() {
    let eng = engine();
    let request = ServiceRequest::new(
        ProxyId::new(0),
        ServiceGraph::linear(vec![ServiceId::new(1)]),
        ProxyId::new(20),
    );
    let (first, miss) = eng.trace_request(&request);
    let first = first.expect("routable");
    assert_eq!(miss.cache, Some(CacheOutcome::Miss));
    let (_, hit) = eng.trace_request(&request);
    assert_eq!(hit.cache, Some(CacheOutcome::Hit));

    // Kill a provider hop of the cached path: the next trace must not
    // serve the entry — it reports a stale drop and re-routes.
    let victim = first
        .hops()
        .iter()
        .find(|h| h.service.is_some())
        .map(|h| h.proxy)
        .expect("path has a provider hop");
    eng.set_health(victim, Health::Down);
    let (rerouted, dropped) = eng.trace_request(&request);
    assert_eq!(dropped.cache, Some(CacheOutcome::StaleDrop));
    if let Ok(path) = rerouted {
        assert!(
            path.hops().iter().all(|h| h.proxy != victim),
            "re-route still uses the Down {victim}"
        );
    }
}

#[test]
fn fully_down_cluster_sheds_with_no_ingress() {
    let eng = engine();
    // Cluster 0 is proxies 0..6; everything in it dies.
    for i in 0..6 {
        eng.set_health(ProxyId::new(i), Health::Down);
    }
    let requests = batch(29, 40);
    let outcome = eng.serve(&requests);
    for (request, (disposition, path)) in requests
        .iter()
        .zip(outcome.dispositions.iter().zip(&outcome.paths))
    {
        if request.source.index() < 6 {
            assert_eq!(
                *disposition,
                Disposition::Rejected(RejectReason::NoIngress),
                "{request:?}"
            );
            assert!(matches!(path, Err(RouteError::NoIngress)));
        }
    }
    assert!(outcome.report.admission.rejected_no_ingress > 0);
    assert!(served_proxies(&outcome).iter().all(|p| p.index() >= 6));
}
