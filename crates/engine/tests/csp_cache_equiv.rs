//! Property test: the CSP frontier tier is a pure speedup.
//!
//! A batch of requests that share a cluster-level shape (ingress
//! cluster, destination cluster, service chain) but differ in exact
//! endpoints is served three ways — through the CSP-enabled engine
//! (where all but the first request per frontier key replay a cached
//! frontier), through an engine with the tier disabled, and by direct
//! uncached router solves. All three must agree **bit for bit**: same
//! hops, same cost, not merely "equally good".

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use son_clustering::Clustering;
use son_engine::{Engine, EngineConfig, EngineSnapshot, HierProvider, RouterProvider};
use son_overlay::{
    DelayMatrix, HfcTopology, ProxyId, ServiceGraph, ServiceId, ServiceRequest, ServiceSet,
};

const PROXIES: usize = 24;
const CLUSTERS: usize = 4;
const SERVICES: usize = 6;

fn snapshot(seed: u64) -> EngineSnapshot<DelayMatrix> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut values = vec![0.0; PROXIES * PROXIES];
    for i in 0..PROXIES {
        for j in (i + 1)..PROXIES {
            let d = rng.gen_range(1.0..50.0);
            values[i * PROXIES + j] = d;
            values[j * PROXIES + i] = d;
        }
    }
    let delays = DelayMatrix::from_values(PROXIES, values);
    let labels: Vec<usize> = (0..PROXIES).map(|i| i * CLUSTERS / PROXIES).collect();
    let hfc = HfcTopology::build(&Clustering::from_labels(&labels), &delays);
    let services = (0..PROXIES)
        .map(|i| ServiceSet::from_iter([ServiceId::new(i % SERVICES)]))
        .collect();
    EngineSnapshot::new(hfc, services, delays)
}

/// Every cross-cluster (source, destination) pair between two cluster
/// member ranges, all carrying the same chain — one shape, many exact
/// keys.
fn shape_batch(
    sources: std::ops::Range<usize>,
    dests: std::ops::Range<usize>,
    chain: &[usize],
) -> Vec<ServiceRequest> {
    let mut batch = Vec::new();
    for s in sources {
        for d in dests.clone() {
            batch.push(ServiceRequest::new(
                ProxyId::new(s),
                ServiceGraph::linear(chain.iter().map(|&k| ServiceId::new(k)).collect()),
                ProxyId::new(d),
            ));
        }
    }
    batch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn csp_tier_routes_are_bit_identical_to_uncached_solves(
        seed in 0u64..500,
        chain in proptest::collection::vec(0usize..SERVICES, 1..4),
    ) {
        // Cluster 0 is proxies 0..6, cluster 3 is proxies 18..24.
        let batch = shape_batch(0..6, 18..24, &chain);

        let with_csp = Engine::new(snapshot(seed), HierProvider::default(), EngineConfig::default());
        let without = Engine::new(
            snapshot(seed),
            HierProvider::default(),
            EngineConfig { csp_cache: false, ..EngineConfig::default() },
        );
        let a = with_csp.serve(&batch);
        let b = without.serve(&batch);

        // The tier actually engaged: 36 distinct exact keys collapse
        // onto at most 7 frontier keys (one per border source plus the
        // shared unknown-source class), so most solves replay.
        prop_assert!(a.report.cache.csp_hits > 0, "no frontier reuse happened");
        prop_assert_eq!(a.report.cache.hits, 0, "exact keys are all distinct");

        // Bit-identical to the tier-less engine...
        prop_assert_eq!(&a.paths, &b.paths);

        // ...and to direct, cache-free router solves: same hops, same
        // cost, request by request.
        let snap = snapshot(seed);
        let provider = HierProvider::default();
        let router = provider.router(&snap);
        for (request, served) in batch.iter().zip(&a.paths) {
            let direct = router.route_path(request);
            prop_assert_eq!(served, &direct);
            if let (Ok(served), Ok(direct)) = (served.as_ref(), direct.as_ref()) {
                let cost_a = served.length(snap.delays());
                let cost_b = direct.length(snap.delays());
                prop_assert!(cost_a == cost_b, "cost deviated: {} vs {}", cost_a, cost_b);
            }
        }
    }

    #[test]
    fn csp_tier_is_invisible_on_repeated_batches(
        seed in 0u64..500,
        chain in proptest::collection::vec(0usize..SERVICES, 1..4),
    ) {
        // Exact-key hits still shadow the CSP tier: a repeated batch
        // must hit tier 1 and never re-enter the frontier path.
        let batch = shape_batch(0..6, 12..18, &chain);
        let engine = Engine::new(snapshot(seed), HierProvider::default(), EngineConfig::default());
        let cold = engine.serve(&batch);
        let warm = engine.serve(&batch);
        prop_assert_eq!(warm.report.cache.hits as usize, batch.len());
        prop_assert_eq!(warm.report.cache.csp_hits, 0);
        prop_assert_eq!(warm.report.cache.csp_misses, 0);
        prop_assert_eq!(&warm.paths, &cold.paths);
    }
}
