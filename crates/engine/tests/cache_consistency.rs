//! Property test: a cache hit answers exactly what the miss that
//! filled it computed — and what a cache-cold engine would compute.
//!
//! Each case draws a random request over a randomized overlay, serves
//! it twice through one engine (miss, then hit) and once through a
//! fresh engine (miss again), and requires all three paths identical.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use son_clustering::Clustering;
use son_engine::{Engine, EngineConfig, EngineSnapshot, FlatProvider, HierProvider};
use son_overlay::{
    DelayMatrix, Health, HfcTopology, ProxyId, ServiceGraph, ServiceId, ServiceRequest, ServiceSet,
};

const PROXIES: usize = 24;
const CLUSTERS: usize = 4;
const SERVICES: usize = 6;

/// A symmetric random delay matrix over `PROXIES` nodes.
fn snapshot(seed: u64) -> EngineSnapshot<DelayMatrix> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut values = vec![0.0; PROXIES * PROXIES];
    for i in 0..PROXIES {
        for j in (i + 1)..PROXIES {
            let d = rng.gen_range(1.0..50.0);
            values[i * PROXIES + j] = d;
            values[j * PROXIES + i] = d;
        }
    }
    let delays = DelayMatrix::from_values(PROXIES, values);
    let labels: Vec<usize> = (0..PROXIES).map(|i| i * CLUSTERS / PROXIES).collect();
    let hfc = HfcTopology::build(&Clustering::from_labels(&labels), &delays);
    // Every service exists somewhere: proxy i carries service i mod 6.
    let services = (0..PROXIES)
        .map(|i| ServiceSet::from_iter([ServiceId::new(i % SERVICES)]))
        .collect();
    EngineSnapshot::new(hfc, services, delays)
}

fn request(src: usize, dst: usize, chain: &[usize]) -> ServiceRequest {
    ServiceRequest::new(
        ProxyId::new(src),
        ServiceGraph::linear(chain.iter().map(|&s| ServiceId::new(s)).collect()),
        ProxyId::new(dst),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cache_hits_and_misses_return_equal_paths(
        seed in 0u64..1_000,
        src in 0usize..PROXIES,
        dst in 0usize..PROXIES,
        chain in proptest::collection::vec(0usize..SERVICES, 1..4),
    ) {
        let request = request(src, dst, &chain);
        let warm = Engine::new(snapshot(seed), HierProvider::default(), EngineConfig::default());

        let miss = warm.serve(std::slice::from_ref(&request));
        prop_assert_eq!(miss.report.cache.hits, 0);
        let hit = warm.serve(std::slice::from_ref(&request));
        prop_assert_eq!(hit.report.cache.hits, 1);
        prop_assert_eq!(hit.report.cache.misses, 0);
        prop_assert_eq!(&hit.paths[0], &miss.paths[0]);

        // A cache-cold engine over the same snapshot agrees too.
        let cold = Engine::new(snapshot(seed), HierProvider::default(), EngineConfig::default());
        prop_assert_eq!(&cold.serve(std::slice::from_ref(&request)).paths[0], &miss.paths[0]);
    }

    #[test]
    fn flat_router_cache_agrees_as_well(
        seed in 0u64..1_000,
        src in 0usize..PROXIES,
        dst in 0usize..PROXIES,
        chain in proptest::collection::vec(0usize..SERVICES, 1..4),
    ) {
        let request = request(src, dst, &chain);
        let engine = Engine::new(snapshot(seed), FlatProvider, EngineConfig::default());
        let miss = engine.serve(std::slice::from_ref(&request));
        let hit = engine.serve(std::slice::from_ref(&request));
        prop_assert_eq!(hit.report.cache.hits, 1);
        prop_assert_eq!(&hit.paths[0], &miss.paths[0]);
    }

    /// Stale-while-revalidate never serves a route through a `Down`
    /// proxy: warm the cache, install the next epoch, kill one proxy
    /// live, and serve the same batch with a stale budget large enough
    /// to cover all of it. Every stale-served path must have been
    /// validated against the *current* health view first.
    #[test]
    fn swr_never_serves_a_route_through_a_down_proxy(
        seed in 0u64..500,
        victim in 0usize..PROXIES,
        chain in proptest::collection::vec(0usize..SERVICES, 1..4),
    ) {
        let engine = Engine::new(
            snapshot(seed),
            HierProvider::default(),
            EngineConfig { stale_serve_budget: 64, ..EngineConfig::default() },
        );
        let batch: Vec<ServiceRequest> = (0..16)
            .map(|k| request(k % PROXIES, (k * 5 + 7) % PROXIES, &chain))
            .collect();
        engine.serve(&batch);
        engine.install_snapshot(snapshot(seed));
        engine.set_health(ProxyId::new(victim), Health::Down);
        let churned = engine.serve(&batch);
        for path in churned.paths.iter().flatten() {
            prop_assert!(
                path.hops().iter().all(|h| h.proxy.index() != victim),
                "served a route through the Down proxy {}",
                victim
            );
        }
    }
}

/// The stale-serve budget bounds total stale serves even while
/// installs and health flips race the serving threads: each of the
/// `installs + 1` budget windows can hand out at most `BUDGET` stale
/// routes, whatever the interleaving.
#[test]
fn stale_budget_is_respected_under_concurrent_churn() {
    const BUDGET: u64 = 5;
    const INSTALLS: u64 = 4;
    let engine = Engine::new(
        snapshot(42),
        HierProvider::default(),
        EngineConfig {
            workers: 2,
            stale_serve_budget: BUDGET,
            ..EngineConfig::default()
        },
    );
    let batch: Vec<ServiceRequest> = (0..40)
        .map(|k| {
            request(
                k % PROXIES,
                (k * 7 + 3) % PROXIES,
                &[k % SERVICES, (k + 2) % SERVICES],
            )
        })
        .collect();
    engine.serve(&batch);

    std::thread::scope(|scope| {
        let eng = &engine;
        scope.spawn(move || {
            for i in 0..INSTALLS {
                eng.install_snapshot(snapshot(42));
                eng.set_health(ProxyId::new((i as usize * 3) % PROXIES), Health::Draining);
                std::thread::yield_now();
            }
        });
        for _ in 0..6 {
            eng.serve(&batch);
        }
    });

    let stale_served = engine.cache_stats().stale_served;
    assert!(
        stale_served <= BUDGET * (INSTALLS + 1),
        "{stale_served} stale serves exceed {INSTALLS} installs x budget {BUDGET}"
    );
}
