//! After a faulty protocol run leaves a proxy dead, installing a
//! snapshot without it must (a) bump the epoch so every cached route
//! from the old world is dropped on lookup, and (b) never again serve
//! a route that assigns a service to the dead proxy.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use son_clustering::Clustering;
use son_engine::{Engine, EngineConfig, EngineSnapshot, HierProvider};
use son_overlay::{
    DelayMatrix, HfcTopology, ProxyId, ServiceGraph, ServiceId, ServiceRequest, ServiceSet,
    StatusMap,
};
use son_routing::CostConfig;

const PROXIES: usize = 24;
const CLUSTERS: usize = 4;
const SERVICES: usize = 6;

/// Same world as `cache_consistency`: random symmetric delays, four
/// equal clusters, proxy `i` carrying service `i mod 6` — so every
/// service keeps three providers after one proxy dies. A dead proxy is
/// expressed the one supported way: `Health::Down` in the snapshot's
/// status map.
fn snapshot(seed: u64, down: Option<ProxyId>) -> EngineSnapshot<DelayMatrix> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut values = vec![0.0; PROXIES * PROXIES];
    for i in 0..PROXIES {
        for j in (i + 1)..PROXIES {
            let d = rng.gen_range(1.0..50.0);
            values[i * PROXIES + j] = d;
            values[j * PROXIES + i] = d;
        }
    }
    let delays = DelayMatrix::from_values(PROXIES, values);
    let labels: Vec<usize> = (0..PROXIES).map(|i| i * CLUSTERS / PROXIES).collect();
    let hfc = HfcTopology::build(&Clustering::from_labels(&labels), &delays);
    let services: Vec<ServiceSet> = (0..PROXIES)
        .map(|i| ServiceSet::from_iter([ServiceId::new(i % SERVICES)]))
        .collect();
    let snap = EngineSnapshot::new(hfc, services, delays);
    match down {
        Some(p) => snap.with_statuses(StatusMap::from_down(PROXIES, &[p]), CostConfig::default()),
        None => snap,
    }
}

/// A batch covering every (source, chain-head) pair often enough that
/// some route assigns a service to most proxies.
fn batch(seed: u64) -> Vec<ServiceRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..60)
        .map(|_| {
            let chain: Vec<ServiceId> = (0..rng.gen_range(1..4))
                .map(|_| ServiceId::new(rng.gen_range(0..SERVICES)))
                .collect();
            ServiceRequest::new(
                ProxyId::new(rng.gen_range(0..PROXIES)),
                ServiceGraph::linear(chain),
                ProxyId::new(rng.gen_range(0..PROXIES)),
            )
        })
        .collect()
}

fn serving_proxies(outcome: &son_engine::ServeOutcome) -> Vec<ProxyId> {
    outcome
        .paths
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .flat_map(|p| p.hops())
        .filter(|h| h.service.is_some())
        .map(|h| h.proxy)
        .collect()
}

#[test]
fn crashed_proxy_snapshot_evicts_cache_and_reroutes_around_it() {
    let engine = Engine::new(
        snapshot(7, None),
        HierProvider::default(),
        EngineConfig::default(),
    );
    let requests = batch(11);

    // Warm the cache on the healthy world and pick a victim that
    // actually serves traffic.
    let healthy = engine.serve(&requests);
    let victim = *serving_proxies(&healthy)
        .first()
        .expect("some route must assign a service");

    // The warm pass answers from the cache.
    let warm = engine.serve(&requests);
    assert!(warm.report.cache.hits > 0);
    assert_eq!(warm.report.cache.stale_drops, 0);

    // The victim crashes; the post-fault snapshot drops its services.
    let old_epoch = engine.snapshot().epoch();
    let new_epoch = engine.install_snapshot(snapshot(7, Some(victim)));
    assert!(new_epoch > old_epoch, "install must bump the epoch");

    // Every cached route is from the old epoch: the first pass after
    // the install may only miss (stale entries are dropped on lookup,
    // never served).
    let after = engine.serve(&requests);
    assert_eq!(after.report.cache.hits, 0);
    assert!(
        after.report.cache.stale_drops > 0,
        "{:?}",
        after.report.cache
    );
    assert!(
        !serving_proxies(&after).contains(&victim),
        "a route still assigns a service to the crashed {victim}"
    );

    // Routes stay feasible against the degraded service table...
    let snap = engine.snapshot();
    for (request, result) in requests.iter().zip(&after.paths) {
        if let Ok(path) = result {
            path.validate(request, |p, s| snap.services()[p.index()].contains(s))
                .expect("rerouted path must be feasible");
        }
    }
    // ...and the cache refills: a second pass hits again, still never
    // naming the victim.
    let refilled = engine.serve(&requests);
    assert!(refilled.report.cache.hits > 0);
    assert!(!serving_proxies(&refilled).contains(&victim));
}

#[test]
fn reinstalling_the_healthy_snapshot_also_invalidates() {
    // Epoch invalidation is not about content: even restoring the
    // identical world must not serve entries cached under an old epoch.
    let engine = Engine::new(
        snapshot(3, None),
        HierProvider::default(),
        EngineConfig::default(),
    );
    let requests = batch(5);
    let first = engine.serve(&requests);
    engine.install_snapshot(snapshot(3, None));
    let second = engine.serve(&requests);
    assert_eq!(second.report.cache.hits, 0);
    assert!(second.report.cache.stale_drops > 0);
    // Same world, same routes.
    assert_eq!(first.paths, second.paths);
}
