//! Distributed request resolution — Section 5 as an actual message
//! exchange.
//!
//! [`HierarchicalRouter::route`] computes paths centrally for speed;
//! this module runs the same divide-and-conquer as the *protocol* the
//! paper describes (Figure 5), on the deterministic event simulator:
//!
//! 1. the client's request travels from the source proxy to the
//!    destination proxy `pd`;
//! 2. `pd` computes the CSP locally and ships each child request to its
//!    solver proxy (the cluster's exit border);
//! 3. every solver answers with its optimal child service path;
//! 4. `pd` composes the answers once the last one arrives.
//!
//! The outcome reports the *resolution latency* (simulated time from
//! request issue to composition) and the control messages spent —
//! numbers the centralized shortcut cannot give.

use crate::flat::RouteError;
use crate::hier::{HierRoute, HierarchicalRouter, RoutePlan};
use crate::sdag::Assignment;
use son_netsim::graph::NodeId;
use son_netsim::sim::{Actor, Ctx, Simulator};
use son_netsim::SimTime;
use son_overlay::{DelayModel, ProxyId, ServiceRequest};

/// Messages of the resolution protocol.
#[derive(Debug, Clone)]
enum SessionMsg {
    /// The original request travelling from the source proxy to `pd`.
    Issue,
    /// A child request (by index into the plan) shipped to its solver.
    Child { index: usize },
    /// A solved child path returning to `pd`.
    Answer {
        index: usize,
        assignments: Vec<Assignment>,
    },
}

/// Per-proxy behaviour during one session. Every actor can see the
/// (immutable) router state and plan — standing in for the converged
/// distributed tables each proxy holds; only `pd` keeps mutable
/// coordination state, and only the source proxy issues.
struct SessionActor<'s, D> {
    router: &'s HierarchicalRouter<'s, D>,
    plan: &'s RoutePlan,
    /// `Some(pd)` on the source proxy: issue the request at start.
    issue_to: Option<ProxyId>,
    /// Set on the destination proxy only.
    coordination: Option<Coordination>,
}

struct Coordination {
    answers: Vec<Option<Vec<Assignment>>>,
    completed_at: Option<SimTime>,
    infeasible: bool,
}

impl Coordination {
    fn record(&mut self, index: usize, assignments: Vec<Assignment>, now: SimTime) {
        self.answers[index] = Some(assignments);
        if self.answers.iter().all(Option::is_some) {
            self.completed_at = Some(now);
        }
    }
}

impl<D: DelayModel> Actor for SessionActor<'_, D> {
    type Msg = SessionMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, SessionMsg>) {
        if let Some(pd) = self.issue_to {
            ctx.send(NodeId::new(pd.index()), SessionMsg::Issue);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, SessionMsg>, from: NodeId, msg: SessionMsg) {
        match msg {
            SessionMsg::Issue => {
                let me = ctx.me();
                let now = ctx.now();
                // A relay-only request has no children: composition
                // happens the moment the request arrives.
                if self.plan.children.is_empty() {
                    self.coordination
                        .as_mut()
                        .expect("Issue is addressed to the destination proxy")
                        .completed_at = Some(now);
                }
                // pd distributes child requests; children assigned to
                // pd itself are solved in place.
                for (index, spec) in self.plan.children.iter().enumerate() {
                    if spec.solver.index() == me.index() {
                        let solved = self.router.solve_child(spec);
                        let coordination = self
                            .coordination
                            .as_mut()
                            .expect("Issue is addressed to the destination proxy");
                        match solved {
                            Some(assignments) => coordination.record(index, assignments, now),
                            None => coordination.infeasible = true,
                        }
                    } else {
                        ctx.send(
                            NodeId::new(spec.solver.index()),
                            SessionMsg::Child { index },
                        );
                    }
                }
            }
            SessionMsg::Child { index } => {
                // A solver resolves the child within its own cluster and
                // replies; an unsolvable child returns an empty answer
                // which pd flags as infeasible.
                let assignments = self
                    .router
                    .solve_child(&self.plan.children[index])
                    .unwrap_or_default();
                ctx.send(from, SessionMsg::Answer { index, assignments });
            }
            SessionMsg::Answer { index, assignments } => {
                let now = ctx.now();
                let coordination = self
                    .coordination
                    .as_mut()
                    .expect("answers return to the destination proxy");
                if assignments.is_empty() && !self.plan.children[index].services.is_empty() {
                    coordination.infeasible = true;
                } else {
                    coordination.record(index, assignments, now);
                }
            }
        }
    }
}

/// The outcome of a simulated resolution session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// The composed route — identical to what
    /// [`HierarchicalRouter::route`] returns for the same request.
    pub route: HierRoute,
    /// Simulated time from the source issuing the request until the
    /// destination proxy has composed the final path (includes the
    /// source → pd issue hop).
    pub resolution_latency: SimTime,
    /// Control messages delivered (issue + child requests + answers).
    pub messages: u64,
}

/// Simulates the Section 5 resolution protocol for `request`.
///
/// `delays` provides the control-message latencies between proxies —
/// pass the *true* delay model to measure realistic control-plane
/// latency; the router keeps using its own (predicted) distances for
/// routing decisions.
///
/// # Errors
///
/// The same routing errors as [`HierarchicalRouter::route`].
pub fn resolve_distributed<D, M>(
    router: &HierarchicalRouter<'_, D>,
    request: &ServiceRequest,
    delays: &M,
) -> Result<SessionReport, RouteError>
where
    D: DelayModel,
    M: DelayModel,
{
    let plan = router.plan(request)?;
    let n = router.proxy_count();
    let child_count = plan.children.len();

    let mut actors: Vec<SessionActor<'_, D>> = (0..n)
        .map(|_| SessionActor {
            router,
            plan: &plan,
            issue_to: None,
            coordination: None,
        })
        .collect();
    actors[request.destination.index()].coordination = Some(Coordination {
        answers: vec![None; child_count],
        completed_at: None,
        infeasible: false,
    });
    actors[request.source.index()].issue_to = Some(request.destination);

    let mut sim = Simulator::new(actors, |a: NodeId, b: NodeId| {
        SimTime::from_ms(delays.delay(ProxyId::new(a.index()), ProxyId::new(b.index())))
    });
    let stats = sim.run_until_quiescent(SimTime::from_micros(u64::MAX / 4));

    let coordination = sim.actors()[request.destination.index()]
        .coordination
        .as_ref()
        .expect("pd keeps its coordination state");
    if coordination.infeasible {
        return Err(RouteError::Infeasible);
    }
    let completed_at = coordination
        .completed_at
        .expect("quiescence implies every answer arrived");
    let answers: Vec<Vec<Assignment>> = coordination
        .answers
        .iter()
        .map(|a| a.clone().expect("all answers recorded"))
        .collect();
    drop(sim);
    let route = router.compose(request, plan, &answers);
    Ok(SessionReport {
        route,
        resolution_latency: completed_at,
        messages: stats.messages_delivered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_example;
    use crate::hier::HierConfig;
    use son_overlay::{ServiceGraph, ServiceId};

    fn sid(i: usize) -> ServiceId {
        ServiceId::new(i)
    }

    #[test]
    fn distributed_resolution_matches_centralized_route() {
        let (hfc, delays, services) = paper_example();
        let router =
            HierarchicalRouter::from_services(&hfc, &services, &delays, HierConfig::default());
        let request = ServiceRequest::new(
            ProxyId::new(2),
            ServiceGraph::linear((1..=5).map(sid).collect()),
            ProxyId::new(9),
        );
        let central = router.route(&request).unwrap();
        let session = resolve_distributed(&router, &request, &delays).unwrap();
        assert_eq!(session.route.path, central.path);
        assert_eq!(session.route.csp, central.csp);
    }

    #[test]
    fn latency_accounts_for_issue_and_child_round_trips() {
        let (hfc, delays, services) = paper_example();
        let router =
            HierarchicalRouter::from_services(&hfc, &services, &delays, HierConfig::default());
        let request = ServiceRequest::new(
            ProxyId::new(2), // C0.2
            ServiceGraph::linear((1..=5).map(sid).collect()),
            ProxyId::new(9), // C2.1 = pd
        );
        let session = resolve_distributed(&router, &request, &delays).unwrap();
        // Children: C0 solved by C0.1, C1 by C1.2, C2 by pd itself.
        // Latency = issue (C0.2→C2.1) + max over remote children of the
        // round trip pd→solver→pd.
        use son_overlay::DelayModel as _;
        let issue = delays.delay(ProxyId::new(2), ProxyId::new(9));
        let rtt_c01 = 2.0 * delays.delay(ProxyId::new(9), ProxyId::new(1));
        let rtt_c12 = 2.0 * delays.delay(ProxyId::new(9), ProxyId::new(6));
        let expected = issue + rtt_c01.max(rtt_c12);
        assert!(
            (session.resolution_latency.as_ms() - expected).abs() < 1e-6,
            "latency {} vs expected {expected}",
            session.resolution_latency.as_ms()
        );
        // Messages: 1 issue + 2 child requests + 2 answers.
        assert_eq!(session.messages, 5);
    }

    #[test]
    fn intra_cluster_request_needs_only_the_issue_hop() {
        let (hfc, delays, services) = paper_example();
        let router =
            HierarchicalRouter::from_services(&hfc, &services, &delays, HierConfig::default());
        // S2 → S3 fully inside C1, destination solves everything.
        let request = ServiceRequest::new(
            ProxyId::new(7),
            ServiceGraph::linear(vec![sid(2), sid(3)]),
            ProxyId::new(6),
        );
        let session = resolve_distributed(&router, &request, &delays).unwrap();
        assert_eq!(session.messages, 1, "only the issue message");
        use son_overlay::DelayModel as _;
        let issue = delays.delay(ProxyId::new(7), ProxyId::new(6));
        assert!((session.resolution_latency.as_ms() - issue).abs() < 1e-6);
    }

    #[test]
    fn errors_propagate_like_the_centralized_router() {
        let (hfc, delays, services) = paper_example();
        let router =
            HierarchicalRouter::from_services(&hfc, &services, &delays, HierConfig::default());
        let request = ServiceRequest::new(
            ProxyId::new(2),
            ServiceGraph::linear(vec![sid(42)]),
            ProxyId::new(9),
        );
        assert_eq!(
            resolve_distributed(&router, &request, &delays),
            Err(RouteError::NoProvider(sid(42)))
        );
    }
}

#[cfg(test)]
mod relay_tests {
    use super::*;
    use crate::fixtures::paper_example;
    use crate::hier::HierConfig;
    use son_overlay::ServiceGraph;

    #[test]
    fn relay_only_session_completes_on_issue() {
        let (hfc, delays, services) = paper_example();
        let router =
            HierarchicalRouter::from_services(&hfc, &services, &delays, HierConfig::default());
        let request = ServiceRequest::new(
            ProxyId::new(2),
            ServiceGraph::linear(vec![]),
            ProxyId::new(12),
        );
        let session = resolve_distributed(&router, &request, &delays).unwrap();
        assert_eq!(session.messages, 1);
        assert_eq!(session.route.path, router.route(&request).unwrap().path);
        use son_overlay::DelayModel as _;
        let issue = delays.delay(ProxyId::new(2), ProxyId::new(12));
        assert!((session.resolution_latency.as_ms() - issue).abs() < 1e-6);
    }
}
