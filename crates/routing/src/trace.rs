//! Route provenance: [`TraceRouter`] and the [`Traced`] wrapper.
//!
//! [`TraceRouter`] extends [`Router`] with a variant that also returns
//! a [`RouteTrace`] — the telemetry record explaining which decisions
//! produced the path. The hierarchical router fills the whole record
//! (CSP dissection, per-cluster child answers, border glue); other
//! routers report the basics (path, cost, timing). [`Traced`] wraps any
//! `TraceRouter` and accumulates traces behind the plain [`Router`]
//! interface, so generic call sites (the engine's workers, benches) can
//! collect provenance without changing type signatures.

use std::sync::Mutex;
use std::time::Instant;

use crate::flat::{FlatRouter, RouteError};
use crate::hier::HierarchicalRouter;
use crate::path::ServicePath;
use crate::providers::ProviderLookup;
use crate::router::Router;
use son_overlay::{DelayModel, ServiceRequest};
use son_telemetry::{BorderHop, ChildTrace, CspStage, RouteTrace, TraceHop};

/// A router that can explain itself: routes a request and returns the
/// provenance record alongside the answer.
pub trait TraceRouter: Router {
    /// Routes `request` and reports how the answer came to be.
    ///
    /// The `Result` matches [`Router::route_path`] exactly; the trace is
    /// returned even on failure (with `outcome` set to the error).
    fn route_with_trace(
        &self,
        request: &ServiceRequest,
    ) -> (Result<ServicePath, RouteError>, RouteTrace);
}

/// Converts a concrete path into telemetry hops.
pub fn trace_hops(path: &ServicePath) -> Vec<TraceHop> {
    path.hops()
        .iter()
        .map(|hop| TraceHop {
            proxy: hop.proxy.index(),
            service: hop.service.map(|s| s.index()),
        })
        .collect()
}

/// Starts a trace pre-filled with the request's endpoints and services.
pub fn request_trace(router: &str, request: &ServiceRequest) -> RouteTrace {
    let mut trace = RouteTrace::new(router);
    trace.source = request.source.index();
    trace.destination = request.destination.index();
    trace.services = request
        .graph
        .stage_ids()
        .map(|s| request.graph.service(s).index())
        .collect();
    trace
}

impl<P, D> TraceRouter for FlatRouter<P, D>
where
    P: ProviderLookup,
    D: DelayModel,
{
    fn route_with_trace(
        &self,
        request: &ServiceRequest,
    ) -> (Result<ServicePath, RouteError>, RouteTrace) {
        let start = Instant::now();
        let mut trace = request_trace("flat", request);
        let result = self.route(request);
        trace.elapsed_us = start.elapsed().as_secs_f64() * 1e6;
        match &result {
            Ok(path) => {
                trace.hops = trace_hops(path);
                trace.cost = Some(path.length(self.delays()));
            }
            Err(err) => trace.outcome = err.to_string(),
        }
        (result, trace)
    }
}

impl<D> TraceRouter for HierarchicalRouter<'_, D>
where
    D: DelayModel,
{
    fn route_with_trace(
        &self,
        request: &ServiceRequest,
    ) -> (Result<ServicePath, RouteError>, RouteTrace) {
        let start = Instant::now();
        let mut trace = request_trace("hier", request);
        let plan = match self.plan(request) {
            Ok(plan) => plan,
            Err(err) => {
                trace.outcome = err.to_string();
                trace.elapsed_us = start.elapsed().as_secs_f64() * 1e6;
                return (Err(err), trace);
            }
        };
        trace.estimate = Some(plan.estimate);
        trace.csp = plan
            .csp
            .iter()
            .map(|&(stage, cluster)| CspStage {
                stage: stage.index(),
                cluster: cluster.index(),
            })
            .collect();
        trace.children = plan
            .children
            .iter()
            .map(|child| ChildTrace {
                cluster: child.cluster.index(),
                solver: child.solver.index(),
                source: child.source.index(),
                dest: child.dest.index(),
                services: child.services.iter().map(|s| s.index()).collect(),
                assigned: Vec::new(),
            })
            .collect();
        trace.border_hops = border_hops_for(self, request, &plan.children);

        let mut answers = Vec::with_capacity(plan.children.len());
        for (i, child) in plan.children.iter().enumerate() {
            match self.solve_child(child) {
                Some(assignments) => {
                    trace.children[i].assigned =
                        assignments.iter().map(|a| a.proxy.index()).collect();
                    answers.push(assignments);
                }
                None => {
                    trace.outcome = format!(
                        "infeasible: cluster C{} could not solve its child request",
                        child.cluster.index()
                    );
                    trace.elapsed_us = start.elapsed().as_secs_f64() * 1e6;
                    return (Err(RouteError::Infeasible), trace);
                }
            }
        }
        let route = self.compose(request, plan, &answers);
        trace.elapsed_us = start.elapsed().as_secs_f64() * 1e6;
        trace.hops = trace_hops(&route.path);
        trace.cost = Some(route.path.length(self.known_delays()));
        (Ok(route.path), trace)
    }
}

/// The border crossings composition stitches into a path built from
/// these children — mirrors [`HierarchicalRouter::compose`]'s glue.
fn border_hops_for<D: DelayModel>(
    router: &HierarchicalRouter<'_, D>,
    request: &ServiceRequest,
    children: &[crate::hier::ChildSpec],
) -> Vec<BorderHop> {
    let hfc = router.hfc();
    let mut hops = Vec::new();
    let mut prev_cluster = hfc.cluster_of(request.source);
    for child in children {
        if child.cluster != prev_cluster {
            let pair = hfc.border(prev_cluster, child.cluster);
            hops.push(BorderHop {
                from_proxy: pair.local.index(),
                to_proxy: pair.remote.index(),
            });
        }
        prev_cluster = child.cluster;
    }
    let dest_cluster = hfc.cluster_of(request.destination);
    if prev_cluster != dest_cluster {
        let pair = hfc.border(prev_cluster, dest_cluster);
        hops.push(BorderHop {
            from_proxy: pair.local.index(),
            to_proxy: pair.remote.index(),
        });
    }
    hops
}

/// Wraps any boxed [`Router`] into a [`TraceRouter`] that reports only
/// the basics: the request, the resulting hops, and timing. Used as the
/// default when a routing strategy has no richer provenance to offer.
pub struct BasicTraced<'a> {
    inner: Box<dyn Router + 'a>,
    name: &'static str,
}

impl<'a> BasicTraced<'a> {
    /// Wraps `inner`, labelling traces with `name`.
    pub fn new(inner: Box<dyn Router + 'a>, name: &'static str) -> BasicTraced<'a> {
        BasicTraced { inner, name }
    }
}

impl Router for BasicTraced<'_> {
    fn route_path(&self, request: &ServiceRequest) -> Result<ServicePath, RouteError> {
        self.inner.route_path(request)
    }
}

impl TraceRouter for BasicTraced<'_> {
    fn route_with_trace(
        &self,
        request: &ServiceRequest,
    ) -> (Result<ServicePath, RouteError>, RouteTrace) {
        let start = Instant::now();
        let mut trace = request_trace(self.name, request);
        let result = self.inner.route_path(request);
        trace.elapsed_us = start.elapsed().as_secs_f64() * 1e6;
        match &result {
            Ok(path) => trace.hops = trace_hops(path),
            Err(err) => trace.outcome = err.to_string(),
        }
        (result, trace)
    }
}

/// A [`Router`] adapter that records the provenance of every request it
/// serves. `route_path` stays the generic entry point; collected traces
/// are drained with [`Traced::take_traces`].
pub struct Traced<R> {
    inner: R,
    traces: Mutex<Vec<RouteTrace>>,
}

impl<R: TraceRouter> Traced<R> {
    /// Wraps `inner`.
    pub fn new(inner: R) -> Traced<R> {
        Traced {
            inner,
            traces: Mutex::new(Vec::new()),
        }
    }

    /// The wrapped router.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// Removes and returns every trace recorded so far, oldest first.
    pub fn take_traces(&self) -> Vec<RouteTrace> {
        std::mem::take(&mut self.traces.lock().unwrap())
    }
}

impl<R: TraceRouter> Router for Traced<R> {
    fn route_path(&self, request: &ServiceRequest) -> Result<ServicePath, RouteError> {
        let (result, trace) = self.inner.route_with_trace(request);
        self.traces.lock().unwrap().push(trace);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_example;
    use crate::hier::HierConfig;
    use crate::providers::ProviderIndex;
    use son_overlay::{ProxyId, ServiceGraph, ServiceId};

    fn paper_request() -> ServiceRequest {
        ServiceRequest::new(
            ProxyId::new(2),
            ServiceGraph::linear((1..=5).map(ServiceId::new).collect()),
            ProxyId::new(9),
        )
    }

    #[test]
    fn hier_trace_records_full_provenance() {
        let (hfc, delays, services) = paper_example();
        let router =
            HierarchicalRouter::from_services(&hfc, &services, &delays, HierConfig::default());
        let request = paper_request();
        let (result, trace) = router.route_with_trace(&request);
        let path = result.unwrap();

        // The traced route equals the plain route.
        assert_eq!(path, router.route(&request).unwrap().path);
        // CSP: S1/C0, S2..S4/C1, S5/C2 — three children.
        let clusters: Vec<usize> = trace.csp.iter().map(|c| c.cluster).collect();
        assert_eq!(clusters, vec![0, 1, 1, 1, 2]);
        assert_eq!(trace.children.len(), 3);
        // Every child's assignment covers its services.
        for child in &trace.children {
            assert_eq!(child.assigned.len(), child.services.len());
        }
        // Two border crossings: C0->C1 and C1->C2.
        assert_eq!(trace.border_hops.len(), 2);
        // Cost matches the true path length; estimate is recorded.
        assert_eq!(trace.cost, Some(path.length(&delays)));
        assert!(trace.estimate.is_some());
        assert_eq!(trace.hops.len(), path.hops().len());
        assert_eq!(trace.outcome, "ok");
    }

    #[test]
    fn failed_route_still_returns_a_trace() {
        let (hfc, delays, services) = paper_example();
        let router =
            HierarchicalRouter::from_services(&hfc, &services, &delays, HierConfig::default());
        let request = ServiceRequest::new(
            ProxyId::new(2),
            ServiceGraph::linear(vec![ServiceId::new(77)]),
            ProxyId::new(9),
        );
        let (result, trace) = router.route_with_trace(&request);
        assert!(result.is_err());
        assert!(trace.outcome.contains("no provider"), "{}", trace.outcome);
        assert!(trace.hops.is_empty());
    }

    #[test]
    fn traced_wrapper_accumulates_traces() {
        let (hfc, delays, services) = paper_example();
        let router =
            HierarchicalRouter::from_services(&hfc, &services, &delays, HierConfig::default());
        let traced = Traced::new(router);
        let request = paper_request();
        traced.route_path(&request).unwrap();
        traced.route_path(&request).unwrap();
        let mut traces = traced.take_traces();
        assert_eq!(traces.len(), 2);
        // Identical provenance modulo wall-clock timing.
        for trace in &mut traces {
            trace.elapsed_us = 0.0;
        }
        assert_eq!(traces[0], traces[1]);
        assert!(traced.take_traces().is_empty());
    }

    #[test]
    fn flat_trace_reports_cost_and_hops() {
        let (_, delays, services) = paper_example();
        let providers = ProviderIndex::from_service_sets(&services);
        let router = FlatRouter::new(&providers, &delays);
        let request = paper_request();
        let (result, trace) = router.route_with_trace(&request);
        let path = result.unwrap();
        assert_eq!(trace.router, "flat");
        assert_eq!(trace.cost, Some(path.length(&delays)));
        assert_eq!(trace.hops.len(), path.hops().len());
        assert!(trace.csp.is_empty());
    }

    #[test]
    fn basic_traced_wraps_any_boxed_router() {
        let (hfc, delays, services) = paper_example();
        let router =
            HierarchicalRouter::from_services(&hfc, &services, &delays, HierConfig::default());
        let boxed: Box<dyn Router + '_> = Box::new(router);
        let basic = BasicTraced::new(boxed, "hier");
        let (result, trace) = basic.route_with_trace(&paper_request());
        assert!(result.is_ok());
        assert_eq!(trace.router, "hier");
        assert!(!trace.hops.is_empty());
        // Basic wrapper has no planner visibility.
        assert!(trace.csp.is_empty() && trace.cost.is_none());
    }
}
