//! # son-routing
//!
//! Service path finding — flat and hierarchical.
//!
//! * [`sdag`] implements the service-DAG method of the paper's
//!   reference \[11\]: the service graph and the candidate providers of
//!   each stage are mapped into a directed acyclic graph whose
//!   source→sink paths are exactly the viable service paths, and a
//!   DAG-shortest-paths pass returns the optimal one.
//! * [`flat`] wraps that into the single-level (global view) router
//!   used by the mesh baseline and by "HFC without aggregation".
//! * [`hier`] implements the paper's Section 5: the destination proxy
//!   computes a **cluster-level service path** (CSP) from aggregate
//!   state — including the back-tracking refinement that accounts for
//!   intra-cluster border-to-border distances — dissects the request
//!   into child requests, solves each inside its cluster with the flat
//!   method, and composes the child paths.
//!
//! # Example
//!
//! ```
//! use son_overlay::{DelayMatrix, ProxyId, ServiceGraph, ServiceId, ServiceRequest, ServiceSet};
//! use son_routing::{FlatRouter, ProviderIndex};
//!
//! // Three proxies on a line; the middle one has the only "transcode".
//! let delays = DelayMatrix::from_values(3, vec![
//!     0.0, 1.0, 2.0,
//!     1.0, 0.0, 1.0,
//!     2.0, 1.0, 0.0,
//! ]);
//! let transcode = ServiceId::new(0);
//! let services = vec![
//!     ServiceSet::new(),
//!     ServiceSet::from_iter([transcode]),
//!     ServiceSet::new(),
//! ];
//! let providers = ProviderIndex::from_service_sets(&services);
//! let router = FlatRouter::new(providers, &delays);
//! let request = ServiceRequest::new(
//!     ProxyId::new(0),
//!     ServiceGraph::linear(vec![transcode]),
//!     ProxyId::new(2),
//! );
//! let path = router.route(&request).unwrap();
//! assert_eq!(path.length(&delays), 2.0);
//! ```

pub mod cost;
pub mod csp;
pub mod fixtures;
pub mod flat;
pub mod hier;
pub mod multilevel;
pub mod path;
mod proptests;
pub mod providers;
pub mod router;
pub mod sdag;
pub mod session;
pub mod trace;

pub use cost::{CostConfig, CostModel, LoadAwareDelays};
pub use csp::{CspCandidate, CspFrontier, CspRouter};
pub use flat::{FlatRouter, RouteError};
pub use hier::{ChildSpec, HierConfig, HierRoute, HierarchicalRouter, RoutePlan};
pub use multilevel::MultiLevelRouter;
pub use path::{PathBuilder, PathHop, ServicePath, ValidatePathError};
pub use providers::{ProviderIndex, ProviderLookup};
pub use router::Router;
pub use sdag::{solve_service_dag, Assignment};
pub use session::{resolve_distributed, SessionReport};
pub use trace::{request_trace, trace_hops, BasicTraced, TraceRouter, Traced};
