//! The service-DAG construction and shortest-path solve of \[11\].
//!
//! Given a service graph, a source proxy, a destination proxy, a
//! provider lookup and a distance model, build (implicitly) the DAG
//! whose nodes are `(stage, provider)` pairs plus a source and a sink,
//! and whose edges follow the service dependencies weighted by
//! proxy-to-proxy distance. Every source→sink path of that DAG is a
//! viable service path; a DAG-shortest-paths pass (dynamic programming
//! in topological stage order) returns the optimal one.

use crate::providers::ProviderLookup;
use son_overlay::{DelayModel, ProxyId, ServiceGraph, StageId};

/// The mapping of one stage onto its chosen provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// The stage of the service graph.
    pub stage: StageId,
    /// The proxy chosen to execute it.
    pub proxy: ProxyId,
}

/// Solves the service-DAG shortest-path problem.
///
/// Returns `(total_distance, assignments)` where `assignments` walks
/// one feasible configuration of `graph` in order, or `None` when no
/// configuration can be fully mapped onto providers.
///
/// The empty service graph yields the direct relay path
/// `(dist(source, destination), [])`.
///
/// # Example
///
/// ```
/// use son_overlay::{DelayMatrix, ProxyId, ServiceGraph, ServiceId, ServiceSet};
/// use son_routing::{solve_service_dag, ProviderIndex};
///
/// let delays = DelayMatrix::from_values(3, vec![
///     0.0, 1.0, 5.0,
///     1.0, 0.0, 1.0,
///     5.0, 1.0, 0.0,
/// ]);
/// let s = ServiceId::new(0);
/// let providers = ProviderIndex::from_service_sets(&[
///     ServiceSet::new(),
///     ServiceSet::from_iter([s]),
///     ServiceSet::from_iter([s]),
/// ]);
/// let graph = ServiceGraph::linear(vec![s]);
/// let (cost, chosen) =
///     solve_service_dag(&graph, ProxyId::new(0), ProxyId::new(2), &providers, &delays)
///         .unwrap();
/// assert_eq!(cost, 2.0); // via proxy 1: 1 + 1 beats via proxy 2: 5 + 0
/// assert_eq!(chosen[0].proxy, ProxyId::new(1));
/// ```
pub fn solve_service_dag<P, D>(
    graph: &ServiceGraph,
    source: ProxyId,
    destination: ProxyId,
    providers: &P,
    delays: &D,
) -> Option<(f64, Vec<Assignment>)>
where
    P: ProviderLookup + ?Sized,
    D: DelayModel + ?Sized,
{
    if graph.is_empty() {
        let direct = delays.delay(source, destination);
        // A non-finite relay cost means an endpoint is unroutable
        // (e.g. a `Down` proxy under a load-aware delay model).
        return direct.is_finite().then_some((direct, Vec::new()));
    }
    let order = graph
        .topological_order()
        .expect("service graphs are validated acyclic at construction");

    // Candidate providers per stage.
    let candidates: Vec<&[ProxyId]> = graph
        .stage_ids()
        .map(|s| providers.providers(graph.service(s)))
        .collect();

    // dist[stage][candidate]: best distance from the DAG source to
    // `(stage, candidate)`; parent tracks (pred stage, pred candidate).
    let mut dist: Vec<Vec<f64>> = candidates
        .iter()
        .map(|c| vec![f64::INFINITY; c.len()])
        .collect();
    let mut parent: Vec<Vec<Option<(usize, usize)>>> =
        candidates.iter().map(|c| vec![None; c.len()]).collect();

    for &stage in &order {
        let si = stage.index();
        let is_sg_source = graph.predecessors(stage).is_empty();
        for (ci, &cand) in candidates[si].iter().enumerate() {
            let mut best = if is_sg_source {
                delays.delay(source, cand)
            } else {
                f64::INFINITY
            };
            let mut best_parent = None;
            for &pred in graph.predecessors(stage) {
                let pi = pred.index();
                for (pci, &pcand) in candidates[pi].iter().enumerate() {
                    let base = dist[pi][pci];
                    if !base.is_finite() {
                        continue;
                    }
                    let via = base + delays.delay(pcand, cand);
                    if via < best {
                        best = via;
                        best_parent = Some((pi, pci));
                    }
                }
            }
            dist[si][ci] = best;
            parent[si][ci] = best_parent;
        }
    }

    // Sink: best over sink stages' candidates plus the final leg.
    let mut best_total = f64::INFINITY;
    let mut best_end: Option<(usize, usize)> = None;
    for sink in graph.sinks() {
        let si = sink.index();
        for (ci, &cand) in candidates[si].iter().enumerate() {
            let base = dist[si][ci];
            if !base.is_finite() {
                continue;
            }
            let total = base + delays.delay(cand, destination);
            // Strict `<` against the INFINITY start value also keeps
            // non-finite totals (unroutable final legs) unselected.
            if total < best_total {
                best_total = total;
                best_end = Some((si, ci));
            }
        }
    }

    let (mut si, mut ci) = best_end?;
    let mut assignments = Vec::new();
    loop {
        assignments.push(Assignment {
            stage: StageId::new(si),
            proxy: candidates[si][ci],
        });
        match parent[si][ci] {
            Some((psi, pci)) => {
                si = psi;
                ci = pci;
            }
            None => break,
        }
    }
    assignments.reverse();
    Some((best_total, assignments))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::providers::ProviderIndex;
    use son_overlay::{DelayMatrix, ServiceId, ServiceSet};

    fn line_delays(n: usize) -> DelayMatrix {
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                values[i * n + j] = (i as f64 - j as f64).abs();
            }
        }
        DelayMatrix::from_values(n, values)
    }

    fn sid(i: usize) -> ServiceId {
        ServiceId::new(i)
    }

    #[test]
    fn empty_graph_is_direct_relay() {
        let delays = line_delays(4);
        let providers = ProviderIndex::default();
        let graph = ServiceGraph::linear(vec![]);
        let (cost, chosen) = solve_service_dag(
            &graph,
            ProxyId::new(0),
            ProxyId::new(3),
            &providers,
            &delays,
        )
        .unwrap();
        assert_eq!(cost, 3.0);
        assert!(chosen.is_empty());
    }

    #[test]
    fn no_provider_means_infeasible() {
        let delays = line_delays(3);
        let providers = ProviderIndex::from_service_sets(&[
            ServiceSet::new(),
            ServiceSet::from_iter([sid(0)]),
            ServiceSet::new(),
        ]);
        let graph = ServiceGraph::linear(vec![sid(0), sid(1)]);
        assert!(solve_service_dag(
            &graph,
            ProxyId::new(0),
            ProxyId::new(2),
            &providers,
            &delays
        )
        .is_none());
    }

    #[test]
    fn picks_on_the_way_providers() {
        // Providers of s0 at proxies 1 (on the way) and 3 (past the
        // destination): proxy 1 wins.
        let delays = line_delays(4);
        let providers = ProviderIndex::from_service_sets(&[
            ServiceSet::new(),
            ServiceSet::from_iter([sid(0)]),
            ServiceSet::new(),
            ServiceSet::from_iter([sid(0)]),
        ]);
        let graph = ServiceGraph::linear(vec![sid(0)]);
        let (cost, chosen) = solve_service_dag(
            &graph,
            ProxyId::new(0),
            ProxyId::new(2),
            &providers,
            &delays,
        )
        .unwrap();
        assert_eq!(cost, 2.0);
        assert_eq!(
            chosen,
            vec![Assignment {
                stage: StageId::new(0),
                proxy: ProxyId::new(1)
            }]
        );
    }

    #[test]
    fn respects_dependency_order_even_when_detouring() {
        // s0 only at proxy 3, s1 only at proxy 1; source 0, dest 4:
        // forced path 0 → 3 → 1 → 4 despite going backwards.
        let delays = line_delays(5);
        let providers = ProviderIndex::from_service_sets(&[
            ServiceSet::new(),
            ServiceSet::from_iter([sid(1)]),
            ServiceSet::new(),
            ServiceSet::from_iter([sid(0)]),
            ServiceSet::new(),
        ]);
        let graph = ServiceGraph::linear(vec![sid(0), sid(1)]);
        let (cost, chosen) = solve_service_dag(
            &graph,
            ProxyId::new(0),
            ProxyId::new(4),
            &providers,
            &delays,
        )
        .unwrap();
        assert_eq!(cost, 3.0 + 2.0 + 3.0);
        let proxies: Vec<ProxyId> = chosen.iter().map(|a| a.proxy).collect();
        assert_eq!(proxies, vec![ProxyId::new(3), ProxyId::new(1)]);
    }

    #[test]
    fn nonlinear_graph_picks_cheapest_configuration() {
        // SG: s0 → s2 and s1 → s2 (two sources): configurations
        // [s0, s2] and [s1, s2]. s0 is far (proxy 4), s1 near (proxy 1),
        // s2 at proxy 2. Expect the s1 branch.
        let delays = line_delays(5);
        let providers = ProviderIndex::from_service_sets(&[
            ServiceSet::new(),
            ServiceSet::from_iter([sid(1)]),
            ServiceSet::from_iter([sid(2)]),
            ServiceSet::new(),
            ServiceSet::from_iter([sid(0)]),
        ]);
        let graph = ServiceGraph::builder()
            .stage(sid(0))
            .stage(sid(1))
            .stage(sid(2))
            .edge(0, 2)
            .edge(1, 2)
            .build()
            .unwrap();
        let (cost, chosen) = solve_service_dag(
            &graph,
            ProxyId::new(0),
            ProxyId::new(3),
            &providers,
            &delays,
        )
        .unwrap();
        assert_eq!(cost, 1.0 + 1.0 + 1.0);
        assert_eq!(chosen.len(), 2);
        assert_eq!(chosen[0].stage, StageId::new(1));
        assert_eq!(chosen[0].proxy, ProxyId::new(1));
        assert_eq!(chosen[1].proxy, ProxyId::new(2));
    }

    #[test]
    fn nonlinear_infeasible_branch_falls_back() {
        // Same SG but s1 has no provider: only [s0, s2] is viable.
        let delays = line_delays(5);
        let providers = ProviderIndex::from_service_sets(&[
            ServiceSet::new(),
            ServiceSet::new(),
            ServiceSet::from_iter([sid(2)]),
            ServiceSet::new(),
            ServiceSet::from_iter([sid(0)]),
        ]);
        let graph = ServiceGraph::builder()
            .stage(sid(0))
            .stage(sid(1))
            .stage(sid(2))
            .edge(0, 2)
            .edge(1, 2)
            .build()
            .unwrap();
        let (_, chosen) = solve_service_dag(
            &graph,
            ProxyId::new(0),
            ProxyId::new(3),
            &providers,
            &delays,
        )
        .unwrap();
        assert_eq!(chosen[0].stage, StageId::new(0));
        assert_eq!(chosen[0].proxy, ProxyId::new(4));
    }

    /// Brute force over every provider combination for a linear chain.
    fn brute_force_linear(
        services: &[ServiceId],
        source: ProxyId,
        destination: ProxyId,
        providers: &ProviderIndex,
        delays: &DelayMatrix,
    ) -> Option<f64> {
        fn recurse(
            services: &[ServiceId],
            at: ProxyId,
            destination: ProxyId,
            providers: &ProviderIndex,
            delays: &DelayMatrix,
        ) -> Option<f64> {
            match services.split_first() {
                None => Some(delays.delay(at, destination)),
                Some((&first, rest)) => providers
                    .providers(first)
                    .iter()
                    .filter_map(|&p| {
                        recurse(rest, p, destination, providers, delays)
                            .map(|tail| delays.delay(at, p) + tail)
                    })
                    .min_by(|a, b| a.partial_cmp(b).unwrap()),
            }
        }
        recurse(services, source, destination, providers, delays)
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for case in 0..50 {
            let n = rng.gen_range(4..10);
            // Random symmetric delays.
            let mut values = vec![0.0; n * n];
            for i in 0..n {
                for j in (i + 1)..n {
                    let d = rng.gen_range(1.0..20.0);
                    values[i * n + j] = d;
                    values[j * n + i] = d;
                }
            }
            let delays = DelayMatrix::from_values(n, values);
            let service_universe = 4;
            let sets: Vec<ServiceSet> = (0..n)
                .map(|_| {
                    (0..service_universe)
                        .filter(|_| rng.gen_bool(0.5))
                        .map(sid)
                        .collect()
                })
                .collect();
            let providers = ProviderIndex::from_service_sets(&sets);
            let chain_len = rng.gen_range(1..4);
            let services: Vec<ServiceId> = (0..chain_len)
                .map(|_| sid(rng.gen_range(0..service_universe)))
                .collect();
            let graph = ServiceGraph::linear(services.clone());
            let source = ProxyId::new(rng.gen_range(0..n));
            let destination = ProxyId::new(rng.gen_range(0..n));
            let solved =
                solve_service_dag(&graph, source, destination, &providers, &delays).map(|(c, _)| c);
            let brute = brute_force_linear(&services, source, destination, &providers, &delays);
            match (solved, brute) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert!((a - b).abs() < 1e-9, "case {case}: dag {a} vs brute {b}")
                }
                (a, b) => panic!("case {case}: feasibility mismatch {a:?} vs {b:?}"),
            }
        }
    }
}
