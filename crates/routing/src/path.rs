//! Concrete service paths.

use son_overlay::{DelayModel, ProxyId, ServiceId, ServiceRequest};
use std::fmt;

/// One hop of a service path: a proxy and the service it applies
/// (`None` means the proxy acts as a pure message relay — the paper's
/// `−/pᵢ` notation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathHop {
    /// The proxy visited.
    pub proxy: ProxyId,
    /// The service applied there, if any.
    pub service: Option<ServiceId>,
}

impl PathHop {
    /// A relay hop (`−/p`).
    pub fn relay(proxy: ProxyId) -> Self {
        PathHop {
            proxy,
            service: None,
        }
    }

    /// A service hop (`s/p`).
    pub fn serving(proxy: ProxyId, service: ServiceId) -> Self {
        PathHop {
            proxy,
            service: Some(service),
        }
    }
}

impl fmt::Display for PathHop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.service {
            Some(s) => write!(f, "{s}/{}", self.proxy),
            None => write!(f, "-/{}", self.proxy),
        }
    }
}

/// A concrete service path
/// `sp = ⟨−/p₀, s₁/p₁, …, sₙ/pₙ, −/pₙ₊₁⟩` (paper Section 2.2).
///
/// The same proxy may appear in consecutive hops when it applies
/// several services in sequence (zero-cost hops).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServicePath {
    hops: Vec<PathHop>,
}

/// Why a service path failed validation against a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidatePathError {
    /// The first hop is not the request's source proxy.
    WrongSource,
    /// The last hop is not the request's destination proxy.
    WrongDestination,
    /// The sequence of applied services matches no feasible
    /// configuration of the service graph.
    NotAConfiguration,
    /// A hop applies a service its proxy does not carry.
    MissingService {
        /// The offending proxy.
        proxy: ProxyId,
        /// The service it was asked to apply.
        service: ServiceId,
    },
}

impl fmt::Display for ValidatePathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidatePathError::WrongSource => write!(f, "path does not start at the source proxy"),
            ValidatePathError::WrongDestination => {
                write!(f, "path does not end at the destination proxy")
            }
            ValidatePathError::NotAConfiguration => {
                write!(f, "applied services match no feasible configuration")
            }
            ValidatePathError::MissingService { proxy, service } => {
                write!(f, "proxy {proxy} does not carry service {service}")
            }
        }
    }
}

impl std::error::Error for ValidatePathError {}

impl ServicePath {
    /// Wraps a hop list into a path.
    ///
    /// # Panics
    ///
    /// Panics if `hops` is empty (a path visits at least one proxy).
    pub fn new(hops: Vec<PathHop>) -> Self {
        assert!(!hops.is_empty(), "a service path needs at least one hop");
        ServicePath { hops }
    }

    /// The hops in order.
    pub fn hops(&self) -> &[PathHop] {
        &self.hops
    }

    /// The first proxy.
    pub fn source(&self) -> ProxyId {
        self.hops.first().expect("paths are non-empty").proxy
    }

    /// The last proxy.
    pub fn destination(&self) -> ProxyId {
        self.hops.last().expect("paths are non-empty").proxy
    }

    /// The services applied, in order.
    pub fn service_chain(&self) -> Vec<ServiceId> {
        self.hops.iter().filter_map(|h| h.service).collect()
    }

    /// Number of pure relay hops strictly between the endpoints.
    pub fn relay_count(&self) -> usize {
        if self.hops.len() < 2 {
            return 0;
        }
        self.hops[1..self.hops.len() - 1]
            .iter()
            .filter(|h| h.service.is_none())
            .count()
    }

    /// Total delay of the path under `delays`: the sum over consecutive
    /// hops (repeated proxies cost zero).
    pub fn length<D: DelayModel>(&self, delays: &D) -> f64 {
        self.hops
            .windows(2)
            .map(|w| delays.delay(w[0].proxy, w[1].proxy))
            .sum()
    }

    /// Checks the path against a request: endpoints, configuration
    /// feasibility, and service availability (via `carries`, which
    /// answers whether a proxy has a service installed).
    ///
    /// # Errors
    ///
    /// Returns the first violated condition.
    pub fn validate<F>(&self, request: &ServiceRequest, carries: F) -> Result<(), ValidatePathError>
    where
        F: Fn(ProxyId, ServiceId) -> bool,
    {
        if self.source() != request.source {
            return Err(ValidatePathError::WrongSource);
        }
        if self.destination() != request.destination {
            return Err(ValidatePathError::WrongDestination);
        }
        let chain = self.service_chain();
        let feasible = request.graph.configurations().iter().any(|config| {
            config.len() == chain.len()
                && config
                    .iter()
                    .zip(&chain)
                    .all(|(stage, s)| request.graph.service(*stage) == *s)
        });
        if !feasible {
            return Err(ValidatePathError::NotAConfiguration);
        }
        for hop in &self.hops {
            if let Some(service) = hop.service {
                if !carries(hop.proxy, service) {
                    return Err(ValidatePathError::MissingService {
                        proxy: hop.proxy,
                        service,
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for ServicePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, hop) in self.hops.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{hop}")?;
        }
        write!(f, "⟩")
    }
}

/// Incrementally composes a [`ServicePath`].
///
/// Centralises the hop bookkeeping every router needs — relay
/// deduplication, collapsing a service onto a trailing relay of the
/// same proxy, appending expanded hop segments, splicing child paths —
/// so the flat, hierarchical, and multi-level routers share one
/// implementation instead of three hand-rolled helpers.
#[derive(Debug, Clone)]
pub struct PathBuilder {
    hops: Vec<PathHop>,
}

impl PathBuilder {
    /// Starts a path at the request's source proxy (the paper's leading
    /// `−/p₀` hop).
    pub fn start(source: ProxyId) -> Self {
        PathBuilder {
            hops: vec![PathHop::relay(source)],
        }
    }

    /// The proxy the path currently ends at.
    pub fn current(&self) -> ProxyId {
        self.hops.last().expect("paths are non-empty").proxy
    }

    /// Appends a relay hop unless the path already ends at `proxy`.
    pub fn relay(&mut self, proxy: ProxyId) {
        if self.current() != proxy {
            self.hops.push(PathHop::relay(proxy));
        }
    }

    /// Applies `service` at `proxy`: collapses onto a trailing relay of
    /// the same proxy — but never the bare source hop — otherwise
    /// appends a fresh serving hop (a zero-cost self-hop).
    pub fn serve(&mut self, proxy: ProxyId, service: ServiceId) {
        let len = self.hops.len();
        match self.hops.last_mut() {
            Some(last) if last.proxy == proxy && last.service.is_none() && len > 1 => {
                last.service = Some(service);
            }
            _ => self.hops.push(PathHop::serving(proxy, service)),
        }
    }

    /// Appends an inclusive expanded hop list (mesh relays, HFC border
    /// chains) whose first element must be the current end. Every
    /// subsequent element becomes a relay hop, duplicates included, so
    /// zero-cost self-hops stay explicit for [`PathBuilder::serve`] to
    /// collapse onto.
    pub fn extend_expanded(&mut self, segment: &[ProxyId]) {
        debug_assert_eq!(
            segment.first().copied(),
            Some(self.current()),
            "expansion must start at the current hop"
        );
        for &p in &segment[1..] {
            self.hops.push(PathHop::relay(p));
        }
    }

    /// Splices a child path that starts at the current end: its source
    /// hop is skipped, relay hops are deduplicated, serving hops are
    /// appended verbatim.
    pub fn splice(&mut self, path: &ServicePath) {
        debug_assert_eq!(
            path.source(),
            self.current(),
            "spliced path must start at the current hop"
        );
        for hop in &path.hops()[1..] {
            if hop.service.is_none() {
                self.relay(hop.proxy);
            } else {
                self.hops.push(*hop);
            }
        }
    }

    /// Ends the path at `destination`, deduplicating by proxy: if the
    /// path already ends there (even with a service applied) no hop is
    /// added.
    pub fn finish(mut self, destination: ProxyId) -> ServicePath {
        self.relay(destination);
        ServicePath::new(self.hops)
    }

    /// Ends the path with an explicit bare relay at `destination` (the
    /// paper's trailing `−/pₙ₊₁`): a hop is appended whenever the path
    /// ends elsewhere *or* its last hop applies a service.
    pub fn finish_with_relay(mut self, destination: ProxyId) -> ServicePath {
        let last = self.hops.last().expect("paths are non-empty");
        if last.proxy != destination || last.service.is_some() {
            self.hops.push(PathHop::relay(destination));
        }
        ServicePath::new(self.hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use son_overlay::{DelayMatrix, ServiceGraph};

    fn line_delays(n: usize) -> DelayMatrix {
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                values[i * n + j] = (i as f64 - j as f64).abs();
            }
        }
        DelayMatrix::from_values(n, values)
    }

    fn sample_path() -> ServicePath {
        ServicePath::new(vec![
            PathHop::relay(ProxyId::new(0)),
            PathHop::serving(ProxyId::new(1), ServiceId::new(7)),
            PathHop::relay(ProxyId::new(2)),
            PathHop::serving(ProxyId::new(3), ServiceId::new(8)),
            PathHop::relay(ProxyId::new(4)),
        ])
    }

    #[test]
    fn accessors_work() {
        let p = sample_path();
        assert_eq!(p.source(), ProxyId::new(0));
        assert_eq!(p.destination(), ProxyId::new(4));
        assert_eq!(
            p.service_chain(),
            vec![ServiceId::new(7), ServiceId::new(8)]
        );
        assert_eq!(p.relay_count(), 1);
        assert_eq!(p.hops().len(), 5);
    }

    #[test]
    fn length_sums_hop_delays() {
        let p = sample_path();
        assert_eq!(p.length(&line_delays(5)), 4.0);
        // Repeated proxies cost nothing.
        let twice = ServicePath::new(vec![
            PathHop::relay(ProxyId::new(0)),
            PathHop::serving(ProxyId::new(1), ServiceId::new(0)),
            PathHop::serving(ProxyId::new(1), ServiceId::new(1)),
            PathHop::relay(ProxyId::new(2)),
        ]);
        assert_eq!(twice.length(&line_delays(3)), 2.0);
    }

    #[test]
    fn validate_accepts_correct_path() {
        let p = sample_path();
        let graph = ServiceGraph::linear(vec![ServiceId::new(7), ServiceId::new(8)]);
        let request = ServiceRequest::new(ProxyId::new(0), graph, ProxyId::new(4));
        assert_eq!(p.validate(&request, |_, _| true), Ok(()));
    }

    #[test]
    fn validate_rejects_wrong_endpoints() {
        let p = sample_path();
        let graph = ServiceGraph::linear(vec![ServiceId::new(7), ServiceId::new(8)]);
        let request = ServiceRequest::new(ProxyId::new(1), graph.clone(), ProxyId::new(4));
        assert_eq!(
            p.validate(&request, |_, _| true),
            Err(ValidatePathError::WrongSource)
        );
        let request = ServiceRequest::new(ProxyId::new(0), graph, ProxyId::new(3));
        assert_eq!(
            p.validate(&request, |_, _| true),
            Err(ValidatePathError::WrongDestination)
        );
    }

    #[test]
    fn validate_rejects_wrong_chain() {
        let p = sample_path();
        let graph = ServiceGraph::linear(vec![ServiceId::new(8), ServiceId::new(7)]);
        let request = ServiceRequest::new(ProxyId::new(0), graph, ProxyId::new(4));
        assert_eq!(
            p.validate(&request, |_, _| true),
            Err(ValidatePathError::NotAConfiguration)
        );
    }

    #[test]
    fn validate_rejects_missing_service() {
        let p = sample_path();
        let graph = ServiceGraph::linear(vec![ServiceId::new(7), ServiceId::new(8)]);
        let request = ServiceRequest::new(ProxyId::new(0), graph, ProxyId::new(4));
        let err = p
            .validate(&request, |proxy, _| proxy != ProxyId::new(3))
            .unwrap_err();
        assert_eq!(
            err,
            ValidatePathError::MissingService {
                proxy: ProxyId::new(3),
                service: ServiceId::new(8),
            }
        );
        assert!(err.to_string().contains("does not carry"));
    }

    #[test]
    fn validate_nonlinear_accepts_any_configuration() {
        // s0 → s1, s2 → s1; configurations: [s0, s1] and [s2, s1].
        let graph = ServiceGraph::builder()
            .stage(ServiceId::new(0))
            .stage(ServiceId::new(1))
            .stage(ServiceId::new(2))
            .edge(0, 1)
            .edge(2, 1)
            .build()
            .unwrap();
        let request = ServiceRequest::new(ProxyId::new(0), graph, ProxyId::new(2));
        let via_s2 = ServicePath::new(vec![
            PathHop::relay(ProxyId::new(0)),
            PathHop::serving(ProxyId::new(1), ServiceId::new(2)),
            PathHop::serving(ProxyId::new(1), ServiceId::new(1)),
            PathHop::relay(ProxyId::new(2)),
        ]);
        assert_eq!(via_s2.validate(&request, |_, _| true), Ok(()));
    }

    #[test]
    fn display_uses_paper_notation() {
        let p = ServicePath::new(vec![
            PathHop::relay(ProxyId::new(0)),
            PathHop::serving(ProxyId::new(1), ServiceId::new(2)),
        ]);
        assert_eq!(p.to_string(), "⟨-/p0, s2/p1⟩");
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn empty_path_panics() {
        let _ = ServicePath::new(vec![]);
    }

    #[test]
    fn builder_collapses_service_onto_trailing_relay() {
        let mut b = PathBuilder::start(ProxyId::new(0));
        b.relay(ProxyId::new(1));
        b.serve(ProxyId::new(1), ServiceId::new(4));
        let path = b.finish_with_relay(ProxyId::new(2));
        assert_eq!(
            path.hops(),
            &[
                PathHop::relay(ProxyId::new(0)),
                PathHop::serving(ProxyId::new(1), ServiceId::new(4)),
                PathHop::relay(ProxyId::new(2)),
            ]
        );
    }

    #[test]
    fn builder_never_collapses_onto_the_source_hop() {
        // Serving at the source keeps the bare -/p₀ hop and adds a
        // zero-cost self-hop, matching the paper's notation.
        let mut b = PathBuilder::start(ProxyId::new(0));
        b.serve(ProxyId::new(0), ServiceId::new(1));
        let path = b.finish_with_relay(ProxyId::new(3));
        assert_eq!(
            path.hops(),
            &[
                PathHop::relay(ProxyId::new(0)),
                PathHop::serving(ProxyId::new(0), ServiceId::new(1)),
                PathHop::relay(ProxyId::new(3)),
            ]
        );
    }

    #[test]
    fn builder_relay_deduplicates_but_expansion_does_not() {
        let mut b = PathBuilder::start(ProxyId::new(0));
        b.relay(ProxyId::new(0)); // no-op
        b.extend_expanded(&[ProxyId::new(0), ProxyId::new(0)]); // explicit self-hop
        assert_eq!(b.current(), ProxyId::new(0));
        let path = b.finish(ProxyId::new(0));
        assert_eq!(path.hops().len(), 2);
    }

    #[test]
    fn builder_finish_variants_differ_on_serving_tail() {
        let mut a = PathBuilder::start(ProxyId::new(0));
        a.serve(ProxyId::new(2), ServiceId::new(0));
        let deduped = a.finish(ProxyId::new(2));
        assert_eq!(deduped.hops().len(), 2);

        let mut b = PathBuilder::start(ProxyId::new(0));
        b.serve(ProxyId::new(2), ServiceId::new(0));
        let explicit = b.finish_with_relay(ProxyId::new(2));
        assert_eq!(explicit.hops().len(), 3);
        assert_eq!(explicit.hops()[2], PathHop::relay(ProxyId::new(2)));
    }

    #[test]
    fn builder_splice_skips_source_and_keeps_services() {
        let child = ServicePath::new(vec![
            PathHop::relay(ProxyId::new(1)),
            PathHop::serving(ProxyId::new(1), ServiceId::new(5)),
            PathHop::relay(ProxyId::new(2)),
        ]);
        let mut b = PathBuilder::start(ProxyId::new(0));
        b.relay(ProxyId::new(1));
        b.splice(&child);
        let path = b.finish(ProxyId::new(2));
        assert_eq!(
            path.hops(),
            &[
                PathHop::relay(ProxyId::new(0)),
                PathHop::relay(ProxyId::new(1)),
                PathHop::serving(ProxyId::new(1), ServiceId::new(5)),
                PathHop::relay(ProxyId::new(2)),
            ]
        );
    }
}
