//! Reusable test/demo fixtures, including the paper's worked example.

use son_clustering::Clustering;
use son_overlay::{DelayMatrix, HfcTopology, ServiceId, ServiceSet};

/// The paper's Section 5 worked example (Figures 6–8): four clusters,
/// thirteen proxies, services S1–S5.
///
/// Proxy indices: 0–3 = C0.0–C0.3, 4–7 = C1.0–C1.3, 8–10 = C2.0–C2.2,
/// 11–12 = C3.0–C3.1. Services are `ServiceId::new(1..=5)`.
///
/// Border pairs reproduce Figure 4: (C0,C1)=(C0.1,C1.0) at distance 20,
/// (C0,C2)=(C0.0,C2.2) at 40, (C0,C3)=(C0.0,C3.0) at 30,
/// (C1,C2)=(C1.2,C2.0) at 25, (C1,C3)=(C1.1,C3.0) at 50,
/// (C2,C3)=(C2.2,C3.0) at 15. Cross-cluster distances are the metric
/// closure through the border pairs, so closest-pair border selection
/// recovers exactly these borders.
///
/// # Example
///
/// ```
/// use son_routing::fixtures::paper_example;
///
/// let (hfc, _delays, services) = paper_example();
/// assert_eq!(hfc.cluster_count(), 4);
/// assert_eq!(services.len(), 13);
/// ```
pub fn paper_example() -> (HfcTopology, DelayMatrix, Vec<ServiceSet>) {
    let n = 13;
    let labels = [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 3, 3];
    let mut d = vec![vec![0.0f64; n]; n];
    let mut set = |a: usize, b: usize, v: f64| {
        d[a][b] = v;
        d[b][a] = v;
    };
    // C0: 0=C0.0, 1=C0.1, 2=C0.2, 3=C0.3
    set(0, 1, 4.0);
    set(0, 2, 1.0);
    set(0, 3, 3.0);
    set(1, 2, 5.0);
    set(1, 3, 5.0);
    set(2, 3, 2.0);
    // C1: 4=C1.0, 5=C1.1, 6=C1.2, 7=C1.3
    set(4, 5, 2.0);
    set(4, 6, 5.0);
    set(4, 7, 4.0);
    set(5, 6, 3.0);
    set(5, 7, 3.0);
    set(6, 7, 5.0);
    // C2: 8=C2.0, 9=C2.1, 10=C2.2
    set(8, 9, 2.0);
    set(8, 10, 3.0);
    set(9, 10, 1.0);
    // C3: 11=C3.0, 12=C3.1
    set(11, 12, 2.0);
    // External border links.
    let ext = [
        ((1usize, 4usize), 20.0f64), // C0.1 - C1.0
        ((0, 10), 40.0),             // C0.0 - C2.2
        ((0, 11), 30.0),             // C0.0 - C3.0
        ((6, 8), 25.0),              // C1.2 - C2.0
        ((5, 11), 50.0),             // C1.1 - C3.0
        ((10, 11), 15.0),            // C2.2 - C3.0
    ];
    for i in 0..n {
        for j in 0..n {
            if labels[i] == labels[j] || i == j {
                continue;
            }
            let mut best = f64::INFINITY;
            for &((ba, bb), w) in &ext {
                let (ba_c, bb_c) = (labels[ba], labels[bb]);
                if labels[i] == ba_c && labels[j] == bb_c {
                    best = best.min(d[i][ba] + w + d[bb][j]);
                }
                if labels[i] == bb_c && labels[j] == ba_c {
                    best = best.min(d[i][bb] + w + d[ba][j]);
                }
            }
            if best < d[i][j] || d[i][j] == 0.0 {
                d[i][j] = best;
            }
        }
    }
    let flat: Vec<f64> = d.iter().flat_map(|row| row.iter().copied()).collect();
    let delays = DelayMatrix::from_values(n, flat);
    let clustering = Clustering::from_labels(&labels);
    let hfc = HfcTopology::build(&clustering, &delays);

    // Installed services (Figure 6): S1..S5 → ServiceId 1..=5.
    let service_map: [&[usize]; 13] = [
        &[1],    // C0.0
        &[4],    // C0.1
        &[4],    // C0.2
        &[1],    // C0.3
        &[2],    // C1.0
        &[3, 4], // C1.1
        &[3],    // C1.2
        &[2, 4], // C1.3
        &[5],    // C2.0
        &[2],    // C2.1
        &[5],    // C2.2
        &[4],    // C3.0
        &[1, 4], // C3.1
    ];
    let services: Vec<ServiceSet> = service_map
        .iter()
        .map(|ids| ids.iter().map(|&i| ServiceId::new(i)).collect())
        .collect();
    (hfc, delays, services)
}
