//! Crate-wide property tests: random worlds, structural invariants.

#![cfg(test)]

use crate::flat::{FlatRouter, RouteError};
use crate::hier::{HierConfig, HierarchicalRouter};
use crate::providers::ProviderIndex;
use crate::sdag::solve_service_dag;
use proptest::prelude::*;
use son_clustering::Clustering;
use son_overlay::{
    DelayMatrix, HfcDelays, HfcTopology, ProxyId, ServiceGraph, ServiceId, ServiceRequest,
    ServiceSet,
};

/// A random "world": planted cluster centers on a line, proxies around
/// them, metric distances, random services.
#[derive(Debug, Clone)]
struct World {
    delays: DelayMatrix,
    services: Vec<ServiceSet>,
    hfc: HfcTopology,
}

fn world_strategy() -> impl Strategy<Value = World> {
    (2usize..5, 2usize..5, 1usize..5, any::<u64>()).prop_map(
        |(clusters, per_cluster, universe, seed)| {
            // Positions: cluster c at 1000*c, members jittered by a
            // deterministic pseudo-random offset.
            let n = clusters * per_cluster;
            let mut pos = Vec::with_capacity(n);
            let mut labels = Vec::with_capacity(n);
            let mut state = seed | 1;
            let mut next = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as f64 / (1u64 << 31) as f64
            };
            for c in 0..clusters {
                for _ in 0..per_cluster {
                    pos.push(c as f64 * 1000.0 + next() * 50.0);
                    labels.push(c);
                }
            }
            let mut values = vec![0.0; n * n];
            for i in 0..n {
                for j in 0..n {
                    values[i * n + j] = (pos[i] - pos[j]).abs();
                }
            }
            let delays = DelayMatrix::from_values(n, values);
            let clustering = Clustering::from_labels(&labels);
            let hfc = HfcTopology::build(&clustering, &delays);
            let services: Vec<ServiceSet> = (0..n)
                .map(|i| {
                    (0..universe)
                        .filter(|&s| (i + s) % 2 == 0 || next() > 0.5)
                        .map(ServiceId::new)
                        .collect()
                })
                .collect();
            World {
                delays,
                services,
                hfc,
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every path the hierarchical router emits is feasible and starts/
    /// ends correctly; and the full-state route never exceeds it under
    /// the HFC metric.
    #[test]
    fn hierarchical_routes_are_always_valid(world in world_strategy(), req_seed in 0usize..1000) {
        let n = world.services.len();
        let universe = 5;
        let src = ProxyId::new(req_seed % n);
        let dst = ProxyId::new((req_seed / 7) % n);
        let chain: Vec<ServiceId> = (0..(req_seed % 4))
            .map(|i| ServiceId::new((req_seed + i) % universe))
            .collect();
        let request = ServiceRequest::new(src, ServiceGraph::linear(chain), dst);
        let router = HierarchicalRouter::from_services(
            &world.hfc,
            &world.services,
            &world.delays,
            HierConfig::default(),
        );
        match router.route(&request) {
            Ok(route) => {
                prop_assert_eq!(route.path.source(), src);
                prop_assert_eq!(route.path.destination(), dst);
                route
                    .path
                    .validate(&request, |p, s| world.services[p.index()].contains(s))
                    .map_err(|e| TestCaseError::fail(format!("invalid path: {e}")))?;
                // Full-state route is optimal under the HFC metric.
                let constrained = HfcDelays::new(&world.hfc, &world.delays);
                let full = router
                    .route_without_aggregation(&request)
                    .expect("full state can route whatever aggregated state can");
                prop_assert!(
                    full.length(&constrained) <= route.path.length(&constrained) + 1e-6
                );
            }
            Err(RouteError::NoProvider(s)) => {
                prop_assert!(
                    !world.services.iter().any(|set| set.contains(s)),
                    "router claimed {} unavailable but a proxy has it", s
                );
            }
            Err(err) => {
                // Only possible when some stage has no provider in any
                // cluster combination — with linear chains this means
                // some service is missing entirely, which NoProvider
                // should have caught first. (NoIngress/Overloaded need
                // an engine admission pipeline, absent here.)
                prop_assert!(false, "linear chains must yield NoProvider, not {err:?}");
            }
        }
    }

    /// The flat router (full topology, exact distances) is never worse
    /// than the hierarchical one on the same unconstrained metric.
    #[test]
    fn flat_routing_lower_bounds_hierarchical(world in world_strategy(), req_seed in 0usize..1000) {
        let n = world.services.len();
        let src = ProxyId::new(req_seed % n);
        let dst = ProxyId::new((req_seed / 3) % n);
        let chain: Vec<ServiceId> = (0..(1 + req_seed % 3))
            .map(|i| ServiceId::new((req_seed + 2 * i) % 5))
            .collect();
        let request = ServiceRequest::new(src, ServiceGraph::linear(chain), dst);
        let providers = ProviderIndex::from_service_sets(&world.services);
        let flat = FlatRouter::new(&providers, &world.delays);
        let hier = HierarchicalRouter::from_services(
            &world.hfc,
            &world.services,
            &world.delays,
            HierConfig::default(),
        );
        if let (Ok(f), Ok(h)) = (flat.route(&request), hier.route(&request)) {
            prop_assert!(
                f.length(&world.delays) <= h.path.length(&world.delays) + 1e-6,
                "flat {} > hier {}",
                f.length(&world.delays),
                h.path.length(&world.delays)
            );
        }
    }

    /// solve_service_dag is monotone: adding a provider can only keep
    /// or lower the optimum.
    #[test]
    fn more_providers_never_hurt(
        positions in proptest::collection::vec(0.0f64..1000.0, 3..12),
        chain in proptest::collection::vec(0usize..3, 1..4),
        extra in 0usize..12,
    ) {
        let n = positions.len();
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                values[i * n + j] = (positions[i] - positions[j]).abs();
            }
        }
        let delays = DelayMatrix::from_values(n, values);
        let graph = ServiceGraph::linear(chain.iter().map(|&s| ServiceId::new(s)).collect());
        let mut sets: Vec<ServiceSet> = (0..n)
            .map(|i| {
                (0..3usize)
                    .filter(|&s| (i * 7 + s) % 3 == 0)
                    .map(ServiceId::new)
                    .collect()
            })
            .collect();
        let before = {
            let p = ProviderIndex::from_service_sets(&sets);
            solve_service_dag(&graph, ProxyId::new(0), ProxyId::new(n - 1), &p, &delays)
                .map(|(c, _)| c)
        };
        // Grant one more proxy one more service.
        sets[extra % n].insert(ServiceId::new(extra % 3));
        let after = {
            let p = ProviderIndex::from_service_sets(&sets);
            solve_service_dag(&graph, ProxyId::new(0), ProxyId::new(n - 1), &p, &delays)
                .map(|(c, _)| c)
        };
        match (before, after) {
            (Some(b), Some(a)) => prop_assert!(a <= b + 1e-9, "adding a provider raised cost"),
            (Some(_), None) => prop_assert!(false, "adding a provider broke feasibility"),
            _ => {}
        }
    }

    /// Request dissection produces child requests whose stage count
    /// sums to the configuration length (CSP bookkeeping is lossless).
    #[test]
    fn csp_covers_all_stages(world in world_strategy(), req_seed in 0usize..1000) {
        let n = world.services.len();
        let request = ServiceRequest::new(
            ProxyId::new(req_seed % n),
            ServiceGraph::linear(
                (0..(1 + req_seed % 3)).map(|i| ServiceId::new((req_seed + i) % 5)).collect(),
            ),
            ProxyId::new((req_seed / 11) % n),
        );
        let router = HierarchicalRouter::from_services(
            &world.hfc,
            &world.services,
            &world.delays,
            HierConfig::default(),
        );
        if let Ok(route) = router.route(&request) {
            prop_assert_eq!(route.csp.len(), request.graph.len());
            prop_assert_eq!(
                route.path.service_chain().len(),
                request.graph.len(),
                "every stage must appear exactly once in the final path"
            );
        }
    }
}
