//! Hierarchical (divide-and-conquer) service path finding — the
//! paper's Section 5.
//!
//! The destination proxy `pd` holds aggregate state only (`SCT_C` plus
//! coordinates of its own cluster and of every border proxy), so
//! routing proceeds top-down:
//!
//! 1. **map** — find, per stage, the clusters whose aggregate set
//!    offers the demanded service, forming a cluster-level service DAG;
//! 2. **shortest path with back-tracking** — run a shortest-path pass
//!    whose edge weights include not only the external border links but
//!    also the *internal* border-to-border distances `pd` can estimate
//!    from the coordinates it knows (the paper's back-tracking
//!    refinement; disable via [`HierConfig::backtracking`] to measure
//!    its benefit);
//! 3. **divide** — dissect the cluster-level service path (CSP) into
//!    child requests, one per maximal run of stages in the same
//!    cluster, with entry/exit border proxies as child endpoints;
//! 4. **conquer** — solve each child optimally inside its cluster with
//!    the flat service-DAG method over `SCT_P`, then compose the child
//!    paths and the border glue hops into the final service path.

use crate::csp::{CspCandidate, CspFrontier, CspRouter};
use crate::flat::RouteError;
use crate::path::{PathBuilder, ServicePath};
use crate::providers::ProviderIndex;
use crate::sdag::{solve_service_dag, Assignment};
use son_overlay::{
    ClusterId, DelayModel, HfcDelays, HfcTopology, ProxyId, ServiceGraph, ServiceId,
    ServiceRequest, ServiceSet, StageId,
};
use son_state::{ClusterLoad, SctC, SctP};
use std::collections::BTreeMap;

/// Tuning knobs of the hierarchical router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierConfig {
    /// Include intra-cluster border-to-border lower bounds in the
    /// cluster-level edge weights (Section 5.1 step 2). Disabling
    /// reverts to judging cluster paths by external links only.
    pub backtracking: bool,
}

impl Default for HierConfig {
    fn default() -> Self {
        HierConfig { backtracking: true }
    }
}

/// The result of a hierarchical route: the composed concrete path plus
/// the cluster-level decisions that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct HierRoute {
    /// The final composed service path.
    pub path: ServicePath,
    /// Cluster assigned to each stage of the chosen configuration, in
    /// path order.
    pub csp: Vec<(StageId, ClusterId)>,
    /// Number of child requests the CSP was dissected into.
    pub child_count: usize,
    /// The cluster-level cost estimate that selected this CSP (external
    /// links plus known internal lower bounds).
    pub estimate: f64,
}

/// One child request of a dissected CSP: a linear chain of services to
/// be resolved inside one cluster, between an entry and an exit proxy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChildSpec {
    /// The cluster that must resolve this child.
    pub cluster: ClusterId,
    /// The proxy responsible for solving it (the cluster's exit border,
    /// or the destination proxy for the final child).
    pub solver: ProxyId,
    /// The services demanded, in order.
    pub services: Vec<ServiceId>,
    /// Entry proxy (child source).
    pub source: ProxyId,
    /// Exit proxy (child destination).
    pub dest: ProxyId,
}

/// The outcome of the destination proxy's local planning (Section 5
/// steps 1–3): the cluster-level service path and the child requests it
/// dissects into.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutePlan {
    /// Cluster assigned to each stage of the chosen configuration.
    pub csp: Vec<(StageId, ClusterId)>,
    /// The cluster-level cost estimate that selected this CSP.
    pub estimate: f64,
    /// Child requests, in path order.
    pub children: Vec<ChildSpec>,
}

/// The hierarchical router.
///
/// Holds the converged distributed state (aggregates per cluster,
/// capability tables per cluster) and answers requests the way the
/// deployed system would: cluster-level decisions use only
/// aggregate-visible information, intra-cluster decisions use only the
/// local cluster's tables.
#[derive(Debug)]
pub struct HierarchicalRouter<'a, D> {
    hfc: &'a HfcTopology,
    delays: D,
    sctc: SctC,
    cluster_providers: Vec<ProviderIndex>,
    global_providers: ProviderIndex,
    config: HierConfig,
    cluster_load: Option<ClusterLoad>,
}

impl<'a, D> HierarchicalRouter<'a, D>
where
    D: DelayModel,
{
    /// Builds the router directly from per-proxy installed services
    /// (producing the same tables the state protocol converges to).
    ///
    /// `delays` is the *known* distance map — coordinate-predicted
    /// distances in a deployment, exact distances in unit tests.
    ///
    /// # Panics
    ///
    /// Panics if `services.len()` differs from the proxy count.
    pub fn from_services(
        hfc: &'a HfcTopology,
        services: &[ServiceSet],
        delays: D,
        config: HierConfig,
    ) -> Self {
        assert_eq!(
            services.len(),
            hfc.proxy_count(),
            "one service set per proxy required"
        );
        let mut sctc = SctC::new();
        let mut cluster_tables = Vec::with_capacity(hfc.cluster_count());
        for c in hfc.clusters() {
            let mut table = SctP::new();
            for &m in hfc.members(c) {
                table.update(m, services[m.index()].clone());
            }
            sctc.update(c, table.aggregate());
            cluster_tables.push(table);
        }
        Self::from_tables(hfc, sctc, &cluster_tables, delays, config)
    }

    /// Builds the router from converged protocol tables: the
    /// system-wide aggregate table and one `SCT_P` per cluster
    /// (indexed by cluster).
    pub fn from_tables(
        hfc: &'a HfcTopology,
        sctc: SctC,
        cluster_tables: &[SctP],
        delays: D,
        config: HierConfig,
    ) -> Self {
        assert_eq!(
            cluster_tables.len(),
            hfc.cluster_count(),
            "one SCT_P per cluster required"
        );
        let cluster_providers: Vec<ProviderIndex> = cluster_tables
            .iter()
            .map(ProviderIndex::from_sctp)
            .collect();
        let global_providers = ProviderIndex::from_entries(
            cluster_tables
                .iter()
                .flat_map(|t| t.iter().collect::<Vec<_>>()),
        );
        HierarchicalRouter {
            hfc,
            delays,
            sctc,
            cluster_providers,
            global_providers,
            config,
            cluster_load: None,
        }
    }

    /// Attaches per-cluster load/health summaries (the saturation
    /// counterpart of the aggregate `SCT_C` rows): cluster-level (CSP)
    /// selection then skips clusters with no routable members and
    /// penalizes saturated ones.
    pub fn with_cluster_load(mut self, load: ClusterLoad) -> Self {
        self.cluster_load = Some(load);
        self
    }

    /// The aggregate table the router decides from.
    pub fn sctc(&self) -> &SctC {
        &self.sctc
    }

    /// The HFC topology this router operates on.
    pub fn hfc(&self) -> &HfcTopology {
        self.hfc
    }

    /// Number of proxies in the overlay.
    pub fn proxy_count(&self) -> usize {
        self.hfc.proxy_count()
    }

    /// The known distance map this router judges paths by.
    pub fn known_delays(&self) -> &D {
        &self.delays
    }

    /// Routes `request` hierarchically.
    ///
    /// # Errors
    ///
    /// [`RouteError::NoProvider`] when some demanded service exists in
    /// no cluster's aggregate; [`RouteError::Infeasible`] when no
    /// configuration admits a full cluster-level mapping.
    pub fn route(&self, request: &ServiceRequest) -> Result<HierRoute, RouteError> {
        let plan = self.plan(request)?;
        // Solve every child locally (the distributed variant lives in
        // [`crate::session`]).
        let mut answers = Vec::with_capacity(plan.children.len());
        for child in &plan.children {
            answers.push(self.solve_child(child).ok_or(RouteError::Infeasible)?);
        }
        Ok(self.compose(request, plan, &answers))
    }

    /// Routes with crankback recovery: when a child request turns out
    /// unsolvable inside its assigned cluster (stale aggregate state —
    /// the cluster advertised a service its table can no longer back),
    /// the offending `(stage, cluster)` assignments are excluded and
    /// the cluster-level path is recomputed, up to `max_attempts`
    /// times.
    ///
    /// With converged state this behaves exactly like
    /// [`HierarchicalRouter::route`]; under churn it trades extra
    /// planning rounds for robustness.
    ///
    /// # Errors
    ///
    /// The usual routing errors, or [`RouteError::Infeasible`] when the
    /// attempt budget is exhausted.
    pub fn route_with_recovery(
        &self,
        request: &ServiceRequest,
        max_attempts: usize,
    ) -> Result<HierRoute, RouteError> {
        let mut excluded: Vec<(StageId, ClusterId)> = Vec::new();
        for _ in 0..max_attempts.max(1) {
            let plan = self.plan_excluding(request, &excluded)?;
            let mut answers = Vec::with_capacity(plan.children.len());
            let mut failed = None;
            // Reconstruct which stages each child covers: children are
            // consecutive runs of the CSP.
            let mut stage_cursor = 0usize;
            for child in &plan.children {
                let stages: Vec<StageId> = plan.csp
                    [stage_cursor..stage_cursor + child.services.len()]
                    .iter()
                    .map(|&(stage, _)| stage)
                    .collect();
                stage_cursor += child.services.len();
                match self.solve_child(child) {
                    Some(assignments) => answers.push(assignments),
                    None => {
                        failed = Some((child.cluster, stages));
                        break;
                    }
                }
            }
            match failed {
                None => return Ok(self.compose(request, plan, &answers)),
                Some((cluster, stages)) => {
                    for stage in stages {
                        excluded.push((stage, cluster));
                    }
                }
            }
        }
        Err(RouteError::Infeasible)
    }

    /// Steps 1–3 of Section 5 as performed *by the destination proxy
    /// alone*: compute the cluster-level service path from aggregate
    /// state and dissect it into child requests. The returned plan
    /// names, per child, the proxy responsible for solving it (the
    /// cluster's exit border; the last child belongs to the
    /// destination proxy itself).
    ///
    /// # Errors
    ///
    /// Same conditions as [`HierarchicalRouter::route`].
    pub fn plan(&self, request: &ServiceRequest) -> Result<RoutePlan, RouteError> {
        self.plan_excluding(request, &[])
    }

    /// Like [`HierarchicalRouter::plan`], but never maps an excluded
    /// `(stage, cluster)` pair — the knob behind crankback recovery.
    pub fn plan_excluding(
        &self,
        request: &ServiceRequest,
        excluded: &[(StageId, ClusterId)],
    ) -> Result<RoutePlan, RouteError> {
        let source_cluster = self.hfc.cluster_of(request.source);
        let dest_cluster = self.hfc.cluster_of(request.destination);
        let (estimate, chain) =
            self.cluster_level_path(request, source_cluster, dest_cluster, excluded)?;
        Ok(self.plan_from_chain(request, estimate, chain))
    }

    /// Step 3 of Section 5 alone: dissects an already-selected
    /// cluster-level chain into child requests. Shared by the plain
    /// planning path and the frontier-replay path so both produce the
    /// same plan from the same chain by construction.
    fn plan_from_chain(
        &self,
        request: &ServiceRequest,
        estimate: f64,
        chain: Vec<(StageId, ClusterId)>,
    ) -> RoutePlan {
        let source_cluster = self.hfc.cluster_of(request.source);
        let dest_cluster = self.hfc.cluster_of(request.destination);
        let groups = dissect(&chain);

        let mut children = Vec::with_capacity(groups.len());
        let mut prev_cluster = source_cluster;
        for (gi, group) in groups.iter().enumerate() {
            let cluster = group.cluster;
            let source = if cluster == prev_cluster && gi == 0 {
                request.source
            } else {
                self.hfc.border(cluster, prev_cluster).local
            };
            let is_last = gi + 1 == groups.len();
            let dest = if !is_last {
                self.hfc.border(cluster, groups[gi + 1].cluster).local
            } else if cluster == dest_cluster {
                request.destination
            } else {
                self.hfc.border(cluster, dest_cluster).local
            };
            // The paper ships each child request to the cluster's exit
            // border; the final child is handled by pd itself.
            let solver = if is_last && cluster == dest_cluster {
                request.destination
            } else {
                dest
            };
            children.push(ChildSpec {
                cluster,
                solver,
                services: group
                    .stages
                    .iter()
                    .map(|&s| request.graph.service(s))
                    .collect(),
                source,
                dest,
            });
            prev_cluster = cluster;
        }
        RoutePlan {
            csp: chain,
            estimate,
            children,
        }
    }

    /// Solves one child request optimally within its cluster (what the
    /// child's solver proxy does upon receipt, Section 5.2). Returns
    /// `None` if the cluster cannot satisfy the chain — impossible for
    /// plans derived from converged state, kept for robustness.
    pub fn solve_child(&self, child: &ChildSpec) -> Option<Vec<Assignment>> {
        let graph = ServiceGraph::linear(child.services.clone());
        let (_, assignments) = solve_service_dag(
            &graph,
            child.source,
            child.dest,
            &self.cluster_providers[child.cluster.index()],
            &self.delays,
        )?;
        Some(assignments)
    }

    /// Step 4 of Section 5: composes child answers and border glue hops
    /// into the final service path.
    ///
    /// # Panics
    ///
    /// Panics if `answers` does not match the plan's children.
    pub fn compose(
        &self,
        request: &ServiceRequest,
        plan: RoutePlan,
        answers: &[Vec<Assignment>],
    ) -> HierRoute {
        assert_eq!(
            answers.len(),
            plan.children.len(),
            "one answer per child request required"
        );
        let source_cluster = self.hfc.cluster_of(request.source);
        let dest_cluster = self.hfc.cluster_of(request.destination);
        let mut path = PathBuilder::start(request.source);
        let mut prev_cluster = source_cluster;
        for (child, assignments) in plan.children.iter().zip(answers) {
            let cluster = child.cluster;
            if cluster != prev_cluster {
                let pair = self.hfc.border(prev_cluster, cluster);
                path.relay(pair.local);
                path.relay(pair.remote);
            }
            for a in assignments {
                path.serve(a.proxy, child.services[a.stage.index()]);
            }
            path.relay(child.dest);
            prev_cluster = cluster;
        }
        if prev_cluster != dest_cluster {
            let pair = self.hfc.border(prev_cluster, dest_cluster);
            path.relay(pair.local);
            path.relay(pair.remote);
        }

        HierRoute {
            path: path.finish(request.destination),
            child_count: plan.children.len(),
            csp: plan.csp,
            estimate: plan.estimate,
        }
    }

    /// The "HFC without topology abstraction" comparison of
    /// Section 6.2: every proxy has full state, but connectivity is
    /// still constrained to the HFC topology (inter-cluster traffic
    /// passes through border pairs). Optimal under that metric.
    ///
    /// # Errors
    ///
    /// Same conditions as [`HierarchicalRouter::route`].
    pub fn route_without_aggregation(
        &self,
        request: &ServiceRequest,
    ) -> Result<ServicePath, RouteError> {
        let constrained = HfcDelays::new(self.hfc, &self.delays);
        let router = crate::flat::FlatRouter::new(&self.global_providers, &constrained);
        router.route_expanded(request, |a, b| constrained.hops(a, b))
    }

    /// Computes the cluster-level shortest service path.
    ///
    /// Implemented as the destination-independent [`sink_frontier`] DP
    /// followed by the cheap [`close_frontier`] replay — one code path
    /// whether the frontier came from a fresh solve or a cache, which
    /// is what makes CSP-tier caching bit-identical to uncached
    /// routing.
    ///
    /// [`sink_frontier`]: HierarchicalRouter::sink_frontier
    /// [`close_frontier`]: HierarchicalRouter::close_frontier
    fn cluster_level_path(
        &self,
        request: &ServiceRequest,
        source_cluster: ClusterId,
        dest_cluster: ClusterId,
        excluded: &[(StageId, ClusterId)],
    ) -> Result<(f64, Vec<(StageId, ClusterId)>), RouteError> {
        if request.graph.is_empty() {
            let (cost, _) = self.inter_cluster_cost(request.source, source_cluster, dest_cluster);
            if !cost.is_finite() {
                return Err(RouteError::Infeasible);
            }
            return Ok((cost, Vec::new()));
        }
        let frontier = self.sink_frontier(request, source_cluster, dest_cluster, excluded)?;
        self.close_frontier(request, dest_cluster, &frontier)
    }

    /// The cluster-level DP (Section 5 steps 1–2) up to — but not
    /// including — the closing leg at the destination: every sink
    /// state is backtracked into a [`CspCandidate`] and returned.
    ///
    /// States are `(stage, cluster, entry proxy)`: the entry proxy — the
    /// border through which the path entered the stage's cluster (or
    /// the source proxy while still in the source's cluster) — is what
    /// lets the pass account for internal border-to-border distances
    /// (the back-tracking refinement). State *keys* normalize entries
    /// the planner has no coordinates for (a non-border source outside
    /// the destination's cluster) to a shared sentinel: such entries
    /// never contribute a cost term, so collapsing them keeps the DP
    /// exact while making the map's iteration order — and therefore
    /// every tie-break — independent of the concrete source proxy.
    /// That invariance is what lets a frontier computed for one source
    /// be replayed verbatim for another.
    fn sink_frontier(
        &self,
        request: &ServiceRequest,
        source_cluster: ClusterId,
        dest_cluster: ClusterId,
        excluded: &[(StageId, ClusterId)],
    ) -> Result<CspFrontier, RouteError> {
        let graph = &request.graph;

        // Candidate clusters per stage, from aggregate state; the load
        // summary (when attached) rules out clusters with no routable
        // member left.
        let mut candidates: Vec<Vec<ClusterId>> = Vec::with_capacity(graph.len());
        for stage in graph.stage_ids() {
            let service = graph.service(stage);
            let clusters: Vec<ClusterId> = self
                .sctc
                .clusters_with(service)
                .into_iter()
                .filter(|c| !excluded.contains(&(stage, *c)))
                .filter(|c| self.cluster_routable(*c))
                .collect();
            if clusters.is_empty() {
                return Err(RouteError::NoProvider(service));
            }
            candidates.push(clusters);
        }

        let order = graph
            .topological_order()
            .expect("service graphs are validated acyclic at construction");
        let mut states: Vec<StateMap> = vec![BTreeMap::new(); graph.len()];

        for &stage in &order {
            let si = stage.index();
            for &cluster in &candidates[si] {
                if graph.predecessors(stage).is_empty() {
                    // Transition from the source proxy's cluster.
                    let (cost, entry) = self.inter_cluster_step(
                        request.source,
                        source_cluster,
                        cluster,
                        dest_cluster,
                    );
                    let k = self.state_key(cluster, entry, dest_cluster);
                    upsert(&mut states[si], k, cost, None, entry);
                } else {
                    for &pred in graph.predecessors(stage) {
                        let pi = pred.index();
                        let prev_states: Vec<(StateKey, f64, ProxyId)> = states[pi]
                            .iter()
                            .map(|(&k, &(c, _, e))| (k, c, e))
                            .collect();
                        for (pkey, pcost, pentry) in prev_states {
                            let pcluster = ClusterId::new(pkey.0 as usize);
                            let (step, entry) =
                                self.inter_cluster_step(pentry, pcluster, cluster, dest_cluster);
                            let k = self.state_key(cluster, entry, dest_cluster);
                            upsert(&mut states[si], k, pcost + step, Some((pi, pkey)), entry);
                        }
                    }
                }
            }
        }

        // Backtrack every sink state, in the exact order the closing
        // loop will enumerate them.
        let mut out = Vec::new();
        for sink in graph.sinks() {
            let si = sink.index();
            for (&k, &(cost, _, entry)) in &states[si] {
                let cluster = ClusterId::new(k.0 as usize);
                let mut chain = Vec::new();
                let (mut ci, mut ck) = (si, k);
                loop {
                    chain.push((StageId::new(ci), ClusterId::new(ck.0 as usize)));
                    match states[ci].get(&ck).and_then(|&(_, prev, _)| prev) {
                        Some((pi, pk)) => {
                            ci = pi;
                            ck = pk;
                        }
                        None => break,
                    }
                }
                chain.reverse();
                out.push(CspCandidate {
                    chain,
                    cost,
                    cluster,
                    entry,
                });
            }
        }
        if out.is_empty() {
            return Err(RouteError::Infeasible);
        }
        Ok(CspFrontier { candidates: out })
    }

    /// The closing loop of the cluster-level solve: adds the final leg
    /// to the concrete destination per candidate and picks the cheapest
    /// finite total, first-seen winning ties — exactly the selection
    /// the monolithic solve performed.
    fn close_frontier(
        &self,
        request: &ServiceRequest,
        dest_cluster: ClusterId,
        frontier: &CspFrontier,
    ) -> Result<(f64, Vec<(StageId, ClusterId)>), RouteError> {
        let mut best: Option<(f64, usize)> = None;
        for (i, cand) in frontier.candidates.iter().enumerate() {
            let (close, _) =
                self.close_at_destination(cand.entry, cand.cluster, dest_cluster, request);
            let total = cand.cost + close;
            // Non-finite totals (a `Down` border or a saturated
            // cluster on every remaining route) are unroutable.
            if total.is_finite() && best.is_none_or(|(b, _)| total < b) {
                best = Some((total, i));
            }
        }
        let (total, i) = best.ok_or(RouteError::Infeasible)?;
        Ok((total, frontier.candidates[i].chain.clone()))
    }

    /// The normalized DP state key for (cluster, entry): entries the
    /// planner knows coordinates for keep their identity; unknown
    /// entries (only ever the request source) collapse to a shared
    /// sentinel so key order never depends on the concrete source.
    fn state_key(&self, cluster: ClusterId, entry: ProxyId, dest_cluster: ClusterId) -> StateKey {
        let e = if self.hfc.is_border(entry) || self.hfc.cluster_of(entry) == dest_cluster {
            entry.index() as u32
        } else {
            UNKNOWN_ENTRY
        };
        (cluster.index() as u32, e)
    }

    /// Whether CSP selection may map stages into `cluster` at all
    /// (always, unless an attached load summary says every member is
    /// down).
    fn cluster_routable(&self, cluster: ClusterId) -> bool {
        self.cluster_load
            .as_ref()
            .is_none_or(|load| load.is_routable(cluster))
    }

    /// The saturation penalty of entering `cluster`, from the attached
    /// load summary (zero without one).
    fn cluster_penalty(&self, cluster: ClusterId) -> f64 {
        self.cluster_load
            .as_ref()
            .map_or(0.0, |load| load.penalty(cluster))
    }

    /// Cost of stepping from (proxy `entry` inside `from`) into cluster
    /// `to`, and the resulting entry proxy.
    fn inter_cluster_step(
        &self,
        entry: ProxyId,
        from: ClusterId,
        to: ClusterId,
        dest_cluster: ClusterId,
    ) -> (f64, ProxyId) {
        if from == to {
            return (0.0, entry);
        }
        let pair = self.hfc.border(from, to);
        let internal = self.known_internal(entry, pair.local, dest_cluster);
        (
            internal + self.delays.delay(pair.local, pair.remote) + self.cluster_penalty(to),
            pair.remote,
        )
    }

    /// Cost of the final leg from (entry inside `from`) to the
    /// destination proxy.
    fn close_at_destination(
        &self,
        entry: ProxyId,
        from: ClusterId,
        dest_cluster: ClusterId,
        request: &ServiceRequest,
    ) -> (f64, ProxyId) {
        if from == dest_cluster {
            (
                self.known_internal(entry, request.destination, dest_cluster),
                request.destination,
            )
        } else {
            let pair = self.hfc.border(from, dest_cluster);
            let internal = self.known_internal(entry, pair.local, dest_cluster);
            let external = self.delays.delay(pair.local, pair.remote);
            let last = self.known_internal(pair.remote, request.destination, dest_cluster);
            (internal + external + last, request.destination)
        }
    }

    /// Cost of a relay-only inter-cluster hop sequence (empty service
    /// graphs).
    fn inter_cluster_cost(
        &self,
        source: ProxyId,
        source_cluster: ClusterId,
        dest_cluster: ClusterId,
    ) -> (f64, ProxyId) {
        if source_cluster == dest_cluster {
            (0.0, source)
        } else {
            let pair = self.hfc.border(source_cluster, dest_cluster);
            (
                self.known_internal(source, pair.local, dest_cluster)
                    + self.delays.delay(pair.local, pair.remote),
                pair.remote,
            )
        }
    }

    /// The internal distance between two proxies of the same cluster,
    /// *as far as the destination proxy can estimate it*: it knows the
    /// coordinates of its own cluster's members and of every border
    /// proxy; other proxies contribute a lower bound of zero. Disabled
    /// entirely when back-tracking is off.
    fn known_internal(&self, a: ProxyId, b: ProxyId, dest_cluster: ClusterId) -> f64 {
        if !self.config.backtracking || a == b {
            return 0.0;
        }
        let knows = |p: ProxyId| self.hfc.is_border(p) || self.hfc.cluster_of(p) == dest_cluster;
        if knows(a) && knows(b) {
            self.delays.delay(a, b)
        } else {
            0.0
        }
    }
}

/// A cluster-level DAG state: (cluster, normalized entry proxy).
type StateKey = (u32, u32);
/// Back-pointer to the predecessor state: (stage index, state).
type PrevRef = (usize, StateKey);
/// Best known cost, predecessor, and *actual* entry proxy per state,
/// for one stage. The key's entry component is normalized (unknown
/// proxies collapse to [`UNKNOWN_ENTRY`]); the value carries the real
/// proxy because subsequent steps look its cluster and delays up.
type StateMap = BTreeMap<StateKey, (f64, Option<PrevRef>, ProxyId)>;

/// Key sentinel for an entry proxy the planner has no coordinates for.
/// Such entries contribute no internal-distance terms, so all of them
/// are cost-equivalent and may share one DP state.
const UNKNOWN_ENTRY: u32 = u32::MAX;

fn upsert(map: &mut StateMap, k: StateKey, cost: f64, prev: Option<PrevRef>, entry: ProxyId) {
    match map.get(&k) {
        Some(&(existing, _, _)) if existing <= cost => {}
        _ => {
            map.insert(k, (cost, prev, entry));
        }
    }
}

/// A maximal run of consecutive stages mapped to the same cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Group {
    cluster: ClusterId,
    stages: Vec<StageId>,
}

fn dissect(chain: &[(StageId, ClusterId)]) -> Vec<Group> {
    let mut groups: Vec<Group> = Vec::new();
    for &(stage, cluster) in chain {
        match groups.last_mut() {
            Some(g) if g.cluster == cluster => g.stages.push(stage),
            _ => groups.push(Group {
                cluster,
                stages: vec![stage],
            }),
        }
    }
    groups
}

impl<D> CspRouter for HierarchicalRouter<'_, D>
where
    D: DelayModel,
{
    fn solve_frontier(&self, request: &ServiceRequest) -> Result<CspFrontier, RouteError> {
        // Empty service graphs have no DP to reuse; callers route them
        // through the plain path (see the trait docs).
        if request.graph.is_empty() {
            return Err(RouteError::Infeasible);
        }
        let source_cluster = self.hfc.cluster_of(request.source);
        let dest_cluster = self.hfc.cluster_of(request.destination);
        self.sink_frontier(request, source_cluster, dest_cluster, &[])
    }

    fn route_from_frontier(
        &self,
        request: &ServiceRequest,
        frontier: &CspFrontier,
    ) -> Result<ServicePath, RouteError> {
        let dest_cluster = self.hfc.cluster_of(request.destination);
        let (estimate, chain) = self.close_frontier(request, dest_cluster, frontier)?;
        let plan = self.plan_from_chain(request, estimate, chain);
        let mut answers = Vec::with_capacity(plan.children.len());
        for child in &plan.children {
            answers.push(self.solve_child(child).ok_or(RouteError::Infeasible)?);
        }
        Ok(self.compose(request, plan, &answers).path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use son_overlay::ServiceId;

    fn sid(i: usize) -> ServiceId {
        ServiceId::new(i)
    }

    use crate::fixtures::paper_example;

    #[test]
    fn fixture_reproduces_paper_borders() {
        let (hfc, _, _) = paper_example();
        assert_eq!(hfc.cluster_count(), 4);
        let check = |a: usize, b: usize, la: usize, lb: usize| {
            let pair = hfc.border(ClusterId::new(a), ClusterId::new(b));
            assert_eq!(pair.local, ProxyId::new(la), "border C{a}->C{b}");
            assert_eq!(pair.remote, ProxyId::new(lb), "border C{a}->C{b}");
        };
        check(0, 1, 1, 4); // (C0.1, C1.0)
        check(0, 2, 0, 10); // (C0.0, C2.2)
        check(0, 3, 0, 11); // (C0.0, C3.0)
        check(1, 2, 6, 8); // (C1.2, C2.0)
        check(1, 3, 5, 11); // (C1.1, C3.0)
        check(2, 3, 10, 11); // (C2.2, C3.0)
    }

    /// The full Section 5 walk-through: request
    /// `C0.2 → S1→S2→S3→S4→S5 → C2.1`.
    #[test]
    fn paper_example_end_to_end() {
        let (hfc, delays, services) = paper_example();
        let router =
            HierarchicalRouter::from_services(&hfc, &services, &delays, HierConfig::default());
        let request = ServiceRequest::new(
            ProxyId::new(2), // C0.2
            ServiceGraph::linear(vec![sid(1), sid(2), sid(3), sid(4), sid(5)]),
            ProxyId::new(9), // C2.1
        );
        let route = router.route(&request).unwrap();

        // CSP: S1/C0, S2/C1, S3/C1, S4/C1, S5/C2 (Figure 7(c) bold).
        let csp_clusters: Vec<usize> = route.csp.iter().map(|&(_, c)| c.index()).collect();
        assert_eq!(csp_clusters, vec![0, 1, 1, 1, 2]);
        // Three child requests (Figure 7(d)).
        assert_eq!(route.child_count, 3);

        // Final service path (Figure 7(e)):
        // C0.2 → S1/C0.0 → -/C0.1 → S2/C1.0 → S3/C1.1 → S4/C1.1
        //      → -/C1.2 → S5/C2.0 → C2.1
        let rendered: Vec<String> = route.path.hops().iter().map(|h| h.to_string()).collect();
        assert_eq!(
            rendered,
            vec!["-/p2", "s1/p0", "-/p1", "s2/p4", "s3/p5", "s4/p5", "-/p6", "s5/p8", "-/p9"],
            "got {}",
            route.path
        );

        // True length: 1+4+20+2+0+3+25+0+2 = 57.
        assert!((route.path.length(&delays) - 57.0).abs() < 1e-9);

        // And it validates against the request.
        route
            .path
            .validate(&request, |p, s| services[p.index()].contains(s))
            .unwrap();
    }

    /// The text's path-1 vs path-2 comparison: with back-tracking the
    /// router must weigh internal border distances; without it, the two
    /// candidate cluster paths tie on external links (45 each).
    #[test]
    fn backtracking_prefers_cheaper_internal_paths() {
        let (hfc, delays, services) = paper_example();
        // Request S1 → S5 from C0.2 to C2.1: S1 ∈ {C0, C3},
        // S5 ∈ {C2}. Candidate CSPs: C0→C2 direct (ext 40) or
        // C3→C2 (ext 30 + 15 = 45)... with internals the comparison
        // shifts.
        let router =
            HierarchicalRouter::from_services(&hfc, &services, &delays, HierConfig::default());
        let request = ServiceRequest::new(
            ProxyId::new(2),
            ServiceGraph::linear(vec![sid(1), sid(5)]),
            ProxyId::new(9),
        );
        let route = router.route(&request).unwrap();
        route
            .path
            .validate(&request, |p, s| services[p.index()].contains(s))
            .unwrap();
        // Whatever CSP wins, the composed path must be at least as good
        // as the no-backtracking one under true delays *on average*;
        // here specifically, check both produce valid paths and the
        // backtracking estimate includes internal terms (strictly
        // larger than pure external sums).
        let naive = HierarchicalRouter::from_services(
            &hfc,
            &services,
            &delays,
            HierConfig {
                backtracking: false,
            },
        );
        let naive_route = naive.route(&request).unwrap();
        naive_route
            .path
            .validate(&request, |p, s| services[p.index()].contains(s))
            .unwrap();
        assert!(route.estimate >= naive_route.estimate);
    }

    #[test]
    fn intra_cluster_request_never_leaves_the_cluster() {
        let (hfc, delays, services) = paper_example();
        let router =
            HierarchicalRouter::from_services(&hfc, &services, &delays, HierConfig::default());
        // S2 → S3 fully inside C1: C1.3 → C1.2.
        let request = ServiceRequest::new(
            ProxyId::new(7),
            ServiceGraph::linear(vec![sid(2), sid(3)]),
            ProxyId::new(6),
        );
        let route = router.route(&request).unwrap();
        assert_eq!(route.child_count, 1);
        for hop in route.path.hops() {
            assert_eq!(
                hfc.cluster_of(hop.proxy),
                ClusterId::new(1),
                "hop {hop} left the cluster"
            );
        }
        route
            .path
            .validate(&request, |p, s| services[p.index()].contains(s))
            .unwrap();
    }

    #[test]
    fn relay_only_request_crosses_borders() {
        let (hfc, delays, services) = paper_example();
        let router =
            HierarchicalRouter::from_services(&hfc, &services, &delays, HierConfig::default());
        let request = ServiceRequest::new(
            ProxyId::new(2), // C0.2
            ServiceGraph::linear(vec![]),
            ProxyId::new(12), // C3.1
        );
        let route = router.route(&request).unwrap();
        // C0.2 → C0.0 (border) → C3.0 (border) → C3.1.
        let proxies: Vec<usize> = route.path.hops().iter().map(|h| h.proxy.index()).collect();
        assert_eq!(proxies, vec![2, 0, 11, 12]);
        // d(C0.2, C0.0) + ext(C0, C3) + d(C3.0, C3.1) = 1 + 30 + 2.
        assert_eq!(route.path.length(&delays), 33.0);
    }

    #[test]
    fn missing_service_is_reported() {
        let (hfc, delays, services) = paper_example();
        let router =
            HierarchicalRouter::from_services(&hfc, &services, &delays, HierConfig::default());
        let request = ServiceRequest::new(
            ProxyId::new(2),
            ServiceGraph::linear(vec![sid(77)]),
            ProxyId::new(9),
        );
        assert_eq!(router.route(&request), Err(RouteError::NoProvider(sid(77))));
    }

    #[test]
    fn without_aggregation_is_at_least_as_short() {
        let (hfc, delays, services) = paper_example();
        let router =
            HierarchicalRouter::from_services(&hfc, &services, &delays, HierConfig::default());
        // Compare on several requests: full state under the same HFC
        // connectivity can never be worse than the aggregated route
        // (both evaluated on true delays, which here equal the HFC
        // metric because cross-cluster entries are the border closure).
        let cases = [
            (2usize, vec![1usize, 2, 3, 4, 5], 9usize),
            (3, vec![4, 5], 10),
            (12, vec![1, 2], 9),
            (8, vec![5, 2], 1),
        ];
        for (src, svc, dst) in cases {
            let request = ServiceRequest::new(
                ProxyId::new(src),
                ServiceGraph::linear(svc.iter().map(|&i| sid(i)).collect()),
                ProxyId::new(dst),
            );
            let hier = router.route(&request).unwrap();
            let full = router.route_without_aggregation(&request).unwrap();
            full.validate(&request, |p, s| services[p.index()].contains(s))
                .unwrap();
            let lh = hier.path.length(&delays);
            let lf = full.length(&delays);
            assert!(
                lf <= lh + 1e-9,
                "full-state route ({lf}) must not exceed aggregated route ({lh}) \
                 for {src}→{dst} via {svc:?}"
            );
        }
    }

    #[test]
    fn frontier_replay_matches_plain_route() {
        let (hfc, delays, services) = paper_example();
        let router =
            HierarchicalRouter::from_services(&hfc, &services, &delays, HierConfig::default());
        let cases = [
            (2usize, vec![1usize, 2, 3, 4, 5], 9usize),
            (3, vec![4, 5], 10),
            (12, vec![1, 2], 9),
            (8, vec![5, 2], 1),
            (7, vec![2, 3], 6),
        ];
        for (src, svc, dst) in cases {
            let request = ServiceRequest::new(
                ProxyId::new(src),
                ServiceGraph::linear(svc.iter().map(|&i| sid(i)).collect()),
                ProxyId::new(dst),
            );
            let plain = router.route(&request).unwrap();
            let frontier = router.solve_frontier(&request).unwrap();
            let replayed = router.route_from_frontier(&request, &frontier).unwrap();
            assert_eq!(
                plain.path, replayed,
                "frontier replay diverged for {src}→{dst} via {svc:?}"
            );
        }
    }

    /// The reuse the serving engine relies on: a frontier computed for
    /// one unknown source (non-border, outside the destination's
    /// cluster) replayed for *another* unknown source in the same
    /// cluster must give exactly that source's own route.
    #[test]
    fn frontier_is_shareable_across_unknown_sources() {
        let (hfc, delays, services) = paper_example();
        let router =
            HierarchicalRouter::from_services(&hfc, &services, &delays, HierConfig::default());
        // C0 = {0, 1, 2, 3}; borders of C0 are 0 and 1, so 2 and 3 are
        // interchangeable unknown sources for a C2 destination.
        for (a, b) in [(2usize, 3usize), (3, 2)] {
            assert!(!hfc.is_border(ProxyId::new(a)) && !hfc.is_border(ProxyId::new(b)));
            let req_a = ServiceRequest::new(
                ProxyId::new(a),
                ServiceGraph::linear(vec![sid(1), sid(2), sid(5)]),
                ProxyId::new(9),
            );
            let req_b = ServiceRequest::new(
                ProxyId::new(b),
                ServiceGraph::linear(vec![sid(1), sid(2), sid(5)]),
                ProxyId::new(10),
            );
            let frontier_a = router.solve_frontier(&req_a).unwrap();
            let frontier_b = router.solve_frontier(&req_b).unwrap();
            let borrowed = router.route_from_frontier(&req_b, &frontier_a).unwrap();
            let own = router.route(&req_b).unwrap();
            assert_eq!(frontier_a, frontier_b, "frontiers must be source-invariant");
            assert_eq!(borrowed, own.path, "replay via {a}'s frontier diverged");
        }
    }

    #[test]
    fn nonlinear_request_routes_hierarchically() {
        let (hfc, delays, services) = paper_example();
        let router =
            HierarchicalRouter::from_services(&hfc, &services, &delays, HierConfig::default());
        // Two configurations: [S1, S5] or [S4, S5].
        let graph = ServiceGraph::builder()
            .stage(sid(1))
            .stage(sid(4))
            .stage(sid(5))
            .edge(0, 2)
            .edge(1, 2)
            .build()
            .unwrap();
        let request = ServiceRequest::new(ProxyId::new(2), graph, ProxyId::new(9));
        let route = router.route(&request).unwrap();
        route
            .path
            .validate(&request, |p, s| services[p.index()].contains(s))
            .unwrap();
        let chain = route.path.service_chain();
        assert_eq!(chain.len(), 2);
        assert_eq!(*chain.last().unwrap(), sid(5));
    }
}

#[cfg(test)]
mod crankback_tests {
    use super::*;
    use crate::fixtures::paper_example;
    use son_overlay::ServiceId;

    fn sid(i: usize) -> ServiceId {
        ServiceId::new(i)
    }

    /// Builds a router whose aggregate state *lies*: cluster C0 still
    /// advertises S1, but its SCT_P no longer backs it (both providers
    /// left). C3 genuinely has S1 (via C3.1).
    fn router_with_stale_aggregate<'a>(
        hfc: &'a HfcTopology,
        services: &[son_overlay::ServiceSet],
        delays: &'a son_overlay::DelayMatrix,
    ) -> HierarchicalRouter<'a, &'a son_overlay::DelayMatrix> {
        let mut sctc = SctC::new();
        let mut tables = Vec::new();
        for c in hfc.clusters() {
            let mut table = SctP::new();
            for &m in hfc.members(c) {
                let mut set = services[m.index()].clone();
                if c == ClusterId::new(0) {
                    // S1 vanished from C0's proxies...
                    let without: son_overlay::ServiceSet =
                        set.iter().filter(|s| *s != sid(1)).collect();
                    set = without;
                }
                table.update(m, set);
            }
            // ...but the aggregate still advertises the old contents.
            let mut advertised = table.aggregate();
            if c == ClusterId::new(0) {
                advertised.insert(sid(1));
            }
            sctc.update(c, advertised);
            tables.push(table);
        }
        HierarchicalRouter::from_tables(hfc, sctc, &tables, delays, HierConfig::default())
    }

    #[test]
    fn plain_route_fails_on_stale_aggregates() {
        let (hfc, delays, services) = paper_example();
        let router = router_with_stale_aggregate(&hfc, &services, &delays);
        // S1 then S5: the CSP maps S1 to C0 (closest advertiser), whose
        // table cannot actually solve it.
        let request = ServiceRequest::new(
            ProxyId::new(2),
            ServiceGraph::linear(vec![sid(1), sid(5)]),
            ProxyId::new(9),
        );
        assert_eq!(router.route(&request), Err(RouteError::Infeasible));
    }

    #[test]
    fn crankback_recovers_via_another_cluster() {
        let (hfc, delays, services) = paper_example();
        let router = router_with_stale_aggregate(&hfc, &services, &delays);
        let request = ServiceRequest::new(
            ProxyId::new(2),
            ServiceGraph::linear(vec![sid(1), sid(5)]),
            ProxyId::new(9),
        );
        let route = router
            .route_with_recovery(&request, 4)
            .expect("C3 can still provide S1");
        // S1 must now be served by C3.1 (proxy 12), the only remaining
        // provider.
        let s1_hop = route
            .path
            .hops()
            .iter()
            .find(|h| h.service == Some(sid(1)))
            .expect("S1 is on the path");
        assert_eq!(s1_hop.proxy, ProxyId::new(12));
        // And the path is feasible against the *actual* service state.
        route
            .path
            .validate(&request, |p, s| {
                if s == sid(1) && hfc.cluster_of(p) == ClusterId::new(0) {
                    false // S1 really is gone from C0
                } else {
                    services[p.index()].contains(s)
                }
            })
            .unwrap();
    }

    #[test]
    fn recovery_matches_plain_route_on_consistent_state() {
        let (hfc, delays, services) = paper_example();
        let router =
            HierarchicalRouter::from_services(&hfc, &services, &delays, HierConfig::default());
        let request = ServiceRequest::new(
            ProxyId::new(2),
            ServiceGraph::linear((1..=5).map(sid).collect()),
            ProxyId::new(9),
        );
        let plain = router.route(&request).unwrap();
        let recovered = router.route_with_recovery(&request, 3).unwrap();
        assert_eq!(plain.path, recovered.path);
    }

    #[test]
    fn attempt_budget_is_respected() {
        let (hfc, delays, services) = paper_example();
        // Every cluster's aggregate advertises a phantom service 77
        // nobody has: recovery must exhaust its budget and fail.
        let mut sctc = SctC::new();
        let mut tables = Vec::new();
        for c in hfc.clusters() {
            let mut table = SctP::new();
            for &m in hfc.members(c) {
                table.update(m, services[m.index()].clone());
            }
            let mut advertised = table.aggregate();
            advertised.insert(sid(77));
            sctc.update(c, advertised);
            tables.push(table);
        }
        let router =
            HierarchicalRouter::from_tables(&hfc, sctc, &tables, &delays, HierConfig::default());
        let request = ServiceRequest::new(
            ProxyId::new(2),
            ServiceGraph::linear(vec![sid(77)]),
            ProxyId::new(9),
        );
        // 4 clusters advertise it; with only 2 attempts we fail with
        // Infeasible (budget), with 5 we fail with NoProvider (all
        // advertisers excluded).
        assert_eq!(
            router.route_with_recovery(&request, 2),
            Err(RouteError::Infeasible)
        );
        assert_eq!(
            router.route_with_recovery(&request, 5),
            Err(RouteError::NoProvider(sid(77)))
        );
    }
}
