//! Cluster-level solve reuse: the CSP **sink frontier**.
//!
//! The expensive part of hierarchical routing is the cluster-level
//! shortest-path pass (Section 5 steps 1–2): a DP over every stage's
//! candidate clusters. Its interior depends on the concrete endpoints
//! only weakly — the destination proxy matters solely through its
//! *cluster* (it decides which internal distances the planner may use),
//! and the source proxy matters only when the planner knows its
//! coordinates (it is a border, or lives in the destination's cluster).
//! Everything endpoint-specific happens in the cheap *closing* step and
//! in the intra-cluster child solves.
//!
//! [`CspFrontier`] captures exactly the reusable part: every sink state
//! of the DP with its cost, entry proxy, and backtracked cluster chain,
//! in the deterministic order the solver enumerates them. Replaying the
//! closing step over a frontier ([`CspRouter::route_from_frontier`])
//! selects the same chain the full solve would, bit for bit, because it
//! *is* the full solve's closing loop — the serving engine caches
//! frontiers keyed by (ingress cluster, source class, destination
//! cluster, service-DAG shape) and shares them across concrete
//! requests.

use crate::flat::RouteError;
use crate::path::ServicePath;
use son_overlay::{ClusterId, ProxyId, ServiceRequest, StageId};

/// One sink state of the cluster-level DP: a complete stage→cluster
/// chain, the cost of reaching its final state (before the closing
/// leg), and the proxy through which the path entered the final
/// cluster.
///
/// When `entry` is a proxy the planner has no coordinates for (the
/// typical client source), its identity never contributes to any cost
/// term — frontiers are then exact for *any* such source, which is what
/// makes cross-request reuse sound.
#[derive(Debug, Clone, PartialEq)]
pub struct CspCandidate {
    /// Cluster assigned to each stage, in path order, ending at the
    /// sink stage this state belongs to.
    pub chain: Vec<(StageId, ClusterId)>,
    /// Cost accumulated by the DP up to (and including) entering the
    /// final cluster — the closing leg to the destination is not
    /// included.
    pub cost: f64,
    /// The final cluster of the chain.
    pub cluster: ClusterId,
    /// The proxy through which the path entered the final cluster (a
    /// border's remote end, or the request source while still in its
    /// own cluster).
    pub entry: ProxyId,
}

/// Every sink state of one cluster-level solve, in the exact order the
/// solver's closing loop enumerates them. Closing a frontier at a
/// concrete destination reproduces the full solve's selection,
/// including tie-breaks.
#[derive(Debug, Clone, PartialEq)]
pub struct CspFrontier {
    /// The sink states, in enumeration order.
    pub candidates: Vec<CspCandidate>,
}

impl CspFrontier {
    /// Number of sink states carried.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// `true` when no sink state was reachable.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }
}

/// A router whose cluster-level solve can be split into a reusable
/// frontier plus a per-request closing replay.
///
/// Contract: for any request `r`,
/// `route_from_frontier(r, &solve_frontier(r)?)` returns exactly what
/// the router's plain `route_path(r)` returns — same hops, same cost,
/// same error. The split exists so callers may compute the frontier
/// once and replay it for every request sharing the frontier's key.
pub trait CspRouter {
    /// Runs the cluster-level DP for `request` and returns its sink
    /// frontier without closing at the destination.
    ///
    /// Not defined for empty service graphs (their cluster-level cost
    /// is a single concrete-endpoint lookup with nothing to reuse);
    /// callers must route those through the plain path.
    ///
    /// # Errors
    ///
    /// [`RouteError::NoProvider`] when a demanded service exists in no
    /// cluster's aggregate; [`RouteError::Infeasible`] when no sink
    /// state is reachable.
    fn solve_frontier(&self, request: &ServiceRequest) -> Result<CspFrontier, RouteError>;

    /// Closes `frontier` at the request's destination, dissects the
    /// winning chain, solves the intra-cluster children, and composes
    /// the final path — everything the full solve does *after* the DP.
    ///
    /// # Errors
    ///
    /// [`RouteError::Infeasible`] when every candidate closes at a
    /// non-finite total or a child is unsolvable.
    fn route_from_frontier(
        &self,
        request: &ServiceRequest,
        frontier: &CspFrontier,
    ) -> Result<ServicePath, RouteError>;
}
