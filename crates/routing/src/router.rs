//! The unified routing interface.
//!
//! Every router in the workspace — [`FlatRouter`],
//! [`crate::hier::HierarchicalRouter`], and son-core's three-level
//! `MultiLevelRouter` — answers the same question: *given a service
//! request, produce a concrete service path or explain why none
//! exists*. [`Router`] captures exactly that, so benches and tests can
//! swap routing strategies generically instead of hard-coding one
//! concrete type per call site.

use crate::flat::{FlatRouter, RouteError};
use crate::hier::HierarchicalRouter;
use crate::path::ServicePath;
use crate::providers::ProviderLookup;
use son_overlay::{DelayModel, ServiceRequest};

/// A routing strategy: maps a service request to a concrete
/// [`ServicePath`].
///
/// Implementors may expose richer per-strategy results (the
/// hierarchical router's `HierRoute` carries cluster-level decisions,
/// for instance); this trait is the lowest common denominator used by
/// generic benches, comparisons, and tests.
pub trait Router {
    /// Computes a service path for `request`.
    ///
    /// # Errors
    ///
    /// [`RouteError::NoProvider`] when a demanded service has no
    /// visible provider; [`RouteError::Infeasible`] when no
    /// configuration of the service graph can be mapped.
    fn route_path(&self, request: &ServiceRequest) -> Result<ServicePath, RouteError>;
}

impl<P, D> Router for FlatRouter<P, D>
where
    P: ProviderLookup,
    D: DelayModel,
{
    fn route_path(&self, request: &ServiceRequest) -> Result<ServicePath, RouteError> {
        self.route(request)
    }
}

impl<D> Router for HierarchicalRouter<'_, D>
where
    D: DelayModel,
{
    fn route_path(&self, request: &ServiceRequest) -> Result<ServicePath, RouteError> {
        self.route(request).map(|route| route.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hier::HierConfig;
    use crate::providers::ProviderIndex;
    use son_overlay::{DelayMatrix, ProxyId, ServiceGraph, ServiceId, ServiceSet};

    #[test]
    fn flat_and_hier_route_generically() {
        // Six proxies on a line, two clusters of three; service 0 on
        // proxy 1, service 1 on proxy 4.
        let n = 6;
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                values[i * n + j] = (i as f64 - j as f64).abs();
            }
        }
        let delays = DelayMatrix::from_values(n, values);
        let mut sets = vec![ServiceSet::new(); n];
        sets[1] = ServiceSet::from_iter([ServiceId::new(0)]);
        sets[4] = ServiceSet::from_iter([ServiceId::new(1)]);
        let request = ServiceRequest::new(
            ProxyId::new(0),
            ServiceGraph::linear(vec![ServiceId::new(0), ServiceId::new(1)]),
            ProxyId::new(5),
        );

        let providers = ProviderIndex::from_service_sets(&sets);
        let flat = FlatRouter::new(&providers, &delays);
        let clustering = son_clustering::Clustering::from_labels(&[0, 0, 0, 1, 1, 1]);
        let hfc = son_overlay::HfcTopology::build(&clustering, &delays);
        let hier = HierarchicalRouter::from_services(&hfc, &sets, &delays, HierConfig::default());

        // One generic helper drives both strategies.
        fn drive<R: Router>(router: &R, request: &ServiceRequest) -> ServicePath {
            router.route_path(request).expect("request is routable")
        }
        for path in [drive(&flat, &request), drive(&hier, &request)] {
            path.validate(&request, |p, s| sets[p.index()].contains(s))
                .unwrap();
            assert_eq!(
                path.service_chain(),
                vec![ServiceId::new(0), ServiceId::new(1)]
            );
        }

        // The trait is object-safe: dynamic dispatch works too.
        let routers: Vec<&dyn Router> = vec![&flat, &hier];
        for r in routers {
            assert!(r.route_path(&request).is_ok());
        }
    }

    /// Serving engines share routers' inputs across worker threads, so
    /// every router (and the path builder workers use) must stay
    /// `Send + Sync`. Adding unsynchronized interior mutability to any
    /// of these types turns this test into a compile error.
    #[test]
    fn routers_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FlatRouter<ProviderIndex, DelayMatrix>>();
        assert_send_sync::<FlatRouter<&ProviderIndex, &(dyn DelayModel + Send + Sync)>>();
        assert_send_sync::<FlatRouter<ProviderIndex, crate::cost::LoadAwareDelays<'_, DelayMatrix>>>(
        );
        assert_send_sync::<HierarchicalRouter<'_, DelayMatrix>>();
        assert_send_sync::<HierarchicalRouter<'_, &DelayMatrix>>();
        assert_send_sync::<crate::path::PathBuilder>();
        assert_send_sync::<ServicePath>();
        assert_send_sync::<RouteError>();
    }
}
