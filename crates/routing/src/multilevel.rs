//! Recursive divide-and-conquer routing over a [`Hierarchy`] of any
//! depth — the paper's Section 5 algorithm applied level by level.
//!
//! The destination proxy first computes a service path at the *top*
//! level of the hierarchy (one aggregate service set and one border
//! pair per top-level group), dissects it into per-group child chains,
//! and solves each chain one level down with the same machinery, until
//! the chains bottom out in single base clusters where the flat
//! service-DAG method over `SCT_P` finishes the job. Relay movement
//! recurses the same way: a hop across two units of level *k* enters
//! through that level's border pair and resolves the approach legs at
//! level *k − 1*.
//!
//! Knowledge model, generalizing the paper's visibility rules: the
//! planner at level *k* sees one aggregate per unit and the border
//! pairs between units; only the base-cluster level sees individual
//! proxies. A depth-2 hierarchy makes this router reproduce
//! [`HierarchicalRouter`](crate::hier::HierarchicalRouter) hop for hop
//! (see the `depth_two_reduces_to_the_bilevel_router` test).

use crate::flat::RouteError;
use crate::hier::HierConfig;
use crate::path::{PathBuilder, ServicePath};
use crate::providers::ProviderIndex;
use crate::router::Router;
use crate::sdag::solve_service_dag;
use son_overlay::{
    ClusterId, DelayModel, HfcTopology, Hierarchy, ProxyId, ServiceGraph, ServiceId,
    ServiceRequest, ServiceSet, StageId,
};
use son_state::{ClusterLoad, SctP};
use std::collections::BTreeMap;

/// A level-k DAG state: (unit, entry proxy).
type StateKey = (u32, u32);
/// Best known cost and predecessor per state, for one stage.
type StateMap = BTreeMap<StateKey, (f64, Option<(usize, StateKey)>)>;

fn key(unit: usize, entry: ProxyId) -> StateKey {
    (unit as u32, entry.index() as u32)
}

fn unkey(k: StateKey) -> (usize, ProxyId) {
    (k.0 as usize, ProxyId::new(k.1 as usize))
}

fn upsert(map: &mut StateMap, k: StateKey, cost: f64, prev: Option<(usize, StateKey)>) {
    match map.get(&k) {
        Some(&(existing, _)) if existing <= cost => {}
        _ => {
            map.insert(k, (cost, prev));
        }
    }
}

/// The recursive multi-level router.
///
/// Holds the converged distributed state at every level: one
/// `ProviderIndex` per base cluster (the `SCT_P` view), one aggregate
/// service set per cluster, and one merged aggregate per upper-level
/// unit.
#[derive(Debug)]
pub struct MultiLevelRouter<'a, D> {
    hfc: &'a HfcTopology,
    hierarchy: &'a Hierarchy,
    delays: D,
    cluster_providers: Vec<ProviderIndex>,
    cluster_aggregates: Vec<ServiceSet>,
    /// `upper_aggregates[l - 2][u]`: merged service set of unit `u` at
    /// level `l`, for every level `2..=top`.
    upper_aggregates: Vec<Vec<ServiceSet>>,
    config: HierConfig,
    cluster_load: Option<ClusterLoad>,
}

impl<'a, D> MultiLevelRouter<'a, D>
where
    D: DelayModel,
{
    /// Builds the router from per-proxy installed services (producing
    /// the same tables the state protocol converges to at every level).
    ///
    /// # Panics
    ///
    /// Panics if `services.len()` differs from the proxy count or the
    /// hierarchy was built over a different topology.
    pub fn from_services(
        hfc: &'a HfcTopology,
        hierarchy: &'a Hierarchy,
        services: &[ServiceSet],
        delays: D,
        config: HierConfig,
    ) -> Self {
        assert_eq!(
            services.len(),
            hfc.proxy_count(),
            "one service set per proxy required"
        );
        assert_eq!(
            hierarchy.unit_count(1),
            hfc.cluster_count(),
            "hierarchy and topology disagree on the cluster count"
        );
        let mut cluster_providers = Vec::with_capacity(hfc.cluster_count());
        let mut cluster_aggregates = Vec::with_capacity(hfc.cluster_count());
        for c in hfc.clusters() {
            let mut table = SctP::new();
            for &m in hfc.members(c) {
                table.update(m, services[m.index()].clone());
            }
            cluster_providers.push(ProviderIndex::from_sctp(&table));
            cluster_aggregates.push(table.aggregate());
        }
        let upper_aggregates: Vec<Vec<ServiceSet>> = (2..=hierarchy.top_level())
            .map(|level| {
                (0..hierarchy.unit_count(level))
                    .map(|u| {
                        let mut set = ServiceSet::new();
                        for &c in hierarchy.clusters_under(level, u) {
                            set.merge(&cluster_aggregates[c]);
                        }
                        set
                    })
                    .collect()
            })
            .collect();
        MultiLevelRouter {
            hfc,
            hierarchy,
            delays,
            cluster_providers,
            cluster_aggregates,
            upper_aggregates,
            config,
            cluster_load: None,
        }
    }

    /// Attaches per-cluster load/health summaries: cluster-level
    /// mapping skips unroutable clusters and penalizes saturated ones,
    /// and an upper-level unit is mapped only while some cluster under
    /// it stays routable.
    pub fn with_cluster_load(mut self, load: ClusterLoad) -> Self {
        self.cluster_load = Some(load);
        self
    }

    /// The hierarchy this router plans over.
    pub fn hierarchy(&self) -> &Hierarchy {
        self.hierarchy
    }

    /// The merged aggregate service set of unit `unit` at `level`
    /// (`1 <= level <= top`).
    pub fn unit_aggregate(&self, level: usize, unit: usize) -> &ServiceSet {
        if level == 1 {
            &self.cluster_aggregates[unit]
        } else {
            &self.upper_aggregates[level - 2][unit]
        }
    }

    /// Routes `request` through the full hierarchy.
    ///
    /// # Errors
    ///
    /// [`RouteError::NoProvider`] when some demanded service appears in
    /// no top-level aggregate; [`RouteError::Infeasible`] when no
    /// configuration admits a full mapping.
    pub fn route(&self, request: &ServiceRequest) -> Result<ServicePath, RouteError> {
        let top = self.hierarchy.top_level();
        let allowed: Vec<usize> = (0..self.hierarchy.unit_count(top)).collect();
        let mut path = PathBuilder::start(request.source);
        self.solve_graph(
            top,
            &allowed,
            request.destination,
            &request.graph,
            &mut path,
        )?;
        Ok(path.finish(request.destination))
    }

    /// The unit at `level` containing `proxy`.
    fn unit_of(&self, level: usize, proxy: ProxyId) -> usize {
        self.hierarchy.ancestor_of_proxy(self.hfc, level, proxy)
    }

    /// Solves `graph` over the units of `level` listed in `allowed`,
    /// appending hops from `path.current()` to `dest`.
    fn solve_graph(
        &self,
        level: usize,
        allowed: &[usize],
        dest: ProxyId,
        graph: &ServiceGraph,
        path: &mut PathBuilder,
    ) -> Result<(), RouteError> {
        let source = path.current();
        let src_unit = self.unit_of(level, source);
        let dst_unit = self.unit_of(level, dest);

        if graph.is_empty() {
            if src_unit != dst_unit {
                let pair = self
                    .hierarchy
                    .unit_border(self.hfc, level, src_unit, dst_unit);
                if !self.delays.delay(pair.local, pair.remote).is_finite() {
                    return Err(RouteError::Infeasible);
                }
                self.descend(level, pair.local, path);
                path.relay(pair.remote);
            }
            self.descend(level, dest, path);
            return Ok(());
        }

        let chain = self.plan_over(level, allowed, source, dest, graph)?;

        // Dissect into maximal runs of stages in the same unit.
        let mut runs: Vec<(usize, Vec<StageId>)> = Vec::new();
        for &(stage, unit) in &chain {
            match runs.last_mut() {
                Some((u, stages)) if *u == unit => stages.push(stage),
                _ => runs.push((unit, vec![stage])),
            }
        }

        let mut prev = src_unit;
        for (ri, (unit, stages)) in runs.iter().enumerate() {
            if *unit != prev {
                let pair = self.hierarchy.unit_border(self.hfc, level, prev, *unit);
                self.descend(level, pair.local, path);
                path.relay(pair.remote);
            }
            let exit = if ri + 1 < runs.len() {
                self.hierarchy
                    .unit_border(self.hfc, level, *unit, runs[ri + 1].0)
                    .local
            } else if *unit == dst_unit {
                dest
            } else {
                self.hierarchy
                    .unit_border(self.hfc, level, *unit, dst_unit)
                    .local
            };
            let services: Vec<ServiceId> = stages.iter().map(|&s| graph.service(s)).collect();
            self.solve_chain(level, *unit, exit, &services, path)?;
            prev = *unit;
        }
        if prev != dst_unit {
            let pair = self.hierarchy.unit_border(self.hfc, level, prev, dst_unit);
            self.descend(level, pair.local, path);
            path.relay(pair.remote);
        }
        self.descend(level, dest, path);
        Ok(())
    }

    /// Solves a linear service chain inside `unit` of `level`, from
    /// `path.current()` to `dest` (both inside `unit`).
    fn solve_chain(
        &self,
        level: usize,
        unit: usize,
        dest: ProxyId,
        services: &[ServiceId],
        path: &mut PathBuilder,
    ) -> Result<(), RouteError> {
        if level == 1 {
            let graph = ServiceGraph::linear(services.to_vec());
            let (_, assignments) = solve_service_dag(
                &graph,
                path.current(),
                dest,
                &self.cluster_providers[unit],
                &self.delays,
            )
            .ok_or(RouteError::Infeasible)?;
            for a in &assignments {
                path.serve(a.proxy, services[a.stage.index()]);
            }
            path.relay(dest);
            Ok(())
        } else {
            let graph = ServiceGraph::linear(services.to_vec());
            self.solve_graph(
                level - 1,
                self.hierarchy.members(level, unit),
                dest,
                &graph,
                path,
            )
        }
    }

    /// Relays from `path.current()` to `to`, crossing units at levels
    /// *below* `level` through their border pairs; at the base-cluster
    /// level the hop is direct (clusters are fully connected).
    fn descend(&self, level: usize, to: ProxyId, path: &mut PathBuilder) {
        if path.current() == to {
            return;
        }
        if level == 1 {
            path.relay(to);
            return;
        }
        let child = level - 1;
        let from_unit = self.unit_of(child, path.current());
        let to_unit = self.unit_of(child, to);
        if from_unit != to_unit {
            let pair = self
                .hierarchy
                .unit_border(self.hfc, child, from_unit, to_unit);
            self.descend(child, pair.local, path);
            path.relay(pair.remote);
        }
        self.descend(child, to, path);
    }

    /// Computes the level-`level` service path: the generalization of
    /// the paper's cluster-level service path to any hierarchy level.
    fn plan_over(
        &self,
        level: usize,
        allowed: &[usize],
        source: ProxyId,
        dest: ProxyId,
        graph: &ServiceGraph,
    ) -> Result<Vec<(StageId, usize)>, RouteError> {
        let src_unit = self.unit_of(level, source);
        let dst_unit = self.unit_of(level, dest);

        let mut candidates: Vec<Vec<usize>> = Vec::with_capacity(graph.len());
        for stage in graph.stage_ids() {
            let service = graph.service(stage);
            let units: Vec<usize> = allowed
                .iter()
                .copied()
                .filter(|&u| self.unit_aggregate(level, u).contains(service))
                .filter(|&u| self.unit_routable(level, u))
                .collect();
            if units.is_empty() {
                return Err(RouteError::NoProvider(service));
            }
            candidates.push(units);
        }

        let order = graph
            .topological_order()
            .expect("service graphs are validated acyclic at construction");
        let mut states: Vec<StateMap> = vec![BTreeMap::new(); graph.len()];
        for &stage in &order {
            let si = stage.index();
            for &unit in &candidates[si] {
                if graph.predecessors(stage).is_empty() {
                    let (cost, entry) = self.level_step(level, source, src_unit, unit, dst_unit);
                    upsert(&mut states[si], key(unit, entry), cost, None);
                } else {
                    for &pred in graph.predecessors(stage) {
                        let pi = pred.index();
                        let prev_states: Vec<(StateKey, f64)> =
                            states[pi].iter().map(|(&k, &(c, _))| (k, c)).collect();
                        for (pkey, pcost) in prev_states {
                            let (punit, pentry) = unkey(pkey);
                            let (step, entry) =
                                self.level_step(level, pentry, punit, unit, dst_unit);
                            upsert(
                                &mut states[si],
                                key(unit, entry),
                                pcost + step,
                                Some((pi, pkey)),
                            );
                        }
                    }
                }
            }
        }

        let mut best: Option<(f64, usize, StateKey)> = None;
        for sink in graph.sinks() {
            let si = sink.index();
            for (&k, &(cost, _)) in &states[si] {
                let (unit, entry) = unkey(k);
                let close = self.level_close(level, entry, unit, dst_unit, dest);
                let total = cost + close;
                if total.is_finite() && best.is_none_or(|(b, _, _)| total < b) {
                    best = Some((total, si, k));
                }
            }
        }
        let (_, mut si, mut k) = best.ok_or(RouteError::Infeasible)?;

        let mut chain = Vec::new();
        loop {
            let (unit, _) = unkey(k);
            chain.push((StageId::new(si), unit));
            match states[si].get(&k).and_then(|&(_, prev)| prev) {
                Some((psi, pk)) => {
                    si = psi;
                    k = pk;
                }
                None => break,
            }
        }
        chain.reverse();
        Ok(chain)
    }

    /// Cost of stepping from (proxy `entry` inside unit `from`) into
    /// unit `to` of `level`, and the resulting entry proxy. At the
    /// base-cluster level this is the paper's back-tracking-refined
    /// step; above it, the entry and border proxies are all known
    /// coordinates, so the plain predicted delays apply.
    fn level_step(
        &self,
        level: usize,
        entry: ProxyId,
        from: usize,
        to: usize,
        dst_unit: usize,
    ) -> (f64, ProxyId) {
        if from == to {
            return (0.0, entry);
        }
        let pair = self.hierarchy.unit_border(self.hfc, level, from, to);
        let external = self.delays.delay(pair.local, pair.remote);
        if level == 1 {
            let internal = self.known_internal(entry, pair.local, ClusterId::new(dst_unit));
            (internal + external + self.cluster_penalty(to), pair.remote)
        } else {
            (self.delays.delay(entry, pair.local) + external, pair.remote)
        }
    }

    /// Cost of the final leg from (entry inside `from`) to `dest`.
    fn level_close(
        &self,
        level: usize,
        entry: ProxyId,
        from: usize,
        dst_unit: usize,
        dest: ProxyId,
    ) -> f64 {
        if level == 1 {
            let dc = ClusterId::new(dst_unit);
            if from == dst_unit {
                self.known_internal(entry, dest, dc)
            } else {
                let pair = self.hierarchy.unit_border(self.hfc, level, from, dst_unit);
                self.known_internal(entry, pair.local, dc)
                    + self.delays.delay(pair.local, pair.remote)
                    + self.known_internal(pair.remote, dest, dc)
            }
        } else if from == dst_unit {
            0.0
        } else {
            let pair = self.hierarchy.unit_border(self.hfc, level, from, dst_unit);
            self.delays.delay(entry, pair.local) + self.delays.delay(pair.local, pair.remote)
        }
    }

    /// Whether mapping may use `unit` at all (always, unless an
    /// attached load summary says every cluster under it is down).
    fn unit_routable(&self, level: usize, unit: usize) -> bool {
        let Some(load) = self.cluster_load.as_ref() else {
            return true;
        };
        if level == 1 {
            load.is_routable(ClusterId::new(unit))
        } else {
            self.hierarchy
                .clusters_under(level, unit)
                .iter()
                .any(|&c| load.is_routable(ClusterId::new(c)))
        }
    }

    /// The saturation penalty of entering cluster `cluster`, from the
    /// attached load summary (zero without one).
    fn cluster_penalty(&self, cluster: usize) -> f64 {
        self.cluster_load
            .as_ref()
            .map_or(0.0, |load| load.penalty(ClusterId::new(cluster)))
    }

    /// The internal distance between two proxies of the same cluster,
    /// as far as the destination-side solver can estimate it (identical
    /// to the bi-level router's back-tracking rule).
    fn known_internal(&self, a: ProxyId, b: ProxyId, dest_cluster: ClusterId) -> f64 {
        if !self.config.backtracking || a == b {
            return 0.0;
        }
        let knows = |p: ProxyId| self.hfc.is_border(p) || self.hfc.cluster_of(p) == dest_cluster;
        if knows(a) && knows(b) {
            self.delays.delay(a, b)
        } else {
            0.0
        }
    }
}

impl<D> Router for MultiLevelRouter<'_, D>
where
    D: DelayModel,
{
    fn route_path(&self, request: &ServiceRequest) -> Result<ServicePath, RouteError> {
        self.route(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_example;
    use crate::hier::HierarchicalRouter;
    use son_clustering::Clustering;
    use son_overlay::{BorderPair, DelayMatrix, HierarchyConfig};

    fn sid(i: usize) -> ServiceId {
        ServiceId::new(i)
    }

    /// Two top-level regions far apart, two clusters each, three
    /// proxies per cluster; service `i % 4` on proxy `i`, plus service
    /// 9 only in the remote region.
    fn routed_world() -> (HfcTopology, DelayMatrix, Vec<ServiceSet>) {
        let mut pos = Vec::new();
        let mut labels = Vec::new();
        let mut label = 0;
        for super_x in [0.0, 100_000.0] {
            for cluster_dx in [0.0, 1_000.0] {
                for i in 0..3 {
                    pos.push(super_x + cluster_dx + i as f64 * 2.0);
                    labels.push(label);
                }
                label += 1;
            }
        }
        let n = pos.len();
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                values[i * n + j] = (pos[i] - pos[j]).abs();
            }
        }
        let delays = DelayMatrix::from_values(n, values);
        let hfc = HfcTopology::build(&Clustering::from_labels(&labels), &delays);
        let services: Vec<ServiceSet> = (0..n)
            .map(|i| {
                let mut set = ServiceSet::from_iter([sid(i % 4)]);
                if i >= 6 {
                    set.insert(sid(9));
                }
                set
            })
            .collect();
        (hfc, delays, services)
    }

    fn depth3(hfc: &HfcTopology, delays: &DelayMatrix) -> Hierarchy {
        Hierarchy::build_with_depth(hfc, delays, &HierarchyConfig::default(), 3)
    }

    fn top_border_proxies(h: &Hierarchy) -> Vec<ProxyId> {
        let top = h.top_level();
        let mut out = Vec::new();
        let n = h.unit_count(top);
        for i in 0..n {
            for j in (i + 1)..n {
                let BorderPair { local, remote } = h.border(top, i, j);
                out.push(local);
                out.push(remote);
            }
        }
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn three_level_route_is_feasible_and_crosses_top_borders() {
        let (hfc, delays, services) = routed_world();
        let h = depth3(&hfc, &delays);
        assert_eq!(h.depth(), 3);
        assert_eq!(h.unit_count(2), 2);
        let router =
            MultiLevelRouter::from_services(&hfc, &h, &services, &delays, HierConfig::default());
        // Service 9 exists only in the far region: the path must cross
        // region borders exactly at the elected border proxies.
        let request = ServiceRequest::new(
            ProxyId::new(0),
            ServiceGraph::linear(vec![sid(9)]),
            ProxyId::new(1),
        );
        let path = router.route(&request).unwrap();
        path.validate(&request, |p, s| services[p.index()].contains(s))
            .unwrap();
        let groups: Vec<usize> = path
            .hops()
            .iter()
            .map(|hop| h.ancestor_of_proxy(&hfc, 2, hop.proxy))
            .collect();
        assert!(groups.contains(&1), "path never reached the far region");
        let borders = top_border_proxies(&h);
        for w in path.hops().windows(2) {
            let (a, b) = (w[0].proxy, w[1].proxy);
            let ga = h.ancestor_of_proxy(&hfc, 2, a);
            let gb = h.ancestor_of_proxy(&hfc, 2, b);
            if ga != gb {
                assert!(
                    borders.contains(&a) && borders.contains(&b),
                    "{a} -> {b} crossed regions off the border"
                );
            }
        }
    }

    #[test]
    fn intra_group_requests_match_the_bilevel_router() {
        let (hfc, delays, services) = routed_world();
        let h = depth3(&hfc, &delays);
        let three =
            MultiLevelRouter::from_services(&hfc, &h, &services, &delays, HierConfig::default());
        let two =
            HierarchicalRouter::from_services(&hfc, &services, &delays, HierConfig::default());
        // Entirely inside region 0 (proxies 0..6, services 0..4).
        let request = ServiceRequest::new(
            ProxyId::new(0),
            ServiceGraph::linear(vec![sid(1), sid(2)]),
            ProxyId::new(5),
        );
        let p3 = three.route(&request).unwrap();
        let p2 = two.route(&request).unwrap();
        assert_eq!(p3, p2.path, "intra-region routing must reduce to bi-level");
    }

    #[test]
    fn depth_two_reduces_to_the_bilevel_router() {
        let (hfc, delays, services) = paper_example();
        let h = Hierarchy::build_with_depth(&hfc, &delays, &HierarchyConfig::default(), 2);
        assert_eq!(h.depth(), 2);
        let ml =
            MultiLevelRouter::from_services(&hfc, &h, &services, &delays, HierConfig::default());
        let bi = HierarchicalRouter::from_services(&hfc, &services, &delays, HierConfig::default());
        let cases = [
            (2usize, vec![1usize, 2, 3, 4, 5], 9usize),
            (3, vec![4, 5], 10),
            (12, vec![1, 2], 9),
            (8, vec![5, 2], 1),
            (2, vec![], 12),
        ];
        for (src, svc, dst) in cases {
            let request = ServiceRequest::new(
                ProxyId::new(src),
                ServiceGraph::linear(svc.iter().map(|&i| sid(i)).collect()),
                ProxyId::new(dst),
            );
            let flat = ml.route(&request).unwrap();
            let hier = bi.route(&request).unwrap();
            assert_eq!(
                flat, hier.path,
                "depth-2 multi-level route diverged for {src}→{dst} via {svc:?}"
            );
        }
    }

    #[test]
    fn relay_only_crosses_via_top_border() {
        let (hfc, delays, services) = routed_world();
        let h = depth3(&hfc, &delays);
        let router =
            MultiLevelRouter::from_services(&hfc, &h, &services, &delays, HierConfig::default());
        let request = ServiceRequest::new(
            ProxyId::new(0),
            ServiceGraph::linear(vec![]),
            ProxyId::new(11),
        );
        let path = router.route(&request).unwrap();
        assert_eq!(path.source(), ProxyId::new(0));
        assert_eq!(path.destination(), ProxyId::new(11));
        // Every hop respects the hierarchy's connectivity: same
        // cluster, a cluster-border pair, or a top-border pair.
        let top_borders = top_border_proxies(&h);
        for w in path.hops().windows(2) {
            let (a, b) = (w[0].proxy, w[1].proxy);
            let (ca, cb) = (hfc.cluster_of(a), hfc.cluster_of(b));
            if ca == cb {
                continue;
            }
            let ga = h.ancestor_of_proxy(&hfc, 2, a);
            let gb = h.ancestor_of_proxy(&hfc, 2, b);
            if ga == gb {
                let pair = hfc.border(ca, cb);
                assert_eq!(
                    (pair.local, pair.remote),
                    (a, b),
                    "not a cluster border hop"
                );
            } else {
                assert!(
                    top_borders.contains(&a) && top_borders.contains(&b),
                    "not a top border hop"
                );
            }
        }
    }

    #[test]
    fn all_three_routers_serve_the_router_trait() {
        use crate::flat::FlatRouter;
        let (hfc, delays, services) = routed_world();
        let h = depth3(&hfc, &delays);
        let providers = ProviderIndex::from_service_sets(&services);
        let flat = FlatRouter::new(&providers, &delays);
        let two =
            HierarchicalRouter::from_services(&hfc, &services, &delays, HierConfig::default());
        let three =
            MultiLevelRouter::from_services(&hfc, &h, &services, &delays, HierConfig::default());

        fn check<R: Router>(router: &R, request: &ServiceRequest, services: &[ServiceSet]) {
            let path = router.route_path(request).expect("request is routable");
            path.validate(request, |p, s| services[p.index()].contains(s))
                .unwrap();
        }
        let requests = [
            ServiceRequest::new(
                ProxyId::new(0),
                ServiceGraph::linear(vec![sid(9)]),
                ProxyId::new(1),
            ),
            ServiceRequest::new(
                ProxyId::new(0),
                ServiceGraph::linear(vec![sid(1), sid(2)]),
                ProxyId::new(5),
            ),
            ServiceRequest::new(
                ProxyId::new(3),
                ServiceGraph::linear(vec![]),
                ProxyId::new(10),
            ),
        ];
        for request in &requests {
            check(&flat, request, &services);
            check(&two, request, &services);
            check(&three, request, &services);
        }

        let routers: [&dyn Router; 3] = [&flat, &two, &three];
        for (r, request) in routers.iter().zip(&requests) {
            assert!(r.route_path(request).is_ok());
        }
    }

    /// The engine hands these across worker threads.
    #[test]
    fn multilevel_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Hierarchy>();
        assert_send_sync::<MultiLevelRouter<'_, DelayMatrix>>();
        assert_send_sync::<MultiLevelRouter<'_, &DelayMatrix>>();
    }

    #[test]
    fn missing_service_is_reported_at_the_top_level() {
        let (hfc, delays, services) = routed_world();
        let h = depth3(&hfc, &delays);
        let router =
            MultiLevelRouter::from_services(&hfc, &h, &services, &delays, HierConfig::default());
        let request = ServiceRequest::new(
            ProxyId::new(0),
            ServiceGraph::linear(vec![sid(42)]),
            ProxyId::new(11),
        );
        assert_eq!(router.route(&request), Err(RouteError::NoProvider(sid(42))));
    }

    #[test]
    fn multi_stage_requests_spanning_groups_validate() {
        let (hfc, delays, services) = routed_world();
        let h = depth3(&hfc, &delays);
        let router =
            MultiLevelRouter::from_services(&hfc, &h, &services, &delays, HierConfig::default());
        // s0 (everywhere) → s9 (far region only) → s3 (everywhere).
        let request = ServiceRequest::new(
            ProxyId::new(2),
            ServiceGraph::linear(vec![sid(0), sid(9), sid(3)]),
            ProxyId::new(4),
        );
        let path = router.route(&request).unwrap();
        path.validate(&request, |p, s| services[p.index()].contains(s))
            .unwrap();
    }

    #[test]
    fn nonlinear_requests_route_recursively() {
        let (hfc, delays, services) = routed_world();
        let h = depth3(&hfc, &delays);
        let router =
            MultiLevelRouter::from_services(&hfc, &h, &services, &delays, HierConfig::default());
        // Two configurations: [s1, s9] or [s2, s9].
        let graph = ServiceGraph::builder()
            .stage(sid(1))
            .stage(sid(2))
            .stage(sid(9))
            .edge(0, 2)
            .edge(1, 2)
            .build()
            .unwrap();
        let request = ServiceRequest::new(ProxyId::new(0), graph, ProxyId::new(4));
        let path = router.route(&request).unwrap();
        path.validate(&request, |p, s| services[p.index()].contains(s))
            .unwrap();
        let chain = path.service_chain();
        assert_eq!(chain.len(), 2);
        assert_eq!(*chain.last().unwrap(), sid(9));
    }

    #[test]
    fn unroutable_clusters_are_skipped_at_every_level() {
        use son_overlay::StatusMap;
        use son_state::ClusterLoad;
        let (hfc, delays, services) = routed_world();
        let h = depth3(&hfc, &delays);
        // Every proxy of the far region goes down: s9 becomes
        // unreachable even though the aggregates still advertise it.
        let down: Vec<ProxyId> = (6..12).map(ProxyId::new).collect();
        let statuses = StatusMap::from_down(hfc.proxy_count(), &down);
        let load = ClusterLoad::from_statuses(&hfc, &statuses, 1.0);
        let router =
            MultiLevelRouter::from_services(&hfc, &h, &services, &delays, HierConfig::default())
                .with_cluster_load(load);
        let request = ServiceRequest::new(
            ProxyId::new(0),
            ServiceGraph::linear(vec![sid(9)]),
            ProxyId::new(1),
        );
        assert_eq!(router.route(&request), Err(RouteError::NoProvider(sid(9))));
    }
}
