//! Pluggable route cost: distance plus load and health.
//!
//! The paper's routers minimize distance alone; real overlays route to
//! the *closest node with headroom* and never through a dead one. A
//! [`CostModel`] folds a [`StatusMap`] into per-proxy penalties:
//!
//! * `Down` proxies cost `+∞` — unroutable on any path;
//! * `Draining` proxies pay a flat new-session penalty;
//! * `Up` proxies pay a load term proportional to their utilization.
//!
//! [`LoadAwareDelays`] then lifts any base [`DelayModel`] into a
//! load-aware one: each hop `a → b` is charged half the penalty of each
//! endpoint, so an interior path proxy (entered once, left once)
//! accrues exactly its full penalty. The wrapper is `Copy` and holds
//! only references, so it threads through the flat, hierarchical, and
//! multilevel routers as their by-value delay model.

use son_overlay::{DelayModel, Health, ProxyId, StatusMap};

/// Weights of the non-distance cost terms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostConfig {
    /// Penalty added per unit of utilization of an `Up` or `Draining`
    /// endpoint (same unit as delays).
    pub load_penalty: f64,
    /// Flat penalty for routing a *new* session through a `Draining`
    /// endpoint.
    pub draining_penalty: f64,
    /// Penalty per unit of a remote cluster's mean utilization, applied
    /// at cluster-level (CSP) selection so inter-cluster planning sees
    /// remote saturation.
    pub cluster_load_penalty: f64,
}

impl Default for CostConfig {
    /// Neutral weights: health is still enforced (`Down` is always
    /// unroutable) but load shifts no cost.
    fn default() -> Self {
        CostConfig {
            load_penalty: 0.0,
            draining_penalty: 0.0,
            cluster_load_penalty: 0.0,
        }
    }
}

impl CostConfig {
    /// A working preset for load-aware serving: load comparable to a
    /// medium intra-cluster hop, draining twice that, cluster load
    /// weighted like an extra border link.
    pub fn balanced() -> Self {
        CostConfig {
            load_penalty: 10.0,
            draining_penalty: 20.0,
            cluster_load_penalty: 15.0,
        }
    }
}

/// Per-proxy route-cost penalties derived from health and load.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostModel {
    config: CostConfig,
    statuses: StatusMap,
}

impl CostModel {
    /// Builds the model from weights and a status map.
    pub fn new(config: CostConfig, statuses: StatusMap) -> Self {
        CostModel { config, statuses }
    }

    /// The no-constraints model: empty statuses, neutral weights. Every
    /// penalty is zero, so wrapped delays equal base delays exactly.
    pub fn neutral() -> Self {
        CostModel::default()
    }

    /// The weights in force.
    pub fn config(&self) -> &CostConfig {
        &self.config
    }

    /// The status map in force.
    pub fn statuses(&self) -> &StatusMap {
        &self.statuses
    }

    /// Whether new paths may traverse `proxy`.
    pub fn is_routable(&self, proxy: ProxyId) -> bool {
        self.statuses.is_routable(proxy)
    }

    /// The additive cost of placing `proxy` on a new path:
    /// `+∞` for `Down`, draining + load terms otherwise.
    pub fn penalty(&self, proxy: ProxyId) -> f64 {
        let status = self.statuses.get(proxy);
        match status.health {
            Health::Down => f64::INFINITY,
            Health::Draining => {
                self.config.draining_penalty + self.config.load_penalty * status.utilization
            }
            Health::Up => self.config.load_penalty * status.utilization,
        }
    }
}

/// A [`DelayModel`] that adds health/load penalties to a base model.
///
/// Holds references only — cheap to copy into routers by value. With a
/// [`CostModel::neutral`] model, `delay` returns the base delay
/// unchanged (bit-identical: the penalty terms are exactly `0.0`).
#[derive(Debug)]
pub struct LoadAwareDelays<'a, D: ?Sized> {
    base: &'a D,
    model: &'a CostModel,
}

impl<D: ?Sized> Clone for LoadAwareDelays<'_, D> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<D: ?Sized> Copy for LoadAwareDelays<'_, D> {}

impl<'a, D: DelayModel + ?Sized> LoadAwareDelays<'a, D> {
    /// Wraps `base` with the penalties of `model`.
    pub fn new(base: &'a D, model: &'a CostModel) -> Self {
        LoadAwareDelays { base, model }
    }

    /// The base delay model.
    pub fn base(&self) -> &'a D {
        self.base
    }

    /// The cost model applied on top.
    pub fn model(&self) -> &'a CostModel {
        self.model
    }
}

impl<D: DelayModel + ?Sized> DelayModel for LoadAwareDelays<'_, D> {
    fn delay(&self, a: ProxyId, b: ProxyId) -> f64 {
        let penalty = 0.5 * (self.model.penalty(a) + self.model.penalty(b));
        if penalty == 0.0 {
            // Exact pass-through in the unconstrained world.
            self.base.delay(a, b)
        } else {
            self.base.delay(a, b) + penalty
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use son_overlay::DelayMatrix;

    fn line_delays(n: usize) -> DelayMatrix {
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                values[i * n + j] = (i as f64 - j as f64).abs();
            }
        }
        DelayMatrix::from_values(n, values)
    }

    #[test]
    fn neutral_model_is_a_pass_through() {
        let delays = line_delays(4);
        let model = CostModel::neutral();
        let wrapped = LoadAwareDelays::new(&delays, &model);
        for i in 0..4 {
            for j in 0..4 {
                let (a, b) = (ProxyId::new(i), ProxyId::new(j));
                assert_eq!(wrapped.delay(a, b), delays.delay(a, b));
            }
        }
    }

    #[test]
    fn down_proxies_cost_infinity() {
        let delays = line_delays(3);
        let mut statuses = StatusMap::all_up(3);
        statuses.set_health(ProxyId::new(1), Health::Down);
        let model = CostModel::new(CostConfig::default(), statuses);
        let wrapped = LoadAwareDelays::new(&delays, &model);
        assert!(wrapped
            .delay(ProxyId::new(0), ProxyId::new(1))
            .is_infinite());
        assert!(wrapped
            .delay(ProxyId::new(1), ProxyId::new(2))
            .is_infinite());
        assert_eq!(wrapped.delay(ProxyId::new(0), ProxyId::new(2)), 2.0);
        assert!(!model.is_routable(ProxyId::new(1)));
    }

    #[test]
    fn load_and_draining_shift_cost() {
        let delays = line_delays(3);
        let mut statuses = StatusMap::all_up(3);
        statuses.set_utilization(ProxyId::new(1), 0.5);
        statuses.set_health(ProxyId::new(2), Health::Draining);
        let config = CostConfig {
            load_penalty: 10.0,
            draining_penalty: 8.0,
            cluster_load_penalty: 0.0,
        };
        let model = CostModel::new(config, statuses);
        // Interior proxy 1 accrues its full penalty across in + out hops.
        assert_eq!(model.penalty(ProxyId::new(1)), 5.0);
        assert_eq!(model.penalty(ProxyId::new(2)), 8.0);
        let wrapped = LoadAwareDelays::new(&delays, &model);
        let via_loaded = wrapped.delay(ProxyId::new(0), ProxyId::new(1))
            + wrapped.delay(ProxyId::new(1), ProxyId::new(2));
        assert_eq!(via_loaded, 1.0 + 1.0 + 5.0 + 0.5 * 8.0);
    }
}
